"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot resolve
build dependencies; see README "Installation").
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running property/scenario suites; deselect with "
        '-m "not slow" for a fast inner loop',
    )
