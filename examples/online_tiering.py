"""Online tiering scenario: continuous SCOPe over a drifting access stream.

The batch pipeline optimizes placements once from a historical trace.  This
example runs the :mod:`repro.engine` control loop on a 36-month synthetic
workload whose access patterns *drift* — hot datasets go silent, cold archives
suddenly reactivate (the marketing-campaign case from the paper's
introduction), others decay or cycle seasonally — and compares three
re-optimization policies on the true end-to-end bill (storage + reads +
decompression + migrations + early-deletion penalties):

* ``StaticOnce``          — the paper's batch flow: optimize at month 0, never revisit;
* ``PeriodicReoptimize``  — re-run forecasting + OPTASSIGN every 3 months;
* ``DriftTriggered``      — re-optimize only when the observed access
                            distribution diverges from the forecast.

Expected outcome: both adaptive policies beat the static baseline by a wide
margin, and the drift-triggered policy matches the periodic one's bill while
paying for far fewer re-optimization + migration rounds.

Run with:  python examples/online_tiering.py
"""

import numpy as np

from repro import obs
from repro.cloud import DataPartition, azure_tier_catalog
from repro.engine import (
    DriftTriggered,
    EngineConfig,
    OnlineTieringEngine,
    PeriodicReoptimize,
    SeriesStream,
    StaticOnce,
)
from repro.workloads import DriftSegment, generate_drifting_reads

MONTHS = 36
NUM_DATASETS = 30


def build_drifting_account(seed: int = 11):
    """A synthetic account whose hot set rotates at months 12 and 24."""
    rng = np.random.default_rng(seed)
    series: dict[str, list[float]] = {}
    partitions: list[DataPartition] = []
    for index in range(NUM_DATASETS):
        name = f"dataset_{index:03d}"
        role = index % 5
        if role == 0:  # hot year one, then retired
            segments = [DriftSegment("constant", 12), DriftSegment("inactive", 24)]
            prior = 80.0
        elif role == 1:  # dormant archive reactivated in year two
            segments = [
                DriftSegment("inactive", 12),
                DriftSegment("constant", 12),
                DriftSegment("decaying", 12),
            ]
            prior = 0.0
        elif role == 2:  # spikes in year three (campaign launch)
            segments = [DriftSegment("inactive", 24), DriftSegment("spike", 12)]
            prior = 0.0
        elif role == 3:  # steady decay over the whole horizon
            segments = [DriftSegment("decaying", MONTHS)]
            prior = 40.0
        else:  # year-on-year seasonality
            segments = [DriftSegment("periodic", MONTHS)]
            prior = 30.0
        series[name] = generate_drifting_reads(rng, segments, base_level=80.0)
        partitions.append(
            DataPartition(
                name=name,
                size_gb=float(rng.uniform(50.0, 600.0)),
                predicted_accesses=prior,  # the engine's t=0 monthly prior
                latency_threshold_s=7200.0,
                current_tier=0,  # everything starts on the hot tier
            )
        )
    return series, partitions


def main() -> None:
    series, partitions = build_drifting_account()
    tiers = azure_tier_catalog(include_premium=False, include_archive=True)
    total_gb = sum(partition.size_gb for partition in partitions)
    print(
        f"account: {NUM_DATASETS} datasets, {total_gb / 1024.0:.1f} TB, "
        f"{MONTHS}-month drifting stream, tiers: {', '.join(tiers.names)}"
    )

    config = EngineConfig(horizon_months=6.0, window_months=6)
    policies = [
        StaticOnce(),
        PeriodicReoptimize(period_months=3),
        DriftTriggered(threshold=0.4, min_gap_months=2),
    ]
    reports = {}
    with obs.observed() as run:  # trace every epoch of every policy
        for policy in policies:
            engine = OnlineTieringEngine(partitions, tiers, policy, config)
            reports[policy.name] = engine.run(SeriesStream(series))

    print()
    print(
        obs.render_table(
            ("policy", "total bill $", "reopts", "migrations $", "moved GB", "s/epoch"),
            [
                (
                    name,
                    f"{report.total_bill / 100.0:.2f}",
                    report.num_reoptimizations,
                    f"{report.total_migration_cost / 100.0:.2f}",
                    f"{report.total_moved_gb:.1f}",
                    f"{report.mean_epoch_seconds:.4f}",
                )
                for name, report in reports.items()
            ],
        )
    )
    print()
    print(obs.render_summary(run.snapshot(), top=8))

    static = reports["static_once"]
    periodic = reports["periodic"]
    drift = reports["drift_triggered"]
    saving = 100.0 * (static.total_bill - drift.total_bill) / static.total_bill
    print()
    print(
        f"drift-triggered saves {saving:.1f}% of the static-once bill with "
        f"{drift.num_reoptimizations} re-optimizations "
        f"(periodic needed {periodic.num_reoptimizations})"
    )

    assert drift.total_bill < static.total_bill, (
        "drift-triggered re-optimization should beat the batch baseline on a "
        "drifting workload"
    )
    assert periodic.total_bill < static.total_bill, (
        "periodic re-optimization should beat the batch baseline on a "
        "drifting workload"
    )
    assert drift.num_reoptimizations < periodic.num_reoptimizations, (
        "drift-triggered should re-optimize less often than the periodic policy"
    )


if __name__ == "__main__":
    main()
