"""Enterprise Data I scenario: dataset-level tiering with predicted access patterns.

Reproduces the paper's enterprise workflow end to end on a synthetic customer
account (Tables II-IV flavour):

1. generate a data-lake catalog with realistic access patterns (skew, recency,
   seasonality, spikes);
2. label every dataset with its OPTASSIGN-ideal tier for the upcoming horizon;
3. train the Random-Forest tier predictor on historical features and evaluate
   it out of sample (confusion matrix, F1);
4. compare the % cost benefit of the predicted placement against the rule
   baselines ("all hot", "hot if recently accessed", "previous optimal tier").

Run with:  python examples/enterprise_tiering.py
"""

import numpy as np

from repro.cloud import CostModel, DatasetCatalog, azure_tier_catalog
from repro.core.access_predict import (
    TierFeatureBuilder,
    TierPredictor,
    ideal_tier_labels,
    percent_benefit_vs_baseline,
    rule_hot_if_recent,
    rule_previous_optimal,
)
from repro.core.pipeline import format_matrix
from repro.workloads import EnterpriseCatalogConfig, generate_enterprise_catalog

HORIZON_MONTHS = 2


def main() -> None:
    config = EnterpriseCatalogConfig(
        num_datasets=250,
        total_size_gb=450_000.0,       # a ~0.45 PB account, like "customer B"
        history_months=14,
        total_monthly_accesses=120_000.0,
        seed=7,
    )
    full_catalog, patterns = generate_enterprise_catalog(config)
    # Newly ingested datasets (no history before the horizon) are projected
    # from domain knowledge in the paper; exclude them from the ML study.
    catalog = DatasetCatalog(
        [dataset for dataset in full_catalog if dataset.age_months > HORIZON_MONTHS]
    )
    print(f"account: {len(catalog)} datasets, {catalog.total_size_gb / 1e6:.2f} PB")

    tiers = azure_tier_catalog(include_premium=False, include_archive=False)
    cost_model = CostModel(tiers, duration_months=float(HORIZON_MONTHS))
    builder = TierFeatureBuilder(lookback_months=6)
    features, splits = builder.build_matrix(catalog, horizon_months=HORIZON_MONTHS)
    ideal = ideal_tier_labels(catalog, splits, cost_model)

    # Out-of-sample evaluation of the tier predictor (Table III).
    rng = np.random.default_rng(1)
    order = rng.permutation(len(catalog))
    cut = int(0.7 * len(order))
    train, test = order[:cut], order[cut:]
    predictor = TierPredictor(feature_builder=builder).fit(
        features[train], [ideal[i] for i in train]
    )
    report = predictor.evaluate(features[test], [ideal[i] for i in test])
    names = ["hot" if label == 0 else "cool" for label in report.labels]
    print()
    print(format_matrix(report.confusion.tolist(), names, names,
                        title="Predicted vs ideal tier (held-out datasets)"))
    print(f"macro F1: {report.f1_macro:.3f}")

    # Cost benefit of each policy versus the all-hot platform baseline (Table IV).
    predicted_placement = list(predictor.predict(features))
    policies = {
        "all hot (platform default)": [0] * len(catalog),
        "hot if accessed in last month": rule_hot_if_recent(catalog, HORIZON_MONTHS, 1),
        "previous month's optimal tier": rule_previous_optimal(
            catalog, HORIZON_MONTHS, 1, cost_model
        ),
        "OPTASSIGN (predicted accesses)": predicted_placement,
        "OPTASSIGN (known accesses)": ideal,
    }
    print()
    print(f"{'policy':34s} {'benefit vs all-hot':>20s}")
    for name, placement in policies.items():
        benefit = percent_benefit_vs_baseline(catalog, splits, placement, cost_model)
        print(f"{name:34s} {benefit:19.2f}%")


if __name__ == "__main__":
    main()
