"""Quickstart: optimise storage tiers and compression for a handful of partitions.

This is the 60-second tour of the public API:

1. describe your cloud (the Azure price sheet ships as a preset),
2. describe your data partitions (size, predicted accesses, latency SLA),
3. describe how well each partition compresses (measured or predicted),
4. call OPTASSIGN and inspect the placement and the projected bill.

Run with:  python examples/quickstart.py
"""

from repro.cloud import CompressionProfile, CostModel, DataPartition, azure_tier_catalog
from repro.core.optassign import OptAssignProblem, solve_optassign


def main() -> None:
    # 1. The cloud: Azure premium/hot/cool/archive with the paper's prices,
    #    evaluated over a 6-month billing horizon.
    tiers = azure_tier_catalog()
    cost_model = CostModel(tiers, compute_cost_per_s=0.001, duration_months=6.0)

    # 2. The data: three partitions with very different access behaviour.
    partitions = [
        DataPartition("clickstream_recent", size_gb=200.0, predicted_accesses=500.0,
                      latency_threshold_s=1.0),
        DataPartition("clickstream_2023", size_gb=1_500.0, predicted_accesses=4.0,
                      latency_threshold_s=600.0),
        DataPartition("raw_exports_archive", size_gb=9_000.0, predicted_accesses=0.0,
                      latency_threshold_s=7_200.0),
    ]

    # 3. Compression behaviour per partition and scheme (ratio, decompression s/GB).
    #    In a full deployment COMPREDICT predicts these from cheap features;
    #    here we state them directly.
    profiles = {
        "clickstream_recent": {
            "gzip": CompressionProfile("gzip", ratio=3.2, decompression_s_per_gb=8.0),
            "snappy": CompressionProfile("snappy", ratio=1.8, decompression_s_per_gb=0.5),
        },
        "clickstream_2023": {
            "gzip": CompressionProfile("gzip", ratio=3.5, decompression_s_per_gb=8.0),
            "snappy": CompressionProfile("snappy", ratio=1.9, decompression_s_per_gb=0.5),
        },
        "raw_exports_archive": {
            "gzip": CompressionProfile("gzip", ratio=4.1, decompression_s_per_gb=8.0),
        },
    }

    # 4. Optimise and report.
    problem = OptAssignProblem(partitions, cost_model, profiles)
    report = solve_optassign(problem)
    assignment = report.assignment

    print("Optimal placement")
    print("-" * 72)
    for name, option in assignment.choices.items():
        tier = tiers[option.tier_index].name
        print(
            f"{name:24s} -> tier={tier:8s} scheme={option.scheme:7s} "
            f"cost={option.breakdown.total:10.1f} cents  latency={option.latency_s:8.3f}s"
        )
    breakdown = assignment.breakdown
    print("-" * 72)
    print(
        f"projected 6-month bill: {breakdown.total:10.1f} cents "
        f"(storage {breakdown.storage:.1f}, read {breakdown.read:.1f}, "
        f"write {breakdown.write:.1f}, decompression {breakdown.decompression:.1f})"
    )

    # Compare against the platform default: everything uncompressed on premium.
    default_total = sum(
        cost_model.placement_breakdown(partition, 0).total for partition in partitions
    )
    saving = 100.0 * (default_total - breakdown.total) / default_total
    print(f"platform default would cost {default_total:10.1f} cents -> saving {saving:.1f}%")


if __name__ == "__main__":
    main()
