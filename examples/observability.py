"""Observability walkthrough: trace a solve and a fleet epoch end to end.

Everything in :mod:`repro.obs` is off by default — the engine, solver and
fleet scheduler are instrumented, but until a run is wrapped in
``obs.observed()`` every span and counter is a shared no-op and the billed
results are bit-identical.  This example turns the lights on twice:

1. **A capacitated OPTASSIGN solve.**  The hottest tier's capacity is
   squeezed below what the unconstrained solve wants, so the span tree shows
   the full solver pipeline: tensor build, vectorized greedy argmin, and the
   capacity-repair eviction rounds.
2. **A drift-triggered fleet run on a contended pool.**  One hot tenant and
   two cold tenants share a performance pool sized below the hot tenant's
   demand; the hot tenant's workload flips mid-run, firing its drift
   trigger.  The span tree of one re-optimizing epoch covers problem
   building, the stacked solve, pool arbitration
   (``optassign.repair_pools``), migration and per-tenant settlement —
   re-attached across the scheduler's worker threads via explicit parents.

The traced run is then exported three ways — human summary tables, a
lossless JSONL dump (``--out`` writes it; CI validates it against
``schemas/obs_export.schema.json``), and the Prometheus text format — and
the JSONL round trip is asserted byte-exact.

Run with:  python examples/observability.py [--quick] [--out spans.jsonl]
"""

from __future__ import annotations

import argparse
import math
from pathlib import Path

import numpy as np

from repro import obs
from repro.cloud import (
    CapacityPool,
    CompressionProfile,
    CostModel,
    DataPartition,
    PoolSet,
    azure_tier_catalog,
    multi_cloud_catalog,
)
from repro.core.optassign import OptAssignProblem, solve_optassign
from repro.engine import DriftTriggered, EngineConfig
from repro.fleet import FleetConfig, FleetScheduler, TenantSpec

#: The solver/fleet phases the traced run must cover (the same span names the
#: benchmark JSON and the CI regression gate use).
REQUIRED_PHASES = (
    "optassign.solve",
    "optassign.batch_tensors",
    "optassign.greedy",
    "optassign.repair_capacity",
    "optassign.repair_pools",
    "fleet.epoch",
    "fleet.build_problem",
    "fleet.stack",
    "fleet.solve",
    "fleet.apply",
    "fleet.settle",
    "engine.policy_decision",
    "engine.build_problem",
    "engine.forecast",
    "engine.migrate",
    "engine.settle",
    "engine.ingest",
    "engine.feature_store",
)


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def build_capacitated_problem(count: int) -> OptAssignProblem:
    """A seeded instance whose busiest tier is squeezed to 40% of demand."""
    rng = np.random.default_rng(42)
    tiers = azure_tier_catalog(include_premium=False)
    partitions = [
        DataPartition(
            f"dataset_{index:03d}",
            size_gb=float(rng.lognormal(3.5, 1.2)),
            predicted_accesses=float(rng.lognormal(1.0, 1.8)),
            latency_threshold_s=float(rng.choice([60.0, 7200.0])),
            current_tier=0,
        )
        for index in range(count)
    ]
    profiles = {
        partition.name: {
            "gzip": CompressionProfile(
                "gzip",
                ratio=float(rng.uniform(2.0, 5.0)),
                decompression_s_per_gb=float(rng.uniform(0.5, 1.5)),
            ),
        }
        for partition in partitions
    }
    model = CostModel(tiers, duration_months=6.0)
    unconstrained = OptAssignProblem(partitions, model, profiles)
    report = solve_optassign(unconstrained, prefer="greedy")
    usage = [0.0] * len(tiers)
    for partition in partitions:
        choice = report.assignment.choices[partition.name]
        usage[choice.tier_index] += unconstrained.stored_gb(partition, choice.scheme)
    hot = usage.index(max(usage))
    squeezed = type(tiers)(
        [
            tier.with_capacity(usage[hot] * 0.4) if index == hot else tier
            for index, tier in enumerate(tiers)
        ]
    )
    return OptAssignProblem(
        partitions, CostModel(squeezed, duration_months=6.0), profiles
    )


def build_fleet(months: int) -> FleetScheduler:
    """1 drifting hot tenant + 2 cold tenants on an undersized shared pool."""
    catalog = multi_cloud_catalog()
    config = EngineConfig(horizon_months=6.0, window_months=4)
    specs = []
    for name in ("hot", "cold_a", "cold_b"):
        is_hot = name == "hot"
        partitions = [
            DataPartition(
                f"{name}_{index:02d}",
                size_gb=200.0 if is_hot else 500.0,
                predicted_accesses=50.0 if is_hot else 0.2,
                latency_threshold_s=1.0 if is_hot else math.inf,
            )
            for index in range(4)
        ]
        if is_hot:
            # Quiet start, then the dashboards go live: the drift trigger
            # fires mid-run and the pool has to be re-arbitrated.
            flip = months // 2
            series = {
                p.name: [50.0] * flip + [1500.0] * (months - flip)
                for p in partitions
            }
        else:
            series = {p.name: [0.2] * months for p in partitions}
        specs.append(
            TenantSpec(
                name=name,
                partitions=partitions,
                policy=DriftTriggered(threshold=0.3),
                series=series,
                config=config,
            )
        )
    pools = PoolSet(
        catalog,
        [CapacityPool("performance", ("azure_blob/premium", "azure_blob/hot"), 1000.0)],
    )
    return FleetScheduler(
        specs,
        catalog,
        pools=pools,
        config=FleetConfig(engine=config, max_workers=2),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the traced run's JSONL export to this path",
    )
    args = parser.parse_args(argv)
    count = 80 if args.quick else 400
    months = 6 if args.quick else 10

    _banner("1. Capacitated OPTASSIGN solve: tensor build, greedy, repair")
    with obs.observed() as run:
        solve_optassign(build_capacitated_problem(count), prefer="greedy")
        solver_spans = list(run.tracer.records())

        _banner("2. Drift-triggered fleet run on a contended capacity pool")
        scheduler = build_fleet(months)
        report = scheduler.run(num_epochs=months)
    snap = run.snapshot()

    print(f"\ncapacitated solve over {count} partitions:\n")
    print(obs.render_span_tree(solver_spans))

    # The span tree of one epoch that actually re-optimized: fleet.epoch ->
    # build/stack/solve/apply plus the thread-pooled per-tenant settles.
    fleet_epochs = [
        record
        for record in snap.spans
        if record.name == "fleet.epoch" and record.attrs.get("num_reoptimized", 0)
    ]
    drifted = fleet_epochs[-1]  # the post-drift re-arbitration epoch
    epoch_spans = [
        record
        for record in snap.spans
        if record.span_id == drifted.span_id
        or record.parent_id is not None
        and _has_ancestor(snap.spans, record, drifted.span_id)
    ]
    print(
        f"\nfleet epoch {drifted.attrs['epoch']} "
        f"(re-optimized {drifted.attrs['num_reoptimized']} tenants):\n"
    )
    print(obs.render_span_tree(epoch_spans))

    _banner("3. Exports: summary table, JSONL dump, Prometheus text format")
    print()
    print(obs.render_summary(snap, top=10))

    jsonl = obs.to_jsonl(snap)
    assert obs.to_jsonl(obs.parse_jsonl(jsonl)) == jsonl, "JSONL round trip broke"
    print(f"\nJSONL export: {len(jsonl.splitlines())} lines (round trip verified)")
    if args.out is not None:
        args.out.write_text(jsonl)
        print(f"wrote {args.out}")

    prometheus = obs.to_prometheus(snap)
    scrape_preview = "\n".join(prometheus.splitlines()[:12])
    print(f"\nPrometheus scrape body ({len(prometheus.splitlines())} lines):\n")
    print(scrape_preview)
    print("...")

    covered = {record.name for record in snap.spans}
    missing = [name for name in REQUIRED_PHASES if name not in covered]
    assert not missing, f"span coverage is missing phases: {missing}"
    print(
        f"\ntraced {len(snap.spans)} spans / {len(snap.metrics)} metric series; "
        f"all {len(REQUIRED_PHASES)} required phases covered; fleet bill "
        f"{report.total_bill:,.0f} cents"
    )


def _has_ancestor(spans, record, ancestor_id: int) -> bool:
    by_id = {r.span_id: r for r in spans}
    current = record
    while current.parent_id is not None:
        if current.parent_id == ancestor_id:
            return True
        current = by_id.get(current.parent_id)
        if current is None:
            return False
    return False


if __name__ == "__main__":
    main()
