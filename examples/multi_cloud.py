"""Multi-cloud tiering scenario: one account, three provider catalogs.

The paper prices placements against a single provider's tier menu.  This
example runs the same SLO-annotated account against the AWS S3, Azure Blob
and GCP GCS preset catalogs individually, then against the *combined*
:class:`~repro.cloud.MultiProviderCatalog` — and shows that cross-provider
placement strictly beats the best single-provider plan, because different
providers win different service classes:

* 50 ms-SLO interactive data fits S3 standard or Azure premium (GCS's
  standard tier only publishes a 100 ms SLO — GCS alone cannot even serve it);
* warm analytics data likes Azure cool's cheap reads;
* cold-but-queryable data likes GCS archive (0.12 c/GB/month at millisecond
  first byte), which neither Azure (3600 s rehydration) nor AWS (12 h deep
  archive) can match under a 0.2 s SLO cap.

A second phase warm-starts from the all-on-one-provider layout and
re-optimizes inside the combined catalog: now every cross-provider move must
earn back the source provider's egress fee (8.7-12 c/GB), so only the
migrations whose savings beat egress survive.  A final phase (skipped with
``--quick``) runs the :class:`~repro.engine.OnlineTieringEngine` on the
combined catalog to show drift-triggered *online* cross-provider moves with
egress billed end to end.

Run with:  python examples/multi_cloud.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cloud import (
    CompressionProfile,
    CostModel,
    multi_cloud_catalog,
)
from repro.core.optassign import InfeasibleError, OptAssignProblem, solve_greedy
from repro.workloads import generate_slo_workload

HORIZON_MONTHS = 6.0


def build_account(num_partitions: int, seed: int = 23):
    """An SLO-annotated account plus per-partition compression profiles."""
    workload = generate_slo_workload(num_partitions, seed=seed)
    rng = np.random.default_rng(seed + 1)
    profiles = {
        partition.name: {
            "gzip": CompressionProfile(
                "gzip",
                ratio=float(rng.uniform(2.5, 5.0)),
                decompression_s_per_gb=float(rng.uniform(0.8, 1.5)),
            ),
            "snappy": CompressionProfile(
                "snappy",
                ratio=float(rng.uniform(1.5, 2.5)),
                decompression_s_per_gb=float(rng.uniform(0.05, 0.2)),
            ),
        }
        for partition in workload.partitions
    }
    return workload, profiles


def solve_on_catalog(
    catalog, workload, profiles, current_placement=None, months=HORIZON_MONTHS
):
    """Greedy-optimal plan (unbounded capacities) on one catalog, or None."""
    model = CostModel(catalog, duration_months=months)
    problem = OptAssignProblem(
        workload.partitions,
        model,
        profiles,
        latency_slo_s=workload.latency_slo_s,
        provider_affinity=workload.provider_affinity or None,
    )
    if current_placement is not None:
        problem = problem.with_current_placement(current_placement)
    try:
        return solve_greedy(problem)
    except InfeasibleError:
        return None


def provider_histogram(assignment, catalog) -> dict[str, int]:
    counts: dict[str, int] = {}
    for option in assignment.choices.values():
        provider = catalog.provider_of(option.tier_index)
        counts[provider] = counts.get(provider, 0) + 1
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small account, skip the online-engine phase (CI smoke mode)",
    )
    args = parser.parse_args()
    num_partitions = 16 if args.quick else 80

    workload, profiles = build_account(num_partitions)
    combined = multi_cloud_catalog()
    counts = workload.class_counts()
    print(
        f"account: {num_partitions} partitions, {workload.total_gb / 1024.0:.1f} TB "
        f"({', '.join(f'{v}x {k}' for k, v in sorted(counts.items()))}), "
        f"{len(workload.latency_slo_s)} with tier-SLO caps"
    )

    # -- phase 1: cold placement, each provider alone vs all three combined --
    print(f"\n{'catalog':22s} {'total bill':>14s}  provider split")
    print("-" * 64)
    single_bills: dict[str, float] = {}
    single_plans: dict[str, object] = {}
    for provider in combined.providers:
        plan = solve_on_catalog(provider.catalog(), workload, profiles)
        if plan is None:
            print(f"{provider.name:22s} {'infeasible':>14s}  (no tier meets every SLO cap)")
            continue
        single_bills[provider.name] = plan.total_cost
        single_plans[provider.name] = plan
        print(f"{provider.name:22s} {plan.total_cost / 100.0:12.2f} $")
    multi_plan = solve_on_catalog(combined, workload, profiles)
    assert multi_plan is not None, "the combined catalog must satisfy every SLO"
    split = provider_histogram(multi_plan, combined)
    print(
        f"{'multi-cloud':22s} {multi_plan.total_cost / 100.0:12.2f} $  "
        + ", ".join(f"{name}: {count}" for name, count in sorted(split.items()))
    )

    assert single_bills, "at least one single-provider plan should be feasible"
    best_single_name = min(single_bills, key=single_bills.get)
    best_single = single_bills[best_single_name]
    saving = 100.0 * (best_single - multi_plan.total_cost) / best_single
    print(
        f"\ncross-provider placement saves {saving:.1f}% vs the best single "
        f"provider ({best_single_name}) and uses {len(split)} providers"
    )
    assert multi_plan.total_cost < best_single, (
        "the multi-cloud plan must be strictly cheaper than the best "
        "single-provider plan on this workload"
    )

    # -- phase 2: warm start — egress makes cross-provider moves pay rent ----
    # Park everything on the best single provider, then re-optimize inside
    # the combined catalog: the objective's Delta term now charges the source
    # provider's egress per GB, so only moves that earn it back survive.
    single_plan = single_plans[best_single_name]
    single_catalog = combined.single_provider(best_single_name)
    parked = {
        name: combined.global_index(
            best_single_name, single_catalog[option.tier_index].name
        )
        for name, option in single_plan.choices.items()
    }
    replan = solve_on_catalog(combined, workload, profiles, current_placement=parked)
    movers = sum(
        1
        for name, option in replan.choices.items()
        if option.tier_index != parked[name]
    )
    cross = sum(
        1
        for name, option in replan.choices.items()
        if combined.provider_of(option.tier_index) != best_single_name
    )
    print(
        f"warm restart from all-on-{best_single_name}: {movers}/{num_partitions} "
        f"partitions move, {cross} end up off-provider once egress "
        f"({dict((p.name, p.egress_cost_per_gb) for p in combined.providers)} c/GB) "
        "is priced in"
    )
    assert cross <= len(
        [n for n, o in multi_plan.choices.items()
         if combined.provider_of(o.tier_index) != best_single_name]
    ), "egress pricing should never increase cross-provider placement"

    # Egress is a one-off charge amortized over the billing horizon: the same
    # warm start over a longer horizon justifies moves the short one rejects.
    long_months = 30.0
    replan_long = solve_on_catalog(
        combined, workload, profiles, current_placement=parked, months=long_months
    )
    cross_long = sum(
        1
        for option in replan_long.choices.values()
        if combined.provider_of(option.tier_index) != best_single_name
    )
    print(
        f"same warm start planned over {long_months:.0f} months: {cross_long} "
        f"partitions now leave {best_single_name} (egress amortizes)"
    )
    assert cross_long >= cross, (
        "a longer horizon should never reduce cross-provider placement"
    )

    if args.quick:
        print("\n--quick: skipping the online-engine phase")
        return

    # -- phase 3: the online engine on the combined catalog ------------------
    from repro.engine import DriftTriggered, EngineConfig, OnlineTieringEngine, SeriesStream
    from repro.workloads import DriftSegment, generate_drifting_reads

    months = 18
    rng = np.random.default_rng(99)
    series = {}
    for index, partition in enumerate(workload.partitions):
        if index % 3 == 0:  # a third of the account goes cold after month 6
            segments = [DriftSegment("constant", 6), DriftSegment("inactive", months - 6)]
        else:
            segments = [DriftSegment("constant", months)]
        series[partition.name] = generate_drifting_reads(
            rng, segments, base_level=max(partition.predicted_accesses, 1.0)
        )
    engine = OnlineTieringEngine(
        workload.partitions,
        combined,
        DriftTriggered(threshold=0.15, min_gap_months=2),
        EngineConfig(horizon_months=HORIZON_MONTHS, window_months=6),
        profiles=profiles,
        latency_slo_s=workload.latency_slo_s,
        provider_affinity=workload.provider_affinity or None,
    )
    report = engine.run(SeriesStream(series))
    print(
        f"\nonline engine over {months} drifting months on the combined catalog: "
        f"total bill {report.total_bill / 100.0:.2f} $, "
        f"{report.num_reoptimizations} re-optimizations, "
        f"{report.total_moved_gb:.0f} GB migrated "
        f"(migration + egress + penalties: {report.total_migration_cost / 100.0:.2f} $)"
    )
    final_split = provider_histogram_from_placement(engine, combined)
    print("final provider split: " + ", ".join(
        f"{name}: {count}" for name, count in sorted(final_split.items())
    ))


def provider_histogram_from_placement(engine, catalog) -> dict[str, int]:
    counts: dict[str, int] = {}
    for decision in engine.placement.values():
        provider = catalog.provider_of(decision.tier_index)
        counts[provider] = counts.get(provider, 0) + 1
    return counts


if __name__ == "__main__":
    main()
