"""Access-aware partitioning on time-series data: G-PART vs the ordered DP.

Builds a time-series-like workload (each query family touches a sliding window
of files, as recency-driven analytics do), then compares three partitioning
policies — no merging, G-PART, merge-everything — and the exact ordered DP /
its (1, 2) bi-criteria approximation under a read-cost budget (Section VI-B).

Run with:  python examples/timeseries_partitioning.py
"""

import numpy as np

from repro.core.datapart import (
    FileUniverse,
    InitialPartition,
    Merge,
    MergeConstraints,
    duplication_ratio,
    gpart,
    solve_ordered_approx,
    solve_ordered_dp,
)


def build_time_series_workload(num_files=30, num_queries=14, seed=2):
    """Query families over sliding windows of time-ordered files."""
    rng = np.random.default_rng(seed)
    # Record counts and frequencies are kept small on purpose: the exact DP of
    # Theorem 5 is pseudo-polynomial in the cost budget, so the example keeps
    # the budget in the tens of thousands of units (the approximation scheme
    # below is what one would use at real scale).
    universe = FileUniverse({f"day_{i:03d}": int(rng.integers(10, 50)) for i in range(num_files)})
    partitions = []
    for index in range(num_queries):
        # Recent windows are queried more often (recency pattern of Fig. 1b).
        start = int(rng.integers(0, num_files - 5))
        width = int(rng.integers(2, 6))
        files = {f"day_{i:03d}" for i in range(start, min(start + width, num_files))}
        frequency = float(1 + int(9 * (start + width) / num_files))
        partitions.append(InitialPartition(f"window_{index:02d}", frozenset(files), frequency))
    # Order by the last file in the window (a proxy for query end time).
    partitions.sort(key=lambda p: max(p.file_ids))
    return partitions, universe


def describe(name, merges, universe):
    span = sum(m.span for m in merges)
    cost = sum(m.cost for m in merges)
    dup = duplication_ratio(merges, universe)
    print(f"{name:28s} partitions={len(merges):3d} span={span:9d} read-cost={cost:12.0f} duplication={dup:5.2f}")
    return cost


def main() -> None:
    partitions, universe = build_time_series_workload()
    print(f"{len(partitions)} query families over {len(universe.file_ids)} daily files\n")

    print("General-graph policies (Fig. 7 flavour)")
    no_merge = [Merge.of([p], universe) for p in partitions]
    describe("no merging", no_merge, universe)
    result = gpart(partitions, universe, MergeConstraints(frequency_ratio=3.0))
    describe("G-PART", result.merges, universe)
    describe("merge everything", [Merge.of(list(partitions), universe)], universe)

    print("\nOrdered (time-series) DP under a read-cost budget (Theorems 5 & 6)")
    singleton_cost = sum(m.cost for m in no_merge)
    # The smallest budget gets a few percent of slack: the DP rounds each
    # merge's cost up to whole units, so an exactly-tight budget can be
    # infeasible purely through rounding.
    for budget_factor in (1.05, 1.5, 3.0):
        budget = singleton_cost * budget_factor
        exact = solve_ordered_dp(partitions, universe, cost_threshold=budget, cost_unit=1.0)
        approx = solve_ordered_approx(partitions, universe, cost_threshold=budget)
        print(f"\nbudget = {budget_factor:.1f} x singleton read cost ({budget:.0f})")
        describe("  exact DP", exact.merges, universe)
        describe("  (1,2)-approximation", approx.merges, universe)


if __name__ == "__main__":
    main()
