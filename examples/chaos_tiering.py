"""Fault injection walkthrough: a disruption storm against a tiered fleet.

:mod:`repro.chaos` replays *deterministic* disruptions — provider outages,
price shocks, capacity squeezes, tenant churn — against the same engine and
fleet scheduler a calm run uses.  The contract this example demonstrates:

1. **Calm runs are untouched.**  The same fleet run twice, once bare and
   once with an empty :class:`~repro.chaos.DisruptionSchedule` attached,
   bills bit-identically.
2. **Outages force evacuation, once.**  When ``azure_blob`` goes dark, every
   partition resident on its tiers is moved off at the outage epoch — egress
   billed exactly once, early-deletion penalties waived (the provider lost
   the data; the tenant does not also pay the minimum-stay fine).
3. **Shocks re-price the live catalog.**  A storage price hike lands at its
   epoch boundary; delta-solve caches are selectively invalidated, so
   incremental mode re-converges to the full solve's answer.
4. **Unfixable events degrade, loudly.**  A capacity squeeze no arbitration
   can satisfy walks the relaxation ladder (suspend pool budgets → freeze
   placement) and records a structured
   :class:`~repro.chaos.DegradationReport` instead of crashing the run.

The disrupted run is traced end to end: the ``chaos.*`` spans and counters
ride the same observability pipeline as the solver (JSONL export via
``--out``; CI validates it against ``schemas/obs_export.schema.json``).

Run with:  python examples/chaos_tiering.py [--quick] [--out chaos.jsonl]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import obs
from repro.chaos import (
    ChaosInjector,
    DisruptionSchedule,
    PoolShock,
    PriceShock,
    ProviderOutage,
    ProviderRecovery,
)
from repro.cloud import PoolSet, multi_cloud_catalog
from repro.engine import EngineConfig, PeriodicReoptimize
from repro.fleet import FleetConfig, FleetScheduler, TenantSpec
from repro.workloads import generate_fleet_workload

#: The chaos phases the traced storm must cover.
REQUIRED_PHASES = ("chaos.apply", "chaos.event")

SEED = 2023
SLACK = 1e9


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def build_fleet(months: int, num_tenants: int, partitions: int,
                chaos: ChaosInjector | None = None) -> FleetScheduler:
    catalog = multi_cloud_catalog()
    config = EngineConfig(horizon_months=6.0, window_months=6)
    fleet = generate_fleet_workload(
        num_tenants, partitions, months, seed=SEED
    )
    specs = [
        TenantSpec(
            name=tenant.name,
            partitions=tenant.partitions,
            policy=PeriodicReoptimize(2),
            series=tenant.series,
            profiles=tenant.profiles,
            config=config,
            latency_slo_s=tenant.workload.latency_slo_s,
        )
        for tenant in fleet
    ]
    pools = PoolSet.per_provider(
        catalog, {name: SLACK for name in catalog.provider_names}
    )
    return FleetScheduler(
        specs, catalog, pools=pools,
        config=FleetConfig(engine=config), chaos=chaos,
    )


def build_storm(months: int) -> DisruptionSchedule:
    """Outage -> price hike -> recovery -> unsatisfiable capacity squeeze."""
    events = [
        ProviderOutage(epoch=2, provider="azure_blob"),
        PriceShock(epoch=3, provider="aws_s3", storage_factor=4.0),
        ProviderRecovery(epoch=4, provider="azure_blob"),
    ]
    # Shrink every provider's budget to a few GB at the re-admission epoch
    # (the forced evacuation at 2 reset the periodic clock, so the policy
    # fires at 4): no arbitration can satisfy this, so the stacked solve must
    # degrade gracefully rather than crash.
    events.extend(
        PoolShock(epoch=4, pool=name, capacity_gb=2.0)
        for name in multi_cloud_catalog().provider_names
    )
    return DisruptionSchedule(events)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the traced run's JSONL export to this path",
    )
    args = parser.parse_args(argv)
    months = 6 if args.quick else 8
    num_tenants = 2 if args.quick else 3
    partitions = 4 if args.quick else 6

    _banner("1. Calm-run identity: an empty schedule changes nothing")
    calm = build_fleet(months, num_tenants, partitions).run(num_epochs=months)
    attached_injector = ChaosInjector(DisruptionSchedule.empty())
    attached = build_fleet(
        months, num_tenants, partitions, chaos=attached_injector
    ).run(num_epochs=months)
    assert attached.total_bill == calm.total_bill, "calm-run identity broke"
    print(
        f"\ncalm bill {calm.total_bill:,.2f} cents == attached-empty bill "
        f"{attached.total_bill:,.2f} cents (bit-identical)"
    )

    _banner("2. The storm: outage -> price shock -> recovery -> pool squeeze")
    schedule = build_storm(months)
    for event in schedule:
        print(f"  epoch {event.epoch}: {event.describe()}")

    chaos = ChaosInjector(schedule)
    with obs.observed() as run:
        report = build_fleet(
            months, num_tenants, partitions, chaos=chaos
        ).run(num_epochs=months)
    snap = run.snapshot()

    print(
        f"\ndisrupted bill {report.total_bill:,.2f} cents "
        f"(calm was {calm.total_bill:,.2f}; chaos premium "
        f"{report.total_bill - calm.total_bill:+,.2f})"
    )

    _banner("3. Degradation reports: what broke, what the engine did about it")
    for degradation in chaos.reports:
        print()
        print(degradation.render())
    summary = chaos.summary()
    print(
        f"\n{summary['events_applied']} events over "
        f"{summary['epochs_affected']} epochs; actions "
        f"{summary['actions_by_kind']}; attributed bill impact "
        f"{summary['bill_impact_cents']:,.2f} cents"
    )
    assert summary["degraded_epochs"], "the squeeze should have degraded"

    _banner("4. chaos.* phases in the standard observability exports")
    chaos_spans = [r for r in snap.spans if r.name.startswith("chaos.")]
    print(f"\n{len(chaos_spans)} chaos spans captured:\n")
    print(obs.render_span_tree(chaos_spans))
    chaos_metrics = [m for m in snap.metrics if m.name.startswith("chaos.")]
    for metric in chaos_metrics:
        print(f"  {metric.name}{metric.labels or ''} = {metric.value:g}")

    jsonl = obs.to_jsonl(snap)
    assert obs.to_jsonl(obs.parse_jsonl(jsonl)) == jsonl, "JSONL round trip broke"
    print(f"\nJSONL export: {len(jsonl.splitlines())} lines (round trip verified)")
    if args.out is not None:
        args.out.write_text(jsonl)
        print(f"wrote {args.out}")

    covered = {record.name for record in snap.spans}
    missing = [name for name in REQUIRED_PHASES if name not in covered]
    assert not missing, f"span coverage is missing phases: {missing}"
    print(
        f"\ntraced {len(snap.spans)} spans / {len(snap.metrics)} metric "
        f"series; all {len(REQUIRED_PHASES)} chaos phases covered; every "
        f"disruption ended in a valid placement or a DegradationReport"
    )


if __name__ == "__main__":
    main()
