"""Fleet tiering scenario: shared capacity pools vs static per-tenant slices.

A provider runs the tiering optimizer for many tenant accounts that draw
from the *same* reserved capacity — here, a "performance" pool spanning the
Azure premium and hot tiers of the shared multi-cloud catalog.  The fleet is
deliberately heterogeneous:

* one **hot** tenant whose dashboards read every partition ~1500 times a
  month (this data earns its place in the performance tiers many times over);
* three **cold** tenants holding large archival partitions that are read a
  handful of times a year and belong in the cheap archive tiers.

Two ways to enforce the shared budget are compared on the same streams:

* **naive slicing** — every tenant gets a static 1/N share of the pool, the
  per-account setup a provider falls into when each tenant's optimizer runs
  alone.  The hot tenant's share is far too small, so most of its read-hot
  data is squeezed into read-expensive tiers; the cold tenants' shares sit
  idle.
* **shared arbitration** — the :class:`~repro.fleet.FleetScheduler` stacks
  all firing tenants into one vectorized OPTASSIGN solve and water-fills the
  pool by regret per GB (:func:`~repro.core.optassign.repair_pools`): the
  hot tenant takes the capacity the cold tenants do not want.

Same total capacity, same workloads — arbitration wins by a large margin
(about 45% on the default sizes).  A final phase verifies the slack-pool
oracle: with a big enough pool the fleet run is bill-exact against
independent single-tenant engine runs.

Run with:  python examples/fleet_tiering.py [--quick]
"""

from __future__ import annotations

import argparse
import math

from repro import obs
from repro.cloud import CapacityPool, DataPartition, PoolSet, multi_cloud_catalog
from repro.engine import EngineConfig, OnlineTieringEngine, PeriodicReoptimize, SeriesStream
from repro.fleet import FleetConfig, FleetScheduler, TenantSpec
from repro.workloads import generate_fleet_workload

MONTHS = 12
ENGINE_CONFIG = EngineConfig(horizon_months=6.0, window_months=6)
POOL_TIERS = ("azure_blob/premium", "azure_blob/hot")


def hot_tenant(num_partitions: int):
    """Dashboard-style data: mid-size, read ~1500x/month, 1 s SLA."""
    partitions = [
        DataPartition(
            f"dash_{index:02d}",
            size_gb=200.0,
            predicted_accesses=1500.0,
            latency_threshold_s=1.0,
        )
        for index in range(num_partitions)
    ]
    series = {partition.name: [1500.0] * MONTHS for partition in partitions}
    return partitions, series


def cold_tenant(num_partitions: int):
    """Archival data: large, read a couple of times a year, no SLA."""
    partitions = [
        DataPartition(
            f"arch_{index:02d}",
            size_gb=500.0,
            predicted_accesses=0.2,
            latency_threshold_s=math.inf,
        )
        for index in range(num_partitions)
    ]
    series = {partition.name: [0.2] * MONTHS for partition in partitions}
    return partitions, series


def build_specs(hot_parts: int, cold_parts: int):
    specs = []
    for name in ("hot", "cold_a", "cold_b", "cold_c"):
        builder = hot_tenant if name == "hot" else cold_tenant
        partitions, series = builder(hot_parts if name == "hot" else cold_parts)
        specs.append(
            TenantSpec(
                name=name,
                partitions=partitions,
                policy=PeriodicReoptimize(6),
                series=series,
                config=ENGINE_CONFIG,
            )
        )
    return specs


def performance_pool(catalog, capacity_gb: float) -> PoolSet:
    return PoolSet(
        catalog, [CapacityPool("performance", POOL_TIERS, capacity_gb)]
    )


def run_shared(catalog, capacity_gb, hot_parts, cold_parts):
    scheduler = FleetScheduler(
        build_specs(hot_parts, cold_parts),
        catalog,
        pools=performance_pool(catalog, capacity_gb),
        config=FleetConfig(engine=ENGINE_CONFIG, max_workers=4),
    )
    return scheduler.run(num_epochs=MONTHS)


def run_sliced(catalog, capacity_gb, hot_parts, cold_parts):
    """Each tenant arbitrates only against its own 1/N static slice."""
    reports = {}
    specs = build_specs(hot_parts, cold_parts)
    slice_pools = performance_pool(catalog, capacity_gb).scaled(1.0 / len(specs))
    for spec in specs:
        scheduler = FleetScheduler(
            [spec],
            catalog,
            pools=slice_pools,
            config=FleetConfig(engine=ENGINE_CONFIG),
        )
        reports[spec.name] = scheduler.run(num_epochs=MONTHS)
    return reports


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller fleet for CI smoke runs",
    )
    args = parser.parse_args()
    hot_parts = 4 if args.quick else 12
    cold_parts = 4 if args.quick else 10
    capacity = 1.25 * hot_parts * 200.0  # fits the hot tenant with 25% slack

    catalog = multi_cloud_catalog()

    print("=" * 72)
    print("Phase 1 — contended pool: shared arbitration vs static 1/N slices")
    print("=" * 72)
    print(
        f"performance pool = {POOL_TIERS} @ {capacity:,.0f} GB shared by "
        "1 hot + 3 cold tenants"
    )
    with obs.observed() as run:
        shared = run_shared(catalog, capacity, hot_parts, cold_parts)
    sliced = run_sliced(catalog, capacity, hot_parts, cold_parts)
    sliced_total = sum(report.total_bill for report in sliced.values())

    rows = [
        (
            name,
            f"{report.total_bill:,.0f}",
            f"{shared.tenant_reports[name].total_bill:,.0f}",
        )
        for name, report in sliced.items()
    ]
    rows.append(("total", f"{sliced_total:,.0f}", f"{shared.total_bill:,.0f}"))
    print()
    print(obs.render_table(("tenant", "sliced bill", "shared bill"), rows))
    saving = 100.0 * (sliced_total - shared.total_bill) / sliced_total
    peak = shared.peak_pool_utilization()["performance"]
    print(
        f"\nshared arbitration saves {saving:.1f}% "
        f"(peak pool utilization {peak:.0%}; the hot tenant borrows the "
        "slack the cold tenants never use)"
    )
    print("\nshared-run telemetry (span-phase totals + fleet metrics):")
    print(obs.render_summary(run.snapshot(), top=8))
    assert shared.total_bill < sliced_total, "arbitration must beat slicing here"

    print()
    print("=" * 72)
    print("Phase 2 — slack pool: the fleet is bill-exact vs independent runs")
    print("=" * 72)
    fleet = generate_fleet_workload(3, 6, MONTHS, seed=7)
    slack_pool = PoolSet.per_provider(
        catalog, {"aws_s3": 1e9, "azure_blob": 1e9, "gcp_gcs": 1e9}
    )
    specs = [
        TenantSpec(
            name=tenant.name,
            partitions=tenant.partitions,
            policy=PeriodicReoptimize(3),
            series=tenant.series,
            profiles=tenant.profiles,
            config=ENGINE_CONFIG,
            latency_slo_s=tenant.workload.latency_slo_s,
        )
        for tenant in fleet
    ]
    scheduler = FleetScheduler(
        specs, catalog, pools=slack_pool, config=FleetConfig(engine=ENGINE_CONFIG)
    )
    fleet_report = scheduler.run(num_epochs=MONTHS)
    for tenant in fleet:
        engine = OnlineTieringEngine(
            tenant.partitions,
            catalog,
            PeriodicReoptimize(3),
            ENGINE_CONFIG,
            profiles=tenant.profiles,
            latency_slo_s=tenant.workload.latency_slo_s,
        )
        oracle = engine.run(SeriesStream(tenant.series, num_epochs=MONTHS))
        fleet_bill = fleet_report.tenant_reports[tenant.name].total_bill
        exact = "exact" if fleet_bill == oracle.total_bill else "MISMATCH"
        print(
            f"{tenant.name}: fleet {fleet_bill:,.2f} vs independent "
            f"{oracle.total_bill:,.2f} -> {exact}"
        )
        assert fleet_bill == oracle.total_bill
    print("\nslack-pool fleet == independent per-tenant engines, to the cent.")


if __name__ == "__main__":
    main()
