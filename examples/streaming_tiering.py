"""Streaming tiering scenario: epoch-free SCOPe over a continuous event feed.

The other engine examples tick on the dense monthly grid.  This one drives
the same control loop from a **continuous stream of timestamped events**
(:class:`repro.workloads.PoissonZipfStream`: Poisson arrivals, Zipf
popularity, a diurnal cycle and a flash crowd at month 4.2) with no
``step_month`` grid anywhere — the policy fires when a pluggable **trigger
window** closes:

* ``TimeTrigger(1.0)``   — the familiar monthly cadence, now just one choice
                           of trigger (month-aligned windows reproduce the
                           dense-epoch engine bit-exactly);
* ``CountTrigger``       — react every N events, however long that takes;
* ``AnyTrigger(Drift, Time)`` — react *the moment* the observed access mix
                           drifts off the engine's own applied forecast,
                           with a coarse wall-clock fallback for quiet
                           stretches.

The stream is generated lazily (O(window) memory however many events the
horizon holds) and is re-iterable, so all three runs consume the identical
event sequence.  Expected outcome: the drift-composed trigger notices the
flash crowd mid-month and re-optimizes ahead of the pure wall-clock cadence,
at a comparable or better end-to-end bill.

Run with:  PYTHONPATH=src python examples/streaming_tiering.py [--quick]
"""

import argparse

from repro.cloud import DataPartition, azure_tier_catalog
from repro.engine import (
    AnyTrigger,
    CountTrigger,
    DriftTrigger,
    EngineConfig,
    OnlineTieringEngine,
    PeriodicReoptimize,
    TimeTrigger,
)
from repro.workloads import (
    PoissonZipfStream,
    compose_modulations,
    diurnal_modulation,
    flash_crowd,
)

NUM_DATASETS = 24


def build_account():
    partitions = []
    for index in range(NUM_DATASETS):
        partitions.append(
            DataPartition(
                name=f"dataset_{index:03d}",
                size_gb=80.0 + 15.0 * index,
                predicted_accesses=25.0,
                latency_threshold_s=7200.0,
                current_tier=0,
            )
        )
    return partitions


def build_stream(partitions, horizon_months, rate_per_month):
    return PoissonZipfStream(
        [p.name for p in partitions],
        rate_per_month=rate_per_month,
        horizon_months=horizon_months,
        zipf_exponent=1.1,
        seed=2023,
        modulation=compose_modulations(
            diurnal_modulation(amplitude=0.5),
            flash_crowd(start_month=4.2, magnitude=6.0, duration_months=0.3),
        ),
    )


def make_engine(partitions):
    return OnlineTieringEngine(
        partitions,
        azure_tier_catalog(include_premium=False, include_archive=True),
        PeriodicReoptimize(period_months=2),
        EngineConfig(horizon_months=6.0, window_months=4),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="short horizon for CI smoke runs"
    )
    args = parser.parse_args()
    horizon = 3.0 if args.quick else 12.0
    rate = 2_000.0 if args.quick else 20_000.0

    partitions = build_account()
    stream = build_stream(partitions, horizon, rate)
    total_events = sum(1 for _ in stream)
    print(
        f"stream: {total_events} events over {horizon:g} months "
        f"({NUM_DATASETS} datasets, diurnal + flash crowd at month 4.2)\n"
    )

    triggers = {
        "monthly TimeTrigger(1.0)": lambda: TimeTrigger(1.0),
        f"CountTrigger({total_events // int(horizon)})": lambda: CountTrigger(
            max(1, total_events // int(horizon))
        ),
        "AnyTrigger(Drift(0.5), Time(2.0))": lambda: AnyTrigger(
            DriftTrigger(threshold=0.5, min_width_months=0.25, check_every=64),
            TimeTrigger(2.0),
        ),
    }

    print(
        f"{'trigger':36s} {'windows':>7s} {'reopts':>6s} "
        f"{'drift closes':>12s} {'bill (cents)':>14s}"
    )
    for label, make_trigger in triggers.items():
        engine = make_engine(partitions)
        report = engine.run_stream(
            stream, make_trigger(), horizon_months=horizon
        )
        drift_closes = sum(1 for r in report.records if r.cause == "drift")
        print(
            f"{label:36s} {report.num_epochs:7d} "
            f"{report.num_reoptimizations:6d} {drift_closes:12d} "
            f"{report.total_bill:14.2f}"
        )

    print(
        "\nMonth-aligned windows tick like the dense engine; the drift-"
        "composed trigger reacts mid-window when the flash crowd shifts the "
        "access mix."
    )


if __name__ == "__main__":
    main()
