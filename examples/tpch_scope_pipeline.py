"""Full SCOPe pipeline on a TPC-H-like workload, with every baseline of Tables IX-XI.

Generates a synthetic TPC-H-like database and a skewed query workload, then
runs the eleven pipeline variants (platform default, compression-only,
tiering-only, latency-focused, the G-PART-augmented baselines, and the four
SCOPe configurations) and prints the paper-style comparison table.

Run with:  python examples/tpch_scope_pipeline.py
"""

from repro.core.pipeline import ScopeConfig, ScopePipeline, format_pipeline_table, paper_variant_suite
from repro.workloads import TpchConfig, generate_tpch, generate_tpch_queries


def main() -> None:
    print("generating TPC-H-like data and a Zipf-skewed query workload...")
    database = generate_tpch(TpchConfig(scale=0.1, seed=3))
    workload = generate_tpch_queries(
        database, queries_per_template=3, total_accesses=2_000.0,
        skew_exponent=1.1, seed=4,
    )
    print(f"  {database.total_rows} rows across {len(database.table_names)} tables, "
          f"{len(workload)} queries")

    # Byte sizes are stretched so the cost model sees a 100 GB dataset while
    # the rows stay laptop-sized (see DESIGN.md, substitution table).
    config = ScopeConfig(rows_per_file=250, target_total_gb=100.0, duration_months=5.5)
    pipeline = ScopePipeline(database.tables, workload, config).prepare()
    print(
        f"  {len(pipeline.families)} query families -> "
        f"{pipeline.gpart_result.num_final} G-PART partitions"
    )

    rows = pipeline.run_suite(paper_variant_suite())
    print()
    print(format_pipeline_table(rows, title="SCOPe vs baselines (TPC-H 100 GB analogue, 5.5 months)"))

    by_name = {row.variant: row for row in rows}
    default = by_name["Default (store on premium)"].total_cost
    best = min(row.total_cost for row in rows)
    print()
    print(f"platform default: {default:10.1f} cents")
    print(f"best variant:     {best:10.1f} cents  ({100 * (default - best) / default:.1f}% saving)")


if __name__ == "__main__":
    main()
