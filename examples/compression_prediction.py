"""COMPREDICT walkthrough: features, sampling strategies and model comparison.

Reproduces the Section V study on a laptop-sized TPC-H-like table:

* builds random-row samples and query-result samples,
* measures ground-truth gzip compression on both,
* trains the predictor with size-only vs weighted-entropy features,
* compares the averaging baseline, gradient boosting and the random forest,
* shows how the predicted (ratio, decompression speed) pairs feed OPTASSIGN.

Run with:  python examples/compression_prediction.py
"""

import numpy as np

from repro.cloud import CostModel, DataPartition, azure_tier_catalog
from repro.compression import GzipCodec, Layout
from repro.core.compredict import (
    CompressionPredictor,
    FeatureExtractor,
    label_samples,
    query_result_samples,
    random_row_samples,
)
from repro.core.optassign import OptAssignProblem, solve_greedy
from repro.ml import AveragingRegressor, GradientBoostingRegressor, RandomForestRegressor
from repro.workloads import TpchConfig, generate_tpch, generate_tpch_queries


def main() -> None:
    database = generate_tpch(TpchConfig(scale=0.08, seed=5))
    workload = generate_tpch_queries(database, queries_per_template=3, seed=6, skew_exponent=1.0)
    table = database["lineitem"]
    codec = GzipCodec()

    rng = np.random.default_rng(9)
    random_samples = random_row_samples(table, rng, num_samples=30, rows_per_sample=(50, 400))
    query_samples = query_result_samples(table, workload, min_rows=10, max_samples=60)
    split = len(query_samples) // 2
    train_samples, test_samples = query_samples[:split], query_samples[split:]
    test_labeled = label_samples(test_samples, codec, Layout.CSV)
    print(f"{len(random_samples)} random samples, {len(query_samples)} query-result samples")

    print("\n1. training data and features (Table V flavour) — gzip ratio prediction")
    print(f"{'training data':16s} {'features':18s} {'MAE':>8s} {'MAPE':>8s} {'R2':>7s}")
    for training_name, samples, feature_set in (
        ("random rows", random_samples, "weighted_entropy"),
        ("query results", train_samples, "size"),
        ("query results", train_samples, "weighted_entropy"),
    ):
        predictor = CompressionPredictor(feature_extractor=FeatureExtractor(feature_set=feature_set))
        predictor.fit_labeled(label_samples(samples, codec, Layout.CSV), "gzip", Layout.CSV)
        metrics = predictor.evaluate(test_labeled, "gzip", Layout.CSV).ratio_metrics
        print(f"{training_name:16s} {feature_set:18s} {metrics['mae']:8.3f} {metrics['mape']:7.2f}% {metrics['r2']:7.3f}")

    print("\n2. model families (Table VI flavour) — gzip ratio prediction on query samples")
    models = {
        "Averaging": AveragingRegressor,
        "XGBoost-style boosting": lambda: GradientBoostingRegressor(n_estimators=60, random_state=1),
        "Random Forest": lambda: RandomForestRegressor(n_estimators=40, random_state=1),
    }
    train_labeled = label_samples(train_samples, codec, Layout.CSV)
    print(f"{'model':24s} {'MAE':>8s} {'MAPE':>8s} {'R2':>7s}")
    for name, factory in models.items():
        predictor = CompressionPredictor(model_factory=factory)
        predictor.fit_labeled(train_labeled, "gzip", Layout.CSV)
        metrics = predictor.evaluate(test_labeled, "gzip", Layout.CSV).ratio_metrics
        print(f"{name:24s} {metrics['mae']:8.3f} {metrics['mape']:7.2f}% {metrics['r2']:7.3f}")

    print("\n3. feeding OPTASSIGN with predicted profiles")
    predictor = CompressionPredictor()
    predictor.fit_labeled(train_labeled, "gzip", Layout.CSV)
    partitions, profiles = [], {}
    for index, sample in enumerate(test_samples[:6]):
        name = f"partition_{index}"
        partitions.append(DataPartition(name, size_gb=12.0, predicted_accesses=25.0,
                                        latency_threshold_s=120.0))
        profiles[name] = {"gzip": predictor.predict_profile(sample, "gzip", Layout.CSV)}
    model = CostModel(azure_tier_catalog(include_archive=False), duration_months=5.5)
    assignment = solve_greedy(OptAssignProblem(partitions, model, profiles))
    for name, option in assignment.choices.items():
        tier = model.tiers[option.tier_index].name
        profile = profiles[name]["gzip"]
        print(f"{name:14s} predicted ratio {profile.ratio:5.2f} -> tier={tier:8s} scheme={option.scheme}")
    print(f"total projected cost: {assignment.total_cost:.1f} cents")


if __name__ == "__main__":
    main()
