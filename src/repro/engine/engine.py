"""The online tiering engine: continuous SCOPe over a stream of access events.

:class:`OnlineTieringEngine` wraps the batch components in a rolling-horizon
control loop.  Per epoch (billing month) it:

1. asks its :class:`~repro.engine.policies.TieringPolicy` whether to
   re-optimize, using only causally available information (the previous
   epoch's observations);
2. on re-optimization, forecasts each partition's monthly access rate from
   the feature store's sliding window (warm-started
   :class:`~repro.core.access_predict.WindowedAccessForecaster`), builds an
   :class:`~repro.core.optassign.OptAssignProblem` whose partitions carry the
   *current* placement (so the objective's tier-change term prices migrations
   truthfully), solves it, and lets the
   :class:`~repro.engine.executor.MigrationExecutor` apply and bill the moves;
3. steps the :class:`~repro.cloud.CloudStorageSimulator` one month
   (storage + the epoch's actual reads) and folds the epoch's events into the
   :class:`~repro.engine.features.FeatureStore` in O(new events).

The resulting :class:`EngineReport` carries the true end-to-end bill —
storage, reads, decompression, migrations and early-deletion penalties — so
``StaticOnce`` / ``PeriodicReoptimize`` / ``DriftTriggered`` policies can be
compared apples to apples on the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..cloud import (
    CloudStorageSimulator,
    CompiledPlacement,
    CostWeights,
    DataPartition,
    PartitionArrays,
    PlacementDecision,
    TierCatalog,
    TimedEvent,
)
from ..core.access_predict import WindowedAccessForecaster
from ..core.optassign import (
    DeltaSolver,
    InfeasibleError,
    OptAssignProblem,
    ProfileTable,
    solve_optassign,
)
from ..obs import get_metrics, get_tracer
from ..obs.clock import monotonic_s
from .events import EpochBatch, StreamWindow, TriggerWindow, windowed
from .executor import MigrationExecutor, MigrationReport
from .features import FeatureStore
from .policies import TieringPolicy

__all__ = [
    "EngineConfig",
    "EpochRecord",
    "WindowRecord",
    "EngineReport",
    "OnlineTieringEngine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the online control loop.

    ``horizon_months`` is the billing horizon each re-optimization plans for
    (predicted monthly rates are scaled by it); ``window_months`` is the
    feature store's sliding window.  ``prior_monthly_accesses`` substitutes
    for history at the bootstrap optimization: by default each partition's
    ``predicted_accesses`` field is interpreted as its prior *monthly* rate.

    ``reopt_mode`` selects how re-optimizations solve: ``"full"`` runs the
    complete :func:`~repro.core.optassign.solve_optassign` facade every time;
    ``"delta"`` keeps a :class:`~repro.core.optassign.DeltaSolver` across
    epochs and re-solves only the partitions whose horizon forecast moved
    more than ``delta_drift_threshold`` (relative), pinning the rest to their
    standing placement.  ``delta_drift_threshold=0.0`` re-solves every row
    that moved at all, making delta mode bill-identical to full mode.
    """

    horizon_months: float = 6.0
    window_months: int = 6
    compute_cost_per_s: float = 0.001
    weights: CostWeights = field(default_factory=CostWeights)
    forecast_alpha: float = 0.4
    forecast_blend: float = 0.6
    reopt_mode: str = "full"
    delta_drift_threshold: float = 0.1

    def __post_init__(self) -> None:
        if self.horizon_months <= 0:
            raise ValueError("horizon_months must be positive")
        if self.window_months <= 0:
            raise ValueError("window_months must be positive")
        if self.reopt_mode not in ("full", "delta"):
            raise ValueError(
                f"reopt_mode must be 'full' or 'delta', got {self.reopt_mode!r}"
            )
        if not 0.0 <= self.delta_drift_threshold < 1.0 / 3.0:
            raise ValueError(
                "delta_drift_threshold must be in [0, 1/3) — the delta "
                "solver's regret bound degenerates past 1/3"
            )


@dataclass
class EpochRecord:
    """What one epoch cost and what the engine did during it."""

    epoch: int
    reoptimized: bool
    storage_cost: float
    read_cost: float
    decompression_cost: float
    migration_cost: float
    early_deletion_penalty: float
    num_moved: int
    moved_gb: float
    access_count: int
    latency_violations: int
    wall_clock_s: float

    @property
    def bill_total(self) -> float:
        """Everything billed this epoch, in cents."""
        return (
            self.storage_cost
            + self.read_cost
            + self.decompression_cost
            + self.migration_cost
            + self.early_deletion_penalty
        )


@dataclass
class WindowRecord(EpochRecord):
    """An :class:`EpochRecord` for one epoch-free trigger window.

    ``epoch`` holds the window's ordinal index; ``start_month`` /
    ``end_month`` locate it on the virtual wall clock and ``cause`` names the
    trigger that closed it.  Extending :class:`EpochRecord` keeps windowed
    runs first-class citizens of :class:`EngineReport` (totals, summaries and
    comparisons work unchanged).
    """

    start_month: float = 0.0
    end_month: float = 0.0
    cause: str = ""

    @property
    def duration_months(self) -> float:
        return self.end_month - self.start_month


@dataclass
class EngineReport:
    """The outcome of running one policy over one stream."""

    policy: str
    records: list[EpochRecord]

    @property
    def num_epochs(self) -> int:
        return len(self.records)

    @property
    def total_bill(self) -> float:
        return float(sum(record.bill_total for record in self.records))

    @property
    def num_reoptimizations(self) -> int:
        return sum(1 for record in self.records if record.reoptimized)

    @property
    def total_migration_cost(self) -> float:
        return float(
            sum(
                record.migration_cost + record.early_deletion_penalty
                for record in self.records
            )
        )

    @property
    def total_moved_gb(self) -> float:
        return float(sum(record.moved_gb for record in self.records))

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.records:
            return 0.0
        return float(sum(record.wall_clock_s for record in self.records)) / len(
            self.records
        )

    def summary(self) -> dict[str, float | int | str]:
        """Machine-readable totals (used by the benchmark harness)."""
        return {
            "policy": self.policy,
            "epochs": self.num_epochs,
            "total_bill_cents": self.total_bill,
            "reoptimizations": self.num_reoptimizations,
            "migration_cost_cents": self.total_migration_cost,
            "moved_gb": self.total_moved_gb,
            "mean_epoch_seconds": self.mean_epoch_seconds,
        }


class OnlineTieringEngine:
    """Continuous tiering over an event stream with a pluggable policy.

    Parameters
    ----------
    partitions:
        The placement units (datasets or G-PART partitions).  Their
        ``predicted_accesses`` is read as the prior *monthly* rate used to
        bootstrap the first optimization; their ``current_tier`` is where the
        data lives at epoch 0 (``NEW_DATA_TIER`` for fresh ingests).  The
        engine works on copies — callers' objects are never mutated.
    tiers:
        The tier catalog prices every decision: placements, reads, moves.
    policy:
        Decides when to re-optimize (see :mod:`repro.engine.policies`).
    profiles:
        Optional OPTASSIGN :data:`~repro.core.optassign.ProfileTable` giving
        per-partition compression choices.
    profile_provider:
        Optional ``epoch -> ProfileTable`` callable invoked at every
        re-optimization; lets a warm-started COMPREDICT model
        (:meth:`repro.core.compredict.CompressionPredictor.partial_fit`)
        refresh profiles as data evolves.  Takes precedence over
        ``profiles``.
    latency_slo_s, provider_affinity:
        Optional per-partition tier-SLO caps and provider-affinity sets (see
        :class:`~repro.core.optassign.OptAssignProblem`), enforced at every
        re-optimization.  With a multi-provider ``tiers`` catalog
        (:class:`repro.cloud.MultiProviderCatalog`) this makes the engine a
        continuous *multi-cloud* tiering loop: drift-triggered
        re-optimizations may move partitions between providers, with the
        executor billing cross-provider egress on every such move.
    chaos:
        Optional :class:`~repro.chaos.ChaosInjector` applying a
        :class:`~repro.chaos.DisruptionSchedule` at epoch boundaries (provider
        outages, price shocks).  Without one — the calm run — every chaos code
        path is inert and the engine's bills are bit-identical to the
        pre-chaos code.
    """

    def __init__(
        self,
        partitions: Sequence[DataPartition],
        tiers: TierCatalog,
        policy: TieringPolicy,
        config: EngineConfig | None = None,
        profiles: ProfileTable | None = None,
        profile_provider: Callable[[int], ProfileTable] | None = None,
        forecaster: WindowedAccessForecaster | None = None,
        latency_slo_s: Mapping[str, float] | None = None,
        provider_affinity: Mapping[str, object] | None = None,
        chaos: object | None = None,
    ):
        if not partitions:
            raise ValueError("at least one partition is required")
        self.config = config or EngineConfig()
        self.tiers = tiers
        self.policy = policy
        self._partitions = [replace(partition) for partition in partitions]
        self._by_name = {partition.name: partition for partition in self._partitions}
        self._arrays = PartitionArrays.from_partitions(self._partitions)
        self._compiled: CompiledPlacement | None = None
        self._profiles = profiles
        self._profile_provider = profile_provider
        self._latency_slo = dict(latency_slo_s) if latency_slo_s else None
        self._provider_affinity = (
            dict(provider_affinity) if provider_affinity else None
        )
        self.chaos = chaos
        self._banned_tiers: frozenset[int] = frozenset()
        self._lifted_affinity: dict[str, object] = {}
        self.simulator = CloudStorageSimulator(
            tiers, compute_cost_per_s=self.config.compute_cost_per_s
        )
        self.executor = MigrationExecutor(tiers)
        self.feature_store = FeatureStore(window_months=self.config.window_months)
        self.forecaster = forecaster or WindowedAccessForecaster(
            alpha=self.config.forecast_alpha, blend=self.config.forecast_blend
        )
        # The prior monthly rates stand in for history at the bootstrap —
        # but a caller-supplied warm forecaster already knows better for the
        # partitions it tracks, so only the untracked ones get the prior.
        self.forecaster.seed(
            {
                partition.name: partition.predicted_accesses
                for partition in self._partitions
                if partition.name not in self.forecaster
            },
            epoch=-1,
        )
        self.placement: dict[str, PlacementDecision] | None = None
        self.months_in_tier: dict[str, float] = {
            partition.name: (0.0 if partition.is_new else float("inf"))
            for partition in self._partitions
        }
        self._last_epoch = -1
        self._last_window = -1
        self._window_clock = 0.0
        self._last_observed: dict[str, float] | None = None
        self._pending_forecast: dict[str, float] | None = None
        self._last_applied_forecast: dict[str, float] | None = None
        self._delta: DeltaSolver | None = (
            DeltaSolver(drift_threshold=self.config.delta_drift_threshold)
            if self.config.reopt_mode == "delta"
            else None
        )
        self.last_delta_report = None

    # -- the control loop -------------------------------------------------------
    def run(self, stream: Iterable[EpochBatch]) -> EngineReport:
        """Consume the stream epoch by epoch and return the end-to-end report.

        The engine lives on a single continuous timeline: ``run`` may be
        called again with a stream whose epochs continue the previous one
        (picking up placement, features, drift observations and residency
        clocks where they left off).  Once the engine has consumed a batch,
        epochs must advance by exactly one month — billing, residency clocks
        and forecast decay all assume a dense monthly timeline, so a gap (or
        a repeated/earlier epoch) raises *before* anything is billed or
        migrated and the engine's state is never half-advanced.  Quiet
        months are modelled as batches with no events (every provided stream
        yields them), not as skipped epochs.
        """
        records = [self.step(batch) for batch in stream]
        return EngineReport(policy=self.policy.name, records=records)

    def step(self, batch: EpochBatch) -> EpochRecord:
        """Consume a single epoch batch: the body of :meth:`run`'s loop.

        Equivalent to ``begin_epoch`` → (``build_problem`` →
        ``solve_optassign`` → ``apply_assignment`` when the policy fires) →
        ``settle``.  External schedulers (the fleet layer) call those hooks
        individually so the solve can be batched across engines; everything
        else should call ``step`` or ``run``.
        """
        started = monotonic_s()
        with get_tracer().span("engine.epoch", epoch=batch.epoch) as span:
            migration: MigrationReport | None = None
            reoptimized = False
            force_fire = False
            if self.chaos is not None:
                force_fire = self.chaos.before_engine_epoch(self, batch.epoch)
            if self.begin_epoch(batch.epoch) or force_fire:
                problem = self.build_problem(batch.epoch)
                try:
                    assignment = self.solve_problem(problem)
                except InfeasibleError as error:
                    # Graceful degradation is a chaos-run contract only: a calm
                    # run keeps its loud fail-fast certificates.  With chaos
                    # attached and a standing placement to fall back on, the
                    # epoch is billed at the frozen layout and the failure is
                    # recorded as a structured DegradationReport.
                    if self.chaos is None or self.placement is None:
                        raise
                    self.chaos.record_frozen_placement(self, batch.epoch, error)
                else:
                    migration = self.apply_assignment(
                        batch.epoch, assignment.to_placement()
                    )
                    reoptimized = True
                    if self.chaos is not None:
                        self.chaos.note_migration(
                            batch.epoch, migration, self._banned_tiers
                        )
            record = self.settle(
                batch, migration=migration, reoptimized=reoptimized, started=started
            )
            span.set(reoptimized=reoptimized)
        return record

    def solve_problem(self, problem: OptAssignProblem):
        """Solve a built instance under the configured ``reopt_mode``.

        ``"full"`` runs :func:`solve_optassign` from scratch.  ``"delta"``
        hands the instance to the engine's persistent
        :class:`~repro.core.optassign.DeltaSolver`; the policy's
        per-partition drift scores (when it has them — see
        :meth:`~repro.engine.policies.TieringPolicy.drifted_partitions`)
        widen the changed-row set, and a ``profile_provider`` forces every
        row changed since refreshed profiles reprice all candidate options.
        The delta report lands in :attr:`last_delta_report` for inspection.
        """
        with get_tracer().span("engine.solve", mode=self.config.reopt_mode):
            if self._delta is None:
                return solve_optassign(problem).assignment
            if self._profile_provider is not None:
                changed = set(problem.partition_names)
            else:
                changed = self.policy.drifted_partitions(
                    self.config.delta_drift_threshold
                )
            report = self._delta.solve(problem, changed=changed)
            self.last_delta_report = report
            return report.assignment

    # -- the epoch-free control loop ---------------------------------------------
    # The windowed timeline generalizes the dense monthly grid: trigger
    # windows (event-count / wall-clock / drift-score, see
    # :mod:`repro.engine.events`) close batches at arbitrary points of
    # virtual time.  An engine commits to one timeline on first use — mixing
    # step() and step_window() raises, because residency clocks, feature
    # epochs and forecast decay cannot straddle two clocks.  Month-aligned
    # ``TimeTrigger(1.0)`` windows reproduce the dense path bit-exactly (the
    # oracle lock in tests/engine/test_windows.py).

    def run_stream(
        self,
        events: Iterable[TimedEvent],
        trigger: TriggerWindow,
        *,
        start_month: float = 0.0,
        horizon_months: float | None = None,
    ) -> EngineReport:
        """Consume a continuous timed-event stream under a trigger window.

        The streaming analogue of :meth:`run`: cuts ``events`` (time-ordered
        :class:`repro.cloud.TimedEvent`, e.g. a
        :class:`repro.workloads.PoissonZipfStream`) into
        :class:`~repro.engine.events.StreamWindow` batches with
        :func:`~repro.engine.events.windowed` and steps each one.  Only the
        open window is ever materialized, so RAM stays flat at millions of
        events.  A :class:`~repro.engine.events.DriftTrigger` without a
        ``baseline_provider`` (including inside an
        :class:`~repro.engine.events.AnyTrigger`) is wired to this engine's
        last *applied* forecast, closing the loop drift detection needs.
        """
        self._wire_drift_baseline(trigger)
        records: list[EpochRecord] = [
            self.step_window(window)
            for window in windowed(
                events,
                trigger,
                start_month=start_month,
                horizon_months=horizon_months,
            )
        ]
        return EngineReport(policy=self.policy.name, records=records)

    def _wire_drift_baseline(self, trigger: TriggerWindow) -> None:
        """Point baseline-less drift triggers at the last applied forecast."""

        def provider() -> Mapping[str, float] | None:
            return self._last_applied_forecast

        members = [trigger, *getattr(trigger, "triggers", ())]
        for member in members:
            if (
                hasattr(member, "baseline_provider")
                and member.baseline_provider is None
            ):
                member.baseline_provider = provider

    def step_window(self, window: StreamWindow) -> WindowRecord:
        """Consume one closed trigger window: the epoch-free :meth:`step`.

        A window whose ``cause`` is ``"drift"`` forces a re-optimization even
        if the policy would not fire — the trigger has already detected drift
        against the engine's own applied forecast, and closing the window
        *was* the decision to react now rather than at the next grid point.
        """
        started = monotonic_s()
        with get_tracer().span(
            "engine.window", index=window.index, cause=window.cause
        ) as span:
            migration: MigrationReport | None = None
            reoptimized = False
            force_fire = window.cause == "drift"
            if self.chaos is not None:
                force_fire = (
                    self.chaos.before_engine_window(
                        self, window.index, window.start_month, window.end_month
                    )
                    or force_fire
                )
            if self.begin_window(window.index) or force_fire:
                problem = self.build_problem(window.index)
                try:
                    assignment = self.solve_problem(problem)
                except InfeasibleError as error:
                    if self.chaos is None or self.placement is None:
                        raise
                    self.chaos.record_frozen_placement(self, window.index, error)
                else:
                    migration = self.apply_assignment(
                        window.index, assignment.to_placement()
                    )
                    reoptimized = True
                    if self.chaos is not None:
                        self.chaos.note_migration(
                            window.index, migration, self._banned_tiers
                        )
            record = self.settle_window(
                window, migration=migration, reoptimized=reoptimized, started=started
            )
            span.set(reoptimized=reoptimized)
        get_metrics().counter("engine.window_closes", cause=window.cause).add()
        return record

    def _validate_window(self, index: int) -> None:
        """Raise unless ``index`` continues the windowed timeline."""
        if self._last_epoch >= 0:
            raise ValueError(
                "this engine is on the dense monthly timeline (step was "
                "called); epoch-free window stepping cannot be mixed in — "
                "the two clocks would disagree"
            )
        if self._last_window >= 0 and index != self._last_window + 1:
            raise ValueError(
                f"stream windows must be consecutive (got window {index} "
                f"after {self._last_window}); windowed() yields gap-free "
                "indices"
            )

    def begin_window(self, index: int) -> bool:
        """Validate the window and ask the policy whether to re-optimize.

        The windowed twin of :meth:`begin_epoch`: the policy sees the window
        ordinal as its epoch and the previous window's observed *monthly
        rates* (counts scaled by window duration), so periodic policies tick
        per window and drift policies compare rate against forecast rate.
        """
        self._validate_window(index)
        if self.placement is None:
            return True
        tracer = get_tracer()
        with tracer.span(
            "engine.policy_decision", window=index, policy=self.policy.name
        ) as span:
            fire = self.policy.should_reoptimize(index, self._last_observed)
            if tracer.enabled:
                span.set(fire=fire)
                score = getattr(self.policy, "last_score", None)
                if score is not None:
                    get_metrics().gauge(
                        "engine.drift_score", policy=self.policy.name
                    ).set(score)
        return fire

    def settle_window(
        self,
        window: StreamWindow,
        migration: MigrationReport | None = None,
        reoptimized: bool = False,
        started: float | None = None,
    ) -> WindowRecord:
        """Bill one trigger window and fold its events into the engine state.

        Storage accrues for exactly ``window.duration_months``; reads are
        billed per event in stream order (the identical arithmetic to a
        dense epoch — a month-aligned window settles bit-exactly like
        :meth:`settle`).  The feature store and forecaster receive observed
        **monthly rates** — window counts divided by the window's duration —
        so windows of different widths remain comparable; for the degenerate
        zero-width flush window raw counts are folded as-is.  Residency
        clocks advance by the window's fractional duration.
        """
        index = window.index
        self._validate_window(index)
        tracer = get_tracer()
        duration = window.duration_months
        with tracer.span(
            "engine.settle", window=index, duration_months=duration
        ):
            if self._compiled is None:
                self._compiled = self.simulator.compile_placement(
                    self._arrays, self.placement
                )
            with tracer.span("engine.ingest") as ingest_span:
                step = self._compiled.step(window.events, storage_months=duration)
                ingest_span.set(events=len(window.events))

            counts = window.reads_by_partition()
            if duration > 0:
                observed = {
                    name: count / duration for name, count in counts.items()
                }
            else:
                observed = counts
            with tracer.span("engine.feature_store"):
                self.feature_store.observe_counts(index, observed)
                self.forecaster.update(index, observed)
            MigrationExecutor.tick(
                self.months_in_tier, list(self._by_name), months=duration
            )
            self._last_observed = observed
            self._last_window = index
            self._window_clock = window.end_month
            self._pending_forecast = None
            if tracer.enabled:
                get_metrics().gauge("engine.window_fill").set(
                    self.feature_store.window_fill
                )

        return WindowRecord(
            epoch=index,
            reoptimized=reoptimized,
            storage_cost=step.bill.storage,
            read_cost=step.bill.read,
            decompression_cost=step.bill.decompression,
            migration_cost=migration.migration_cost if migration else 0.0,
            early_deletion_penalty=(
                migration.early_deletion_penalty if migration else 0.0
            ),
            num_moved=migration.num_moved if migration else 0,
            moved_gb=migration.moved_gb if migration else 0.0,
            access_count=step.access_count,
            latency_violations=step.latency_violations,
            wall_clock_s=monotonic_s() - started if started is not None else 0.0,
            start_month=window.start_month,
            end_month=window.end_month,
            cause=window.cause,
        )

    @property
    def window_clock(self) -> float:
        """Virtual time (months) the windowed timeline has settled through."""
        return self._window_clock

    @property
    def last_applied_forecast(self) -> Mapping[str, float] | None:
        """The monthly-rate forecast behind the most recent applied placement."""
        return self._last_applied_forecast

    # -- external-scheduling hooks ----------------------------------------------
    # The fleet scheduler (:mod:`repro.fleet`) epoch-locks many engines and
    # replaces the per-engine solve with one stacked, pool-arbitrated solve.
    # Per epoch it must call, in order: ``begin_epoch`` (validation + policy
    # check, no state change), then for firing engines ``build_problem`` and
    # ``apply_assignment`` with an externally computed placement, then
    # ``settle`` for *every* engine.  ``step`` composes exactly these hooks.

    def _validate_epoch(self, epoch: int) -> None:
        """Raise unless ``epoch`` continues the dense monthly timeline."""
        if self._last_window >= 0:
            raise ValueError(
                "this engine is on the epoch-free windowed timeline "
                "(step_window was called); dense epoch stepping cannot be "
                "mixed in — the two clocks would disagree"
            )
        if self._last_epoch >= 0 and epoch != self._last_epoch + 1:
            raise ValueError(
                f"stream epochs must advance one month at a time (got "
                f"{epoch} after {self._last_epoch}); model quiet months "
                "as empty batches, not gaps"
            )

    def begin_epoch(self, epoch: int) -> bool:
        """Validate the epoch and ask the policy whether to re-optimize.

        Raises before anything is billed or migrated when ``epoch`` does not
        continue the engine's dense monthly timeline.  Mutates no engine
        state (the policy may update its own drift bookkeeping).
        """
        self._validate_epoch(epoch)
        if self.placement is None:
            return True
        tracer = get_tracer()
        with tracer.span(
            "engine.policy_decision", epoch=epoch, policy=self.policy.name
        ) as span:
            fire = self.policy.should_reoptimize(epoch, self._last_observed)
            if tracer.enabled:
                span.set(fire=fire)
                score = getattr(self.policy, "last_score", None)
                if score is not None:
                    get_metrics().gauge(
                        "engine.drift_score", policy=self.policy.name
                    ).set(score)
        return fire

    def settle(
        self,
        batch: EpochBatch,
        migration: MigrationReport | None = None,
        reoptimized: bool = False,
        started: float | None = None,
    ) -> EpochRecord:
        """Bill the epoch and fold its events into the engine's state.

        Steps the simulator one month against the (possibly just-changed)
        placement, feeds the feature store and forecaster, advances the
        residency clocks and returns the epoch's record.  ``migration`` is
        the report of this epoch's re-optimization, if one was applied.
        """
        epoch = batch.epoch
        self._validate_epoch(epoch)
        tracer = get_tracer()
        with tracer.span("engine.settle", epoch=epoch):
            # The compiled placement answers step_month queries with
            # vectorized gathers; it is invalidated whenever a
            # re-optimization moves data.
            if self._compiled is None:
                self._compiled = self.simulator.compile_placement(
                    self._arrays, self.placement
                )
            with tracer.span("engine.ingest") as ingest_span:
                step = self._compiled.step(batch.events)
                ingest_span.set(events=len(batch.events))

            observed = batch.reads_by_partition()
            with tracer.span("engine.feature_store"):
                self.feature_store.observe(batch)
                self.forecaster.update(epoch, observed)
            MigrationExecutor.tick(self.months_in_tier, list(self._by_name))
            self._last_observed = observed
            self._last_epoch = epoch
            # A forecast built for this epoch is stale once the epoch
            # settles; if a solve failed between build_problem and here,
            # dropping it keeps the apply_assignment guard honest for later
            # epochs.
            self._pending_forecast = None
            if tracer.enabled:
                get_metrics().gauge("engine.window_fill").set(
                    self.feature_store.window_fill
                )

        return EpochRecord(
            epoch=epoch,
            reoptimized=reoptimized,
            storage_cost=step.bill.storage,
            read_cost=step.bill.read,
            decompression_cost=step.bill.decompression,
            migration_cost=migration.migration_cost if migration else 0.0,
            early_deletion_penalty=(
                migration.early_deletion_penalty if migration else 0.0
            ),
            num_moved=migration.num_moved if migration else 0,
            moved_gb=migration.moved_gb if migration else 0.0,
            access_count=step.access_count,
            latency_violations=step.latency_violations,
            wall_clock_s=monotonic_s() - started if started is not None else 0.0,
        )

    # -- chaos-facing state -------------------------------------------------------
    # The chaos injector manipulates tier eligibility and residency pins
    # through these methods only; with no injector attached none of them run
    # and the engine behaves exactly as before the chaos subsystem existed.

    @property
    def banned_tiers(self) -> frozenset[int]:
        """Tier indices masked infeasible at the next re-optimization."""
        return self._banned_tiers

    def set_banned_tiers(self, banned: Iterable[int]) -> None:
        """Replace the banned-tier set (a provider outage's dead tiers)."""
        self._banned_tiers = frozenset(int(index) for index in banned)

    def invalidate_pricing(self) -> None:
        """Drop price-derived caches after an in-place catalog re-pricing.

        The compiled placement snapshots the catalog's price vectors at
        compile time; recompiling against the live (just-repriced) catalog is
        what makes the *next* settle bill at post-shock prices.
        """
        self._compiled = None

    @property
    def delta_solver(self) -> DeltaSolver | None:
        """The persistent delta solver in ``reopt_mode="delta"`` (else None)."""
        return self._delta

    def partitions_on_tiers(self, tier_indices: Iterable[int]) -> list[str]:
        """Names of partitions currently placed on any of the given tiers."""
        wanted = set(int(index) for index in tier_indices)
        if not wanted or self.placement is None:
            return []
        return [
            name
            for name, decision in self.placement.items()
            if int(decision.tier_index) in wanted
        ]

    def lift_provider_affinity(self, names: Iterable[str]) -> list[str]:
        """Suspend residency pins for ``names``; returns the names lifted.

        Used during forced evacuation when a partition's pinned providers
        have no live tier left: the pin is *suspended* (kept aside for
        :meth:`restore_provider_affinity` at recovery) rather than deleted,
        and the evacuation is recorded as an SLO violation by the injector.
        """
        if not self._provider_affinity:
            return []
        lifted = []
        for name in names:
            entry = self._provider_affinity.pop(name, None)
            if entry is not None:
                self._lifted_affinity[name] = entry
                lifted.append(name)
        return lifted

    def restore_provider_affinity(self) -> list[str]:
        """Re-arm every suspended residency pin; returns the restored names.

        Restoring makes an evacuated partition's current placement violate
        its affinity again, so the next policy-driven re-optimization — not
        the recovery event itself — moves it home (re-admission happens at
        reopt time, never mid-epoch).
        """
        if not self._lifted_affinity:
            return []
        if self._provider_affinity is None:
            self._provider_affinity = {}
        restored = list(self._lifted_affinity)
        self._provider_affinity.update(self._lifted_affinity)
        self._lifted_affinity.clear()
        return restored

    def tier_usage_gb(self) -> np.ndarray:
        """Stored GB per catalog tier under the current placement.

        Zeros before the first re-optimization (nothing is placed yet).  The
        fleet layer sums this across engines to account shared
        :class:`~repro.cloud.CapacityPool` budgets.
        """
        if self.placement is None:
            return np.zeros(len(self.tiers), dtype=np.float64)
        if self._compiled is None:
            self._compiled = self.simulator.compile_placement(
                self._arrays, self.placement
            )
        return self._compiled.tier_usage_gb()

    # -- re-optimization ---------------------------------------------------------
    def forecast_monthly(self, epoch: int) -> dict[str, float]:
        """Projected monthly reads per partition, from windowed features.

        Uses only information available *before* ``epoch``: the feature
        store's sliding window and the forecaster's warm EWMA state (seeded
        with the priors at construction).
        """
        names = list(self._by_name)
        windows = self.feature_store.window_series_map(names)
        return self.forecaster.forecast_monthly(names, windows, epoch=epoch - 1)

    def build_problem(self, epoch: int) -> OptAssignProblem:
        """The OPTASSIGN instance this epoch's re-optimization would solve.

        Forecasts monthly rates from the feature store, scales them to the
        planning horizon, prices against the engine's cost model and warm
        starts from the current placement (so staying put is free and every
        move must earn back its own cost over the horizon).  The forecast is
        remembered so that :meth:`apply_assignment` can hand it to the policy.
        """
        config = self.config
        tracer = get_tracer()
        with tracer.span("engine.build_problem", epoch=epoch):
            with tracer.span("engine.forecast"):
                predicted_monthly = self.forecast_monthly(epoch)
            problem = self._assemble_problem(epoch, predicted_monthly)
        self._pending_forecast = predicted_monthly
        return problem

    def _assemble_problem(
        self, epoch: int, predicted_monthly: Mapping[str, float]
    ) -> OptAssignProblem:
        config = self.config
        horizon_partitions = [
            replace(
                partition,
                predicted_accesses=predicted_monthly[partition.name]
                * config.horizon_months,
            )
            for partition in self._partitions
        ]
        cost_model = self.simulator.cost_model(
            duration_months=config.horizon_months, weights=config.weights
        )
        profiles = (
            self._profile_provider(epoch)
            if self._profile_provider is not None
            else self._profiles
        )
        problem = OptAssignProblem(
            horizon_partitions,
            cost_model,
            profiles,
            latency_slo_s=self._latency_slo,
            provider_affinity=self._provider_affinity,
            banned_tiers=self._banned_tiers or None,
        )
        if self.placement is not None:
            # Warm start: price the objective's tier-change term from where
            # the data actually lives today, so staying put is free and every
            # move must earn back its own cost over the horizon.
            problem = problem.with_current_placement(self.placement)
        return problem

    def apply_assignment(
        self, epoch: int, new_placement: Mapping[str, PlacementDecision]
    ) -> MigrationReport:
        """Apply and bill a solved placement, completing a re-optimization.

        ``new_placement`` is usually ``report.assignment.to_placement()`` of
        a solve over :meth:`build_problem`'s instance — or, in the fleet
        setting, this engine's slice of a stacked, pool-arbitrated solve.
        The policy is notified with the forecast the problem was built from,
        so every ``apply_assignment`` requires a fresh preceding
        :meth:`build_problem` (notifying with a stale forecast would corrupt
        a drift policy's baseline silently).
        """
        if self._pending_forecast is None:
            raise ValueError(
                "apply_assignment requires a preceding build_problem for "
                "this re-optimization (the policy must be notified with the "
                "forecast the applied placement was planned from)"
            )
        with get_tracer().span("engine.migrate", epoch=epoch) as span:
            # Moves *off* a banned (dead) tier are forced evacuations, not
            # voluntary early deletions — the minimum-residency penalty is
            # waived for them.  Empty banned set (every calm run): no waiver.
            migration = self.executor.apply(
                self._partitions,
                self.placement,
                dict(new_placement),
                self.months_in_tier,
                epoch=epoch,
                waive_early_deletion_tiers=self._banned_tiers or None,
            )
            span.set(num_moved=migration.num_moved)
        self.placement = dict(new_placement)
        self._compiled = None
        self.policy.notify_reoptimized(epoch, self._pending_forecast)
        # The forecast this placement was planned from doubles as the drift
        # baseline for epoch-free DriftTriggers (see run_stream).
        self._last_applied_forecast = dict(self._pending_forecast)
        self._pending_forecast = None
        get_metrics().counter("engine.reoptimizations").add()
        return migration
