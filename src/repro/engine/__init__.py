"""Online tiering engine: continuous SCOPe over streaming access logs.

The batch pipeline (:mod:`repro.core.pipeline`) optimizes once over a full
historical trace.  This subpackage turns that into an event-driven,
rolling-horizon control loop for the production setting where access patterns
drift and placements must be revisited as new months of telemetry arrive:

* :mod:`repro.engine.events` — epoch-by-epoch event streams (replayed traces,
  synthetic drifting workloads, dataset catalogs);
* :mod:`repro.engine.features` — the incremental sliding-window
  :class:`FeatureStore` (O(new events) per epoch, not O(trace));
* :mod:`repro.engine.policies` — when to re-optimize: :class:`StaticOnce`
  (batch baseline), :class:`PeriodicReoptimize`, :class:`DriftTriggered`;
* :mod:`repro.engine.executor` — the :class:`MigrationExecutor` that applies
  placement changes and bills moves and early-deletion penalties;
* :mod:`repro.engine.engine` — :class:`OnlineTieringEngine`, the loop tying
  stream -> features -> forecast -> OPTASSIGN -> migration -> simulator.

See ``examples/online_tiering.py`` for a three-policy comparison on a
drifting workload and ``benchmarks/bench_engine_online.py`` for the
end-to-end bill / wall-clock benchmark.
"""

from .engine import (
    EngineConfig,
    EngineReport,
    EpochRecord,
    OnlineTieringEngine,
    WindowRecord,
)
from .events import (
    AnyTrigger,
    CountTrigger,
    DriftTrigger,
    EpochBatch,
    ReplayStream,
    SeriesStream,
    StreamWindow,
    TimeTrigger,
    TriggerWindow,
    monthly_batches,
    stream_from_catalog,
    windowed,
)
from .executor import MigrationExecutor, MigrationRecord, MigrationReport
from .features import FeatureStore, PartitionFeatures, ScalarFeatureStore
from .policies import (
    DriftTriggered,
    PeriodicReoptimize,
    StaticOnce,
    TieringPolicy,
    drift_score,
    partition_drift_scores,
)

__all__ = [
    "EngineConfig",
    "EngineReport",
    "EpochRecord",
    "WindowRecord",
    "OnlineTieringEngine",
    "EpochBatch",
    "ReplayStream",
    "SeriesStream",
    "stream_from_catalog",
    "StreamWindow",
    "TriggerWindow",
    "CountTrigger",
    "TimeTrigger",
    "DriftTrigger",
    "AnyTrigger",
    "windowed",
    "monthly_batches",
    "MigrationExecutor",
    "MigrationRecord",
    "MigrationReport",
    "FeatureStore",
    "PartitionFeatures",
    "ScalarFeatureStore",
    "TieringPolicy",
    "StaticOnce",
    "PeriodicReoptimize",
    "DriftTriggered",
    "drift_score",
    "partition_drift_scores",
]
