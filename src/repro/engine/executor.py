"""Applying placement changes to the simulated cloud — and paying for them.

Re-optimizing is free on paper; in a real object store every move is billed:
the data is read out of its source tier, written into its destination tier,
and tiers with a minimum residency (Azure archive: 6 months) charge the
remaining storage months when data leaves early.  :class:`MigrationExecutor`
charges exactly those costs, mutates the live partitions' ``current_tier``
and resets their tier-residency clocks, so policies are compared on *true
end-to-end bills* — a policy that thrashes data between tiers loses to one
that stays put, even if each of its placements is individually optimal.

Compression changes are treated as moves too: re-encoding a partition means
reading the old representation and writing the new one, even within a tier.
After a placement is applied the partition's ``current_codec`` records the
scheme it is stored with, so subsequent re-optimizations pin
already-compressed partitions to their scheme (the paper's last ILP
constraint) instead of flipping codecs at a billed cost the objective never
priced.  The one transition that remains billed-but-unpriced is compressing
previously *uncompressed* data in place (the objective's tier-change term is
zero within a tier); that charge is one-off per partition and biases the
engine conservatively against churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, MutableMapping, Sequence

from ..cloud import DataPartition, PlacementDecision, TierCatalog
from ..cloud.objects import NO_COMPRESSION
from ..cloud.tiers import NEW_DATA_TIER
from ..obs import get_metrics

__all__ = ["MigrationRecord", "MigrationReport", "MigrationExecutor"]


@dataclass(frozen=True)
class MigrationRecord:
    """One partition's move during a placement change.

    ``cost`` is the read-at-source plus write-at-destination charge;
    ``egress_cost`` is the source provider's per-GB network egress fee when
    the move crosses a provider boundary in a multi-provider catalog (zero
    for intra-provider moves and for single-provider catalogs).
    """

    partition: str
    from_tier: int
    to_tier: int
    moved_gb: float
    cost: float
    early_deletion_penalty: float
    egress_cost: float = 0.0


@dataclass
class MigrationReport:
    """Everything a placement change cost."""

    epoch: int
    moves: list[MigrationRecord]

    @property
    def num_moved(self) -> int:
        return len(self.moves)

    @property
    def moved_gb(self) -> float:
        return float(sum(move.moved_gb for move in self.moves))

    @property
    def migration_cost(self) -> float:
        """Read-at-source, write-at-destination and cross-provider egress
        charges, in cents."""
        return float(sum(move.cost + move.egress_cost for move in self.moves))

    @property
    def egress_cost(self) -> float:
        """Cross-provider egress charges alone, in cents."""
        return float(sum(move.egress_cost for move in self.moves))

    @property
    def early_deletion_penalty(self) -> float:
        return float(sum(move.early_deletion_penalty for move in self.moves))

    @property
    def total_cost(self) -> float:
        return self.migration_cost + self.early_deletion_penalty


class MigrationExecutor:
    """Applies a new placement to the live partition state, charging for moves."""

    def __init__(self, tiers: TierCatalog):
        self.tiers = tiers

    def apply(
        self,
        partitions: Sequence[DataPartition],
        old_placement: Mapping[str, PlacementDecision] | None,
        new_placement: Mapping[str, PlacementDecision],
        months_in_tier: MutableMapping[str, float],
        epoch: int = 0,
        waive_early_deletion_tiers: "frozenset[int] | set[int] | None" = None,
    ) -> MigrationReport:
        """Move every partition to its new placement and bill the moves.

        ``old_placement`` is ``None`` for the initial placement of newly
        ingested data (everything pays only its destination write cost).
        Mutates each partition's ``current_tier`` and resets
        ``months_in_tier`` for moved partitions; unmoved partitions (same
        tier, same scheme) cost nothing.

        ``waive_early_deletion_tiers`` names source tiers whose outbound
        moves skip the early-deletion penalty.  A *forced evacuation* off a
        dead provider's tiers is not a voluntary early deletion: charging the
        remaining-months penalty there, on top of the evacuation move itself
        (and a second migration if the partition later returns after
        recovery), would double-bill the outage.  The residency clock still
        resets — the waiver changes who eats the penalty, not where the data
        is.
        """
        missing = [
            partition.name
            for partition in partitions
            if partition.name not in new_placement
        ]
        if missing:
            # Validate before the loop mutates any live state: a partial
            # apply would leave moves un-billed and residency clocks wrong.
            raise KeyError(f"new placement missing partitions: {missing}")
        moves: list[MigrationRecord] = []
        for partition in partitions:
            name = partition.name
            new = new_placement[name]
            old = old_placement.get(name) if old_placement is not None else None
            from_tier = partition.current_tier if old is None else old.tier_index
            # Without an old placement the partition's own codec says how the
            # data is stored today — a pre-compressed partition keeping its
            # tier and scheme is not a move.
            old_scheme = (
                (partition.current_codec or NO_COMPRESSION)
                if old is None
                else old.profile.scheme
            )

            if from_tier == NEW_DATA_TIER:
                stored_gb = new.profile.compressed_gb(partition.size_gb)
                cost = self.tiers[new.tier_index].write_cost_for(stored_gb)
                moves.append(
                    MigrationRecord(
                        partition=name,
                        from_tier=NEW_DATA_TIER,
                        to_tier=new.tier_index,
                        moved_gb=stored_gb,
                        cost=cost,
                        early_deletion_penalty=0.0,
                    )
                )
            elif from_tier != new.tier_index or old_scheme != new.profile.scheme:
                source = self.tiers[from_tier]
                destination = self.tiers[new.tier_index]
                if old is not None:
                    read_gb = old.profile.compressed_gb(partition.size_gb)
                elif old_scheme == new.profile.scheme:
                    # Same scheme, tier move only: the stored size is the new
                    # profile's compressed size.
                    read_gb = new.profile.compressed_gb(partition.size_gb)
                else:
                    # Old representation unknown — charge the uncompressed
                    # size (conservative upper bound).
                    read_gb = partition.size_gb
                write_gb = new.profile.compressed_gb(partition.size_gb)
                cost = source.read_cost_for(read_gb) + destination.write_cost_for(
                    write_gb
                )
                # Cross-provider moves additionally pay the source provider's
                # network egress on the bytes read out (stored size at source).
                egress = (
                    self.tiers.egress_cost_per_gb(from_tier, new.tier_index) * read_gb
                )
                penalty = 0.0
                if from_tier != new.tier_index and not (
                    waive_early_deletion_tiers
                    and from_tier in waive_early_deletion_tiers
                ):
                    resident = months_in_tier.get(name, float("inf"))
                    if resident < source.early_deletion_months:
                        penalty = source.storage_cost_for(
                            partition.size_gb, source.early_deletion_months - resident
                        )
                moves.append(
                    MigrationRecord(
                        partition=name,
                        from_tier=from_tier,
                        to_tier=new.tier_index,
                        moved_gb=read_gb,
                        cost=cost,
                        early_deletion_penalty=penalty,
                        egress_cost=egress,
                    )
                )
            else:
                continue  # same tier, same scheme: nothing to do, nothing to pay

            partition.current_tier = new.tier_index
            # Record the applied scheme as the partition's current codec: the
            # paper pins already-compressed partitions to their scheme, so the
            # next warm-started re-optimization cannot flip codecs at a billed
            # cost the objective never priced.
            scheme = new.profile.scheme
            partition.current_codec = None if scheme == NO_COMPRESSION else scheme
            months_in_tier[name] = 0.0
        report = MigrationReport(epoch=epoch, moves=moves)
        metrics = get_metrics()
        if metrics.enabled and report.num_moved:
            metrics.counter("migration.moves").add(report.num_moved)
            metrics.counter("migration.moved_gb").add(report.moved_gb)
            metrics.counter("migration.cost_cents").add(report.migration_cost)
            metrics.counter("migration.egress_cents").add(report.egress_cost)
            metrics.counter("migration.early_deletion_cents").add(
                report.early_deletion_penalty
            )
        return report

    @staticmethod
    def tick(
        months_in_tier: MutableMapping[str, float],
        names: Sequence[str],
        months: float = 1.0,
    ) -> None:
        """Advance every partition's tier-residency clock by ``months``.

        The dense epoch loop ticks one month at a time; the epoch-free
        windowed loop ticks each window's fractional duration.
        """
        if months < 0:
            raise ValueError("months must be non-negative")
        for name in names:
            months_in_tier[name] = months_in_tier.get(name, 0.0) + months
