"""Re-optimization policies: when should the engine re-run SCOPe?

Every policy answers one question per epoch — *do we pay the optimizer (and
the migrations it may trigger) now?* — using only causally available
information: the epoch number and the previous epoch's observed accesses.

* :class:`StaticOnce` — the paper's batch baseline: optimize at the first
  epoch, never revisit.  Placements go stale as access patterns drift.
* :class:`PeriodicReoptimize` — re-optimize every ``period_months`` epochs,
  the classic cron-style production setup.  Reacts within one period but pays
  for re-optimizations whether or not anything changed.
* :class:`DriftTriggered` — re-optimize only when the observed access
  distribution diverges from what the last optimization predicted.  The
  divergence score combines total-variation distance over the *shape* of the
  per-partition access distribution with the relative error in total
  *volume*, so both "different data got hot" and "everything went quiet"
  fire the trigger.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

__all__ = [
    "TieringPolicy",
    "StaticOnce",
    "PeriodicReoptimize",
    "DriftTriggered",
    "drift_score",
    "partition_drift_scores",
]


def drift_score(
    predicted_monthly: Mapping[str, float], observed: Mapping[str, float]
) -> float:
    """Divergence in [0, 1] between predicted and observed monthly accesses.

    ``max(shape, volume)`` where *shape* is the total-variation distance
    between the two distributions normalised over the union of partitions and
    *volume* is the relative difference in total reads.  0 means the epoch
    looked exactly as predicted; 1 means completely different partitions were
    read (or activity appeared from / vanished into silence).
    """
    predicted_total = float(sum(predicted_monthly.values()))
    observed_total = float(sum(observed.values()))
    if predicted_total <= 0.0 and observed_total <= 0.0:
        return 0.0
    if predicted_total <= 0.0 or observed_total <= 0.0:
        return 1.0
    names = set(predicted_monthly) | set(observed)
    shape = 0.5 * sum(
        abs(
            predicted_monthly.get(name, 0.0) / predicted_total
            - observed.get(name, 0.0) / observed_total
        )
        for name in names
    )
    volume = abs(observed_total - predicted_total) / max(
        observed_total, predicted_total
    )
    return max(shape, volume)


def partition_drift_scores(
    predicted_monthly: Mapping[str, float], observed: Mapping[str, float]
) -> dict[str, float]:
    """Per-partition drift in [0, 1]: relative access-count divergence.

    ``|observed - predicted| / max(observed, predicted)`` per partition over
    the union of names (a partition missing from one side scores 1.0 unless
    both sides are zero).  This is exactly the relative-move metric the
    incremental :class:`~repro.core.optassign.DeltaSolver` thresholds on, so
    a policy's scores can feed the delta solver's changed-row set directly.
    """
    scores: dict[str, float] = {}
    for name in set(predicted_monthly) | set(observed):
        predicted = float(predicted_monthly.get(name, 0.0))
        seen = float(observed.get(name, 0.0))
        top = max(abs(predicted), abs(seen))
        scores[name] = abs(seen - predicted) / top if top > 0.0 else 0.0
    return scores


class TieringPolicy(ABC):
    """Decides, once per epoch, whether the engine re-runs the optimizer."""

    name: str = "policy"

    @abstractmethod
    def should_reoptimize(
        self, epoch: int, observed: Mapping[str, float] | None
    ) -> bool:
        """``observed`` is the previous epoch's per-partition read counts
        (``None`` at the very first epoch, when nothing has been seen yet)."""

    def notify_reoptimized(
        self, epoch: int, predicted_monthly: Mapping[str, float]
    ) -> None:
        """Called by the engine after a re-optimization with the monthly
        access rates the optimizer was given, so drift-aware policies can
        compare future observations against them."""

    def drifted_partitions(self, threshold: float) -> "set[str] | None":
        """Names whose accesses drifted past ``threshold`` since the last
        re-optimization, or ``None`` when the policy carries no per-partition
        signal.  An incremental engine (``reopt_mode="delta"``) feeds this
        into the :class:`~repro.core.optassign.DeltaSolver` changed-row set;
        ``None`` means the solver's own feature-drift detector decides alone.
        """
        return None


class StaticOnce(TieringPolicy):
    """Optimize once at the start, then never again (the batch baseline)."""

    name = "static_once"

    def __init__(self) -> None:
        self._done = False

    def should_reoptimize(
        self, epoch: int, observed: Mapping[str, float] | None
    ) -> bool:
        return not self._done

    def notify_reoptimized(
        self, epoch: int, predicted_monthly: Mapping[str, float]
    ) -> None:
        self._done = True


class PeriodicReoptimize(TieringPolicy):
    """Re-optimize every ``period_months`` epochs, unconditionally."""

    name = "periodic"

    def __init__(self, period_months: int):
        if period_months <= 0:
            raise ValueError("period_months must be positive")
        self.period_months = period_months
        self._last_reoptimized: int | None = None

    def should_reoptimize(
        self, epoch: int, observed: Mapping[str, float] | None
    ) -> bool:
        if self._last_reoptimized is None:
            return True
        return epoch - self._last_reoptimized >= self.period_months

    def notify_reoptimized(
        self, epoch: int, predicted_monthly: Mapping[str, float]
    ) -> None:
        self._last_reoptimized = epoch


class DriftTriggered(TieringPolicy):
    """Re-optimize only when observation diverges from prediction.

    Parameters
    ----------
    threshold:
        Drift score above which a re-optimization fires (see
        :func:`drift_score`).  0.3-0.5 is a reasonable range: periodic
        workloads with noisy jitter stay below it, pattern flips (a cold
        dataset turning hot) shoot well above.
    min_gap_months:
        Refractory period: never re-optimize twice within this many epochs,
        so a noisy month cannot thrash migrations back and forth.
    """

    name = "drift_triggered"

    def __init__(self, threshold: float = 0.4, min_gap_months: int = 1):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_gap_months < 1:
            raise ValueError("min_gap_months must be at least 1")
        self.threshold = threshold
        self.min_gap_months = min_gap_months
        self.last_score = 0.0
        self.last_partition_scores: dict[str, float] = {}
        self._predicted: dict[str, float] | None = None
        self._last_reoptimized: int | None = None

    def should_reoptimize(
        self, epoch: int, observed: Mapping[str, float] | None
    ) -> bool:
        if self._predicted is None:
            return True  # bootstrap: nothing has been optimized yet
        if observed is None:
            return False
        self.last_score = drift_score(self._predicted, observed)
        self.last_partition_scores = partition_drift_scores(
            self._predicted, observed
        )
        if (
            self._last_reoptimized is not None
            and epoch - self._last_reoptimized < self.min_gap_months
        ):
            return False
        return self.last_score > self.threshold

    def drifted_partitions(self, threshold: float) -> "set[str] | None":
        """The partitions whose last-epoch reads moved past ``threshold``
        relative to the last optimization's forecast — the changed-row hint
        for an incremental re-solve.  ``None`` until the first scores exist
        (bootstrap epochs re-solve everything anyway)."""
        if not self.last_partition_scores:
            return None
        return {
            name
            for name, score in self.last_partition_scores.items()
            if score > threshold
        }

    def notify_reoptimized(
        self, epoch: int, predicted_monthly: Mapping[str, float]
    ) -> None:
        self._predicted = dict(predicted_monthly)
        self._last_reoptimized = epoch
