"""Event streams: the clock of the online tiering engine.

The batch pipeline consumes a complete historical trace in one shot; the
online engine consumes the same :class:`repro.cloud.AccessEvent` objects
*epoch by epoch* (an epoch is one billing month).  An event stream is simply
an iterable of :class:`EpochBatch` objects with strictly increasing epochs —
the engine never looks ahead, so any policy evaluated on a stream is causally
honest.

Three sources are provided:

* :class:`ReplayStream` — replays a recorded flat trace (e.g. the one a batch
  simulation used), grouping events by month;
* :class:`SeriesStream` — synthesizes events from per-partition monthly read
  series, the output format of :mod:`repro.workloads.access_logs` (including
  the drifting series built with ``generate_drifting_reads``);
* :func:`stream_from_catalog` — wraps a :class:`repro.cloud.DatasetCatalog`'s
  recorded ``monthly_reads`` histories as a stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..cloud import AccessEvent, DatasetCatalog

__all__ = ["EpochBatch", "ReplayStream", "SeriesStream", "stream_from_catalog"]


@dataclass(frozen=True)
class EpochBatch:
    """All access events observed during one epoch (billing month)."""

    epoch: int
    events: tuple[AccessEvent, ...]

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")

    @property
    def total_reads(self) -> float:
        return float(sum(event.reads for event in self.events))

    def reads_by_partition(self) -> dict[str, float]:
        """Aggregated read counts per partition for this epoch."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.partition] = totals.get(event.partition, 0.0) + event.reads
        return totals


class ReplayStream:
    """Replay a recorded flat access trace epoch by epoch.

    Events are grouped by their ``month`` field; epochs with no events still
    yield an (empty) batch so storage keeps accruing and periodic policies
    keep ticking.  ``num_epochs`` extends (or truncates) the horizon; by
    default it runs through the last recorded event's month.
    """

    def __init__(self, events: Iterable[AccessEvent], num_epochs: int | None = None):
        by_epoch: dict[int, list[AccessEvent]] = {}
        last = -1
        for event in events:
            by_epoch.setdefault(event.month, []).append(event)
            last = max(last, event.month)
        if num_epochs is None:
            num_epochs = last + 1
        if num_epochs <= 0:
            raise ValueError("the stream needs at least one epoch")
        self._by_epoch = by_epoch
        self.num_epochs = num_epochs

    def __iter__(self) -> Iterator[EpochBatch]:
        for epoch in range(self.num_epochs):
            yield EpochBatch(
                epoch=epoch, events=tuple(self._by_epoch.get(epoch, ()))
            )

    def __len__(self) -> int:
        return self.num_epochs


class SeriesStream:
    """Synthesize an event stream from per-partition monthly read series.

    ``series`` maps partition names to monthly read counts (index 0 = epoch
    0), the exact shape produced by
    :func:`repro.workloads.generate_monthly_reads` and
    :func:`repro.workloads.generate_drifting_reads`.  Zero-read months emit
    no event for that partition.  The horizon is the longest series unless
    ``num_epochs`` overrides it.
    """

    def __init__(
        self,
        series: Mapping[str, Sequence[float]],
        num_epochs: int | None = None,
    ):
        if not series:
            raise ValueError("at least one partition series is required")
        if num_epochs is None:
            num_epochs = max(len(values) for values in series.values())
        if num_epochs <= 0:
            raise ValueError("the stream needs at least one epoch")
        for name, values in series.items():
            if any(value < 0 for value in values):
                raise ValueError(f"negative read count in series for {name!r}")
        self._series = {name: list(values) for name, values in series.items()}
        self.num_epochs = num_epochs

    def __iter__(self) -> Iterator[EpochBatch]:
        for epoch in range(self.num_epochs):
            events = tuple(
                AccessEvent(month=epoch, partition=name, reads=float(values[epoch]))
                for name, values in self._series.items()
                if epoch < len(values) and values[epoch] > 0
            )
            yield EpochBatch(epoch=epoch, events=events)

    def __len__(self) -> int:
        return self.num_epochs


def stream_from_catalog(
    catalog: DatasetCatalog, num_epochs: int | None = None
) -> SeriesStream:
    """A stream replaying every dataset's recorded ``monthly_reads`` history."""
    return SeriesStream(
        {dataset.name: dataset.monthly_reads for dataset in catalog},
        num_epochs=num_epochs,
    )
