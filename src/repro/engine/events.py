"""Event streams: the clock of the online tiering engine.

The batch pipeline consumes a complete historical trace in one shot; the
online engine consumes the same :class:`repro.cloud.AccessEvent` objects
*epoch by epoch* (an epoch is one billing month).  An event stream is simply
an iterable of :class:`EpochBatch` objects with strictly increasing epochs —
the engine never looks ahead, so any policy evaluated on a stream is causally
honest.

Three epoch-batch sources are provided:

* :class:`ReplayStream` — replays a recorded flat trace (e.g. the one a batch
  simulation used), grouping events by month;
* :class:`SeriesStream` — synthesizes events from per-partition monthly read
  series, the output format of :mod:`repro.workloads.access_logs` (including
  the drifting series built with ``generate_drifting_reads``);
* :func:`stream_from_catalog` — wraps a :class:`repro.cloud.DatasetCatalog`'s
  recorded ``monthly_reads`` histories as a stream.

**Epoch-free triggering** (ROADMAP item 2) generalizes the dense monthly
grid: a continuous stream of :class:`repro.cloud.TimedEvent` (from
:mod:`repro.workloads.streams`) is cut into :class:`StreamWindow` batches by
a pluggable **trigger** —

* :class:`CountTrigger` closes a window after a fixed number of events;
* :class:`TimeTrigger` closes on a virtual wall-clock width (month-aligned
  ``TimeTrigger(1.0)`` reproduces the dense-epoch grid bit-exactly — the
  oracle lock in ``tests/engine/test_windows.py``);
* :class:`DriftTrigger` closes when the observed access mix drifts past a
  score threshold against a baseline forecast;
* :class:`AnyTrigger` composes several (first to fire wins).

:func:`windowed` is the lazy driver (O(window) memory) and
:func:`monthly_batches` adapts a timed stream back onto the dense monthly
grid for oracle comparisons.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Protocol, Sequence

from ..cloud import AccessEvent, DatasetCatalog, TimedEvent
from .policies import drift_score

__all__ = [
    "EpochBatch",
    "ReplayStream",
    "SeriesStream",
    "stream_from_catalog",
    "StreamWindow",
    "TriggerWindow",
    "CountTrigger",
    "TimeTrigger",
    "DriftTrigger",
    "AnyTrigger",
    "windowed",
    "monthly_batches",
]


@dataclass(frozen=True)
class EpochBatch:
    """All access events observed during one epoch (billing month)."""

    epoch: int
    events: tuple[AccessEvent, ...]

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")

    @property
    def total_reads(self) -> float:
        return float(sum(event.reads for event in self.events))

    def reads_by_partition(self) -> dict[str, float]:
        """Aggregated read counts per partition for this epoch."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.partition] = totals.get(event.partition, 0.0) + event.reads
        return totals


class ReplayStream:
    """Replay a recorded flat access trace epoch by epoch.

    Events are grouped by their ``month`` field; epochs with no events still
    yield an (empty) batch so storage keeps accruing and periodic policies
    keep ticking.  ``num_epochs`` extends (or truncates) the horizon; by
    default it runs through the last recorded event's month.  Truncating
    below the last recorded month drops the recorded events past the cutoff
    — that is sometimes intentional (evaluate a shorter horizon) but easy to
    hit by accident, so it raises a :class:`UserWarning` saying exactly how
    many events were cut.
    """

    def __init__(self, events: Iterable[AccessEvent], num_epochs: int | None = None):
        by_epoch: dict[int, list[AccessEvent]] = {}
        last = -1
        for event in events:
            by_epoch.setdefault(event.month, []).append(event)
            last = max(last, event.month)
        if num_epochs is None:
            num_epochs = last + 1
        if num_epochs <= 0:
            raise ValueError("the stream needs at least one epoch")
        if last >= num_epochs:
            dropped = sum(
                len(batch) for month, batch in by_epoch.items() if month >= num_epochs
            )
            warnings.warn(
                f"num_epochs={num_epochs} truncates the recorded trace: "
                f"{dropped} event(s) in months {num_epochs}..{last} will never "
                "be replayed",
                UserWarning,
                stacklevel=2,
            )
        self._by_epoch = by_epoch
        self.num_epochs = num_epochs

    def __iter__(self) -> Iterator[EpochBatch]:
        for epoch in range(self.num_epochs):
            yield EpochBatch(
                epoch=epoch, events=tuple(self._by_epoch.get(epoch, ()))
            )

    def __len__(self) -> int:
        return self.num_epochs


class SeriesStream:
    """Synthesize an event stream from per-partition monthly read series.

    ``series`` maps partition names to monthly read counts (index 0 = epoch
    0), the exact shape produced by
    :func:`repro.workloads.generate_monthly_reads` and
    :func:`repro.workloads.generate_drifting_reads`.  Zero-read months emit
    no event for that partition.  The horizon is the longest series unless
    ``num_epochs`` overrides it.
    """

    def __init__(
        self,
        series: Mapping[str, Sequence[float]],
        num_epochs: int | None = None,
    ):
        if not series:
            raise ValueError("at least one partition series is required")
        if num_epochs is None:
            num_epochs = max(len(values) for values in series.values())
        if num_epochs <= 0:
            raise ValueError("the stream needs at least one epoch")
        for name, values in series.items():
            if any(value < 0 for value in values):
                raise ValueError(f"negative read count in series for {name!r}")
        self._series = {name: list(values) for name, values in series.items()}
        self.num_epochs = num_epochs

    def __iter__(self) -> Iterator[EpochBatch]:
        for epoch in range(self.num_epochs):
            events = tuple(
                AccessEvent(month=epoch, partition=name, reads=float(values[epoch]))
                for name, values in self._series.items()
                if epoch < len(values) and values[epoch] > 0
            )
            yield EpochBatch(epoch=epoch, events=events)

    def __len__(self) -> int:
        return self.num_epochs


def stream_from_catalog(
    catalog: DatasetCatalog, num_epochs: int | None = None
) -> SeriesStream:
    """A stream replaying every dataset's recorded ``monthly_reads`` history."""
    return SeriesStream(
        {dataset.name: dataset.monthly_reads for dataset in catalog},
        num_epochs=num_epochs,
    )


# ---------------------------------------------------------------------------
# Epoch-free trigger windows
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamWindow:
    """A closed trigger window: the timed events in ``[start_month, end_month)``.

    The epoch-free analogue of :class:`EpochBatch`: ``index`` is the window's
    ordinal (windows are consecutive and gap-free), ``cause`` names the
    trigger that closed it (``"count"``, ``"time"``, ``"drift"``,
    ``"horizon"`` or ``"flush"``).  Storage is billed for
    ``duration_months``, reads for the events — the same arithmetic as a
    dense epoch, just over an arbitrary-width slice of virtual time.
    """

    index: int
    start_month: float
    end_month: float
    events: tuple[TimedEvent, ...]
    cause: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("window index must be non-negative")
        if self.end_month < self.start_month:
            raise ValueError("window must not end before it starts")

    @property
    def duration_months(self) -> float:
        return self.end_month - self.start_month

    @property
    def total_reads(self) -> float:
        return float(sum(event.reads for event in self.events))

    def reads_by_partition(self) -> dict[str, float]:
        """Aggregated read counts per partition for this window."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.partition] = totals.get(event.partition, 0.0) + event.reads
        return totals


class TriggerWindow(Protocol):
    """Decides where a continuous event stream is cut into windows.

    The :func:`windowed` driver calls ``open(start)`` when a window opens,
    then for every event first drains time boundaries **strictly before** the
    event (``boundary_before`` — lets a pure wall-clock trigger emit empty
    windows across quiet stretches), appends the event, and asks
    ``close_after`` whether the window ends **at** this event.  ``cause`` is
    read right after a trigger fires and names it in the resulting
    :class:`StreamWindow`.
    """

    cause: str

    def open(self, start_month: float) -> None:
        """A new window opens at ``start_month``; reset per-window state."""
        ...

    def boundary_before(self, t: float) -> float | None:
        """The earliest boundary ``<= t`` the window must close at, if any.

        Called before an event at time ``t`` joins the window (and once more
        at the horizon).  Returning a boundary closes the current window at
        that time — possibly empty — and re-opens from it.
        """
        ...

    def close_after(self, event: TimedEvent) -> float | None:
        """The close time if this just-appended event completes the window."""
        ...


class CountTrigger:
    """Close a window after ``max_events`` events (cause ``"count"``).

    Events sharing the closing event's exact timestamp stay in the same
    window (the driver defers a close that would make a zero-width window),
    so windows always advance the clock.
    """

    cause = "count"

    def __init__(self, max_events: int) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self._count = 0

    def open(self, start_month: float) -> None:
        self._count = 0

    def boundary_before(self, t: float) -> float | None:
        return None

    def close_after(self, event: TimedEvent) -> float | None:
        self._count += 1
        if self._count >= self.max_events:
            return event.t
        return None


class TimeTrigger:
    """Close a window every ``width_months`` of virtual wall clock (``"time"``).

    Boundaries are laid end to end from the stream's start: quiet stretches
    emit empty windows, exactly like the dense monthly grid does.  With
    ``width_months=1.0`` from ``start_month=0.0`` the boundaries are the
    integers, and the windows reproduce dense epochs **bit-exactly** (adding
    1.0 to an integral float is exact, and dividing counts by a duration of
    exactly 1.0 is the identity).
    """

    cause = "time"

    def __init__(self, width_months: float) -> None:
        if width_months <= 0:
            raise ValueError("width_months must be positive")
        self.width_months = width_months
        self._deadline = 0.0

    def open(self, start_month: float) -> None:
        self._deadline = start_month + self.width_months

    def boundary_before(self, t: float) -> float | None:
        if t >= self._deadline:
            return self._deadline
        return None

    def close_after(self, event: TimedEvent) -> float | None:
        return None


class DriftTrigger:
    """Close a window when the in-window access mix drifts from a baseline.

    Accumulates per-partition read counts as events arrive and, every
    ``check_every`` events once the window is at least ``min_width_months``
    wide, scores the observed **rates** (counts / elapsed months) against
    ``baseline`` with :func:`repro.engine.policies.drift_score`; at or above
    ``threshold`` the window closes (cause ``"drift"``) so the policy can
    react *now* instead of at the next grid point.

    The baseline is what the engine last *planned against*:
    :meth:`repro.engine.OnlineTieringEngine.run_stream` wires
    ``baseline_provider`` to return its most recently applied forecast.
    Without a baseline (e.g. before the first reoptimization) the trigger
    never fires — pair it with a :class:`TimeTrigger` or
    :class:`CountTrigger` via :class:`AnyTrigger` for a fallback cadence.
    """

    cause = "drift"

    def __init__(
        self,
        threshold: float,
        *,
        min_width_months: float = 0.25,
        check_every: int = 64,
        baseline_provider: "Callable[[], Mapping[str, float] | None] | None" = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_width_months <= 0:
            raise ValueError("min_width_months must be positive")
        if check_every <= 0:
            raise ValueError("check_every must be positive")
        self.threshold = threshold
        self.min_width_months = min_width_months
        self.check_every = check_every
        self.baseline_provider = baseline_provider
        self.last_score: float | None = None
        self._start = 0.0
        self._counts: dict[str, float] = {}
        self._since_check = 0

    def open(self, start_month: float) -> None:
        self._start = start_month
        self._counts = {}
        self._since_check = 0

    def boundary_before(self, t: float) -> float | None:
        return None

    def close_after(self, event: TimedEvent) -> float | None:
        self._counts[event.partition] = (
            self._counts.get(event.partition, 0.0) + event.reads
        )
        self._since_check += 1
        if self._since_check < self.check_every:
            return None
        self._since_check = 0
        elapsed = event.t - self._start
        if elapsed < self.min_width_months:
            return None
        baseline = self.baseline_provider() if self.baseline_provider else None
        if not baseline:
            return None
        observed = {name: count / elapsed for name, count in self._counts.items()}
        self.last_score = drift_score(baseline, observed)
        if self.last_score >= self.threshold:
            return event.t
        return None


class AnyTrigger:
    """Compose triggers: the first one to fire closes the window.

    Time boundaries take the earliest deadline across members;
    ``close_after`` asks members in construction order and adopts the firing
    member's ``cause``.
    """

    def __init__(self, *triggers: TriggerWindow) -> None:
        if not triggers:
            raise ValueError("at least one trigger is required")
        self.triggers = triggers
        self.cause = triggers[0].cause

    def open(self, start_month: float) -> None:
        for trigger in self.triggers:
            trigger.open(start_month)

    def boundary_before(self, t: float) -> float | None:
        best: float | None = None
        for trigger in self.triggers:
            boundary = trigger.boundary_before(t)
            if boundary is not None and (best is None or boundary < best):
                best = boundary
                self.cause = trigger.cause
        return best

    def close_after(self, event: TimedEvent) -> float | None:
        close: float | None = None
        for trigger in self.triggers:
            fired = trigger.close_after(event)
            if fired is not None and close is None:
                close = fired
                self.cause = trigger.cause
        return close


def windowed(
    events: Iterable[TimedEvent],
    trigger: TriggerWindow,
    *,
    start_month: float = 0.0,
    horizon_months: float | None = None,
) -> Iterator[StreamWindow]:
    """Cut a time-ordered stream of timed events into trigger windows, lazily.

    Yields consecutive, gap-free :class:`StreamWindow`\\ s covering
    ``[start_month, ...)``.  Only the currently open window is held in
    memory, so a million-event stream costs O(window) RAM.  Validates
    time-ordering (raises on a backwards event) and that events do not
    precede ``start_month``.

    With ``horizon_months`` set, events at or past the horizon are ignored,
    remaining time boundaries are drained (empty windows across the quiet
    tail) and a final window closes exactly at the horizon (cause
    ``"horizon"``).  Without it, a trailing partial window is flushed after
    the stream ends (cause ``"flush"``, closing at the last event's time).

    A close that would produce a zero-width window (e.g. a
    :class:`CountTrigger` firing on a timestamp tie at the window's start) is
    deferred until an event advances the clock — windows always advance
    virtual time, which keeps rates (counts / duration) well-defined.
    """
    index = 0
    start = start_month
    pending: list[TimedEvent] = []
    last_t = start_month
    end = None if horizon_months is None else start_month + horizon_months
    trigger.open(start)
    for event in events:
        if event.t < last_t:
            raise ValueError(
                f"events must be time-ordered: {event.t} after {last_t}"
            )
        last_t = event.t
        if end is not None and event.t >= end:
            break
        while True:
            boundary = trigger.boundary_before(event.t)
            if boundary is None:
                break
            yield StreamWindow(
                index=index,
                start_month=start,
                end_month=boundary,
                events=tuple(pending),
                cause=trigger.cause,
            )
            index += 1
            start = boundary
            pending = []
            trigger.open(start)
        pending.append(event)
        close = trigger.close_after(event)
        if close is not None and close > start:
            yield StreamWindow(
                index=index,
                start_month=start,
                end_month=close,
                events=tuple(pending),
                cause=trigger.cause,
            )
            index += 1
            start = close
            pending = []
            trigger.open(start)
    if end is not None:
        while True:
            boundary = trigger.boundary_before(end)
            if boundary is None or boundary >= end:
                break
            yield StreamWindow(
                index=index,
                start_month=start,
                end_month=boundary,
                events=tuple(pending),
                cause=trigger.cause,
            )
            index += 1
            start = boundary
            pending = []
            trigger.open(start)
        if pending or start < end:
            yield StreamWindow(
                index=index,
                start_month=start,
                end_month=end,
                events=tuple(pending),
                cause="horizon",
            )
    elif pending:
        yield StreamWindow(
            index=index,
            start_month=start,
            end_month=last_t,
            events=tuple(pending),
            cause="flush",
        )


def monthly_batches(
    events: Iterable[TimedEvent], num_epochs: int | None = None
) -> Iterator[EpochBatch]:
    """Adapt a timed stream onto the dense monthly grid, lazily.

    Each :class:`repro.cloud.TimedEvent` becomes one
    :class:`repro.cloud.AccessEvent` in ``floor(t)``'s batch, **preserving
    event order and without aggregating** — float summation order is exactly
    what the bit-exact window-vs-epoch oracle tests compare, so this adapter
    must not reassociate it.  Quiet months yield empty batches;
    ``num_epochs`` pads (or cuts) the horizon.
    """
    if num_epochs is not None and num_epochs <= 0:
        raise ValueError("the stream needs at least one epoch")
    current = 0
    pending: list[AccessEvent] = []
    last_t = 0.0
    saw_events = False
    for event in events:
        if event.t < last_t:
            raise ValueError(
                f"events must be time-ordered: {event.t} after {last_t}"
            )
        last_t = event.t
        month = event.month
        if num_epochs is not None and month >= num_epochs:
            break
        saw_events = True
        while month > current:
            yield EpochBatch(epoch=current, events=tuple(pending))
            pending = []
            current += 1
        pending.append(
            AccessEvent(month=month, partition=event.partition, reads=event.reads)
        )
    if num_epochs is None:
        if not saw_events:
            return
        num_epochs = current + 1
    while current < num_epochs:
        yield EpochBatch(epoch=current, events=tuple(pending))
        pending = []
        current += 1
