"""Incremental sliding-window access features — the engine's hot path.

A production tiering service observes millions of access events; recomputing
every partition's windowed features from the full trace each epoch would make
the control loop O(trace length).  Two implementations maintain the same
windowed features:

* :class:`FeatureStore` (the default) keeps **preallocated numpy ring
  buffers**: one ``(partitions, window)`` matrix whose column ``e % window``
  holds epoch ``e``'s reads, plus lifetime/last-access vectors.  Epoch ingest
  is O(new events) (a vectorized scatter-add after name-to-row resolution,
  plus zeroing the ring columns that slide out), and window aggregation at
  re-optimization points is a handful of vectorized reductions instead of
  per-partition Python loops.
* :class:`ScalarFeatureStore` is the original per-partition sparse-deque
  implementation with lazy eviction, kept as the **reference oracle**: the
  equivalence suite (``tests/engine/test_feature_store.py``) drives both on
  the same streams and requires identical answers.

The invariant tested against both is exact equivalence with a brute-force
recompute over the full history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .events import EpochBatch

__all__ = ["PartitionFeatures", "FeatureStore", "ScalarFeatureStore"]


@dataclass(frozen=True)
class PartitionFeatures:
    """Windowed access features of one partition at one point in time.

    ``window_series`` is dense (one entry per epoch in the window, oldest
    first), so it can feed :class:`repro.core.access_predict`-style lag
    features or a forecaster's window mean directly.
    """

    name: str
    window_reads: float
    window_series: tuple[float, ...]
    lifetime_reads: float
    epochs_since_access: float

    @property
    def window_mean(self) -> float:
        if not self.window_series:
            return 0.0
        return self.window_reads / len(self.window_series)


class FeatureStore:
    """Sliding-window access features on preallocated numpy ring buffers.

    Parameters
    ----------
    window_months:
        Width of the sliding window; the window at epoch ``e`` covers epochs
        ``(e - window_months, e]``, i.e. the current epoch and the
        ``window_months - 1`` before it.
    initial_capacity:
        Rows preallocated for distinct partitions; the buffers double when
        exceeded, so ingest stays amortized O(new events).
    """

    def __init__(self, window_months: int = 6, initial_capacity: int = 1024):
        if window_months <= 0:
            raise ValueError("window_months must be positive")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self.window_months = window_months
        self._epoch = -1
        self._index: dict[str, int] = {}
        self._capacity = initial_capacity
        self._window = np.zeros((initial_capacity, window_months), dtype=np.float64)
        self._lifetime = np.zeros(initial_capacity, dtype=np.float64)
        self._last_access = np.full(initial_capacity, -1, dtype=np.int64)

    @property
    def current_epoch(self) -> int:
        """The most recent epoch observed (-1 before any observation)."""
        return self._epoch

    @property
    def window_fill(self) -> float:
        """Fraction of the sliding window backed by elapsed epochs (0..1).

        Below 1.0 the window is still warming up — forecasts lean on priors;
        the engine exports this as the ``engine.window_fill`` gauge.
        """
        return min(self.window_months, self._epoch + 1) / self.window_months

    # -- ingestion -------------------------------------------------------------
    def observe(self, batch: EpochBatch) -> None:
        """Fold one epoch's *complete* batch in.  One batch per epoch.

        Epochs must be strictly increasing: re-observing the current epoch
        would silently double-fold its reads (the forecaster already rejects
        the same mistake), so it raises.  Streaming callers that fold an
        epoch in several partial batches must use :meth:`accumulate`, which
        opts into same-epoch addition explicitly.
        """
        self._check_complete_batch(batch.epoch)
        self._advance(batch.epoch)
        self._add_many(
            batch.epoch,
            [event.partition for event in batch.events],
            [event.reads for event in batch.events],
        )

    def observe_counts(self, epoch: int, reads_by_partition: Mapping[str, float]) -> None:
        """Like :meth:`observe` but from pre-aggregated per-partition counts."""
        self._check_complete_batch(epoch)
        self._advance(epoch)
        self._add_many(
            epoch, list(reads_by_partition), list(reads_by_partition.values())
        )

    def accumulate(self, epoch: int, reads_by_partition: Mapping[str, float]) -> None:
        """Fold a *partial* (sub-epoch) batch; same-epoch calls add up.

        The explicit streaming path: a caller slicing one epoch into many
        micro-batches calls this repeatedly with the same ``epoch`` and the
        reads accumulate — the semantics :meth:`observe` deliberately rejects
        so one-batch-per-epoch callers cannot double-fold by accident.
        Epochs must still be non-decreasing.
        """
        if epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {epoch} after {self._epoch})"
            )
        self._advance(epoch)
        self._add_many(
            epoch, list(reads_by_partition), list(reads_by_partition.values())
        )

    def _check_complete_batch(self, epoch: int) -> None:
        """The observe/observe_counts contract: strictly increasing epochs."""
        if epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {epoch} after {self._epoch})"
            )
        if epoch == self._epoch and self._epoch >= 0:
            raise ValueError(
                f"epoch {epoch} was already observed; observe()/observe_counts() "
                "take one complete batch per epoch — use accumulate() to fold "
                "sub-epoch partial batches"
            )

    def _advance(self, epoch: int) -> None:
        """Slide the ring forward: zero the columns whose epochs expired."""
        if self._epoch < 0 or epoch == self._epoch:
            self._epoch = epoch
            return
        gap = epoch - self._epoch
        window = self.window_months
        if gap >= window:
            self._window[: len(self._index)] = 0.0
        else:
            columns = [(e % window) for e in range(self._epoch + 1, epoch + 1)]
            self._window[: len(self._index), columns] = 0.0
        self._epoch = epoch

    def _add_many(
        self, epoch: int, names: Sequence[str], reads: Sequence[float]
    ) -> None:
        if not names:
            return
        for name, count in zip(names, reads):
            if count < 0:
                raise ValueError(f"negative read count for {name!r}")
        pairs = [(name, count) for name, count in zip(names, reads) if count > 0]
        if not pairs:
            return
        indices = np.fromiter(
            (self._ensure(name) for name, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        counts = np.fromiter(
            (count for _, count in pairs), dtype=np.float64, count=len(pairs)
        )
        column = epoch % self.window_months
        np.add.at(self._window[:, column], indices, counts)
        np.add.at(self._lifetime, indices, counts)
        self._last_access[indices] = epoch

    def _ensure(self, name: str) -> int:
        index = self._index.get(name)
        if index is not None:
            return index
        index = len(self._index)
        if index >= self._capacity:
            self._grow()
        self._index[name] = index
        return index

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        window = np.zeros((new_capacity, self.window_months), dtype=np.float64)
        window[: self._capacity] = self._window
        lifetime = np.zeros(new_capacity, dtype=np.float64)
        lifetime[: self._capacity] = self._lifetime
        last_access = np.full(new_capacity, -1, dtype=np.int64)
        last_access[: self._capacity] = self._last_access
        self._window, self._lifetime, self._last_access = window, lifetime, last_access
        self._capacity = new_capacity

    # -- queries ----------------------------------------------------------------
    def window_reads(self, name: str) -> float:
        """Total reads of ``name`` within the current window."""
        index = self._index.get(name)
        if index is None:
            return 0.0
        return float(self._window[index].sum())

    def lifetime_reads(self, name: str) -> float:
        index = self._index.get(name)
        return float(self._lifetime[index]) if index is not None else 0.0

    def epochs_since_access(self, name: str) -> float:
        """Epochs since the last read (``inf`` if never accessed)."""
        index = self._index.get(name)
        if index is None or self._last_access[index] < 0:
            return float("inf")
        return float(self._epoch - self._last_access[index])

    def _window_columns(self) -> tuple[int, list[int]]:
        """(series length, ring columns oldest-epoch-first) for the current window."""
        length = min(self.window_months, self._epoch + 1)
        if length <= 0:
            return 0, []
        window = self.window_months
        columns = [e % window for e in range(self._epoch - length + 1, self._epoch + 1)]
        return length, columns

    def window_series(self, name: str) -> tuple[float, ...]:
        """Dense per-epoch reads over the window, oldest epoch first.

        Before ``window_months`` epochs have elapsed the series is shorter
        (only the epochs that exist so far), so window means are not diluted
        by non-existent history.
        """
        length, columns = self._window_columns()
        if length == 0:
            return ()
        index = self._index.get(name)
        if index is None:
            return (0.0,) * length
        return tuple(self._window[index, columns].tolist())

    def window_series_map(
        self, names: Iterable[str]
    ) -> dict[str, tuple[float, ...]]:
        """:meth:`window_series` for many partitions in one vectorized gather."""
        names = list(names)
        length, columns = self._window_columns()
        if length == 0:
            return {name: () for name in names}
        matrix = np.zeros((len(names), length), dtype=np.float64)
        positions = []
        rows = []
        for position, name in enumerate(names):
            index = self._index.get(name)
            if index is not None:
                positions.append(position)
                rows.append(index)
        if rows:
            matrix[positions] = self._window[np.ix_(rows, columns)]
        series = matrix.tolist()
        return {name: tuple(series[i]) for i, name in enumerate(names)}

    def snapshot(self, names: Iterable[str]) -> dict[str, PartitionFeatures]:
        """Windowed features for ``names`` (used at re-optimization points)."""
        names = list(names)
        series_map = self.window_series_map(names)
        features: dict[str, PartitionFeatures] = {}
        for name in names:
            series = series_map[name]
            features[name] = PartitionFeatures(
                name=name,
                window_reads=float(sum(series)),
                window_series=series,
                lifetime_reads=self.lifetime_reads(name),
                epochs_since_access=self.epochs_since_access(name),
            )
        return features

    def tracked_partitions(self) -> list[str]:
        """Names of every partition that has ever been accessed."""
        return sorted(self._index)


class _PartitionState:
    """Sparse per-partition window state (internal to the scalar oracle)."""

    __slots__ = ("entries", "window_total", "lifetime_total", "last_access_epoch")

    def __init__(self) -> None:
        self.entries: deque[list[float]] = deque()  # [epoch, reads] pairs
        self.window_total = 0.0
        self.lifetime_total = 0.0
        self.last_access_epoch = -1


class ScalarFeatureStore:
    """The original per-partition sparse implementation (reference oracle).

    Maintains, per partition, a sparse deque of (epoch, reads) entries
    restricted to the sliding window plus running aggregates, with lazy
    eviction: each entry is evicted at most once over its lifetime and cold
    partitions are never touched.  Kept so the vectorized
    :class:`FeatureStore` has an independent implementation to be checked
    against; the two expose the same API and must return identical answers.
    """

    def __init__(self, window_months: int = 6):
        if window_months <= 0:
            raise ValueError("window_months must be positive")
        self.window_months = window_months
        self._states: dict[str, _PartitionState] = {}
        self._epoch = -1

    @property
    def current_epoch(self) -> int:
        """The most recent epoch observed (-1 before any observation)."""
        return self._epoch

    @property
    def window_fill(self) -> float:
        """Fraction of the sliding window backed by elapsed epochs (0..1)."""
        return min(self.window_months, self._epoch + 1) / self.window_months

    # -- ingestion -------------------------------------------------------------
    def observe(self, batch: EpochBatch) -> None:
        """Fold one epoch's *complete* batch in.  One batch per epoch.

        Mirrors :meth:`FeatureStore.observe`: strictly increasing epochs;
        use :meth:`accumulate` for sub-epoch partial batches.
        """
        self._check_complete_batch(batch.epoch)
        self._epoch = batch.epoch
        for event in batch.events:
            self._add(event.partition, batch.epoch, event.reads)

    def observe_counts(self, epoch: int, reads_by_partition: Mapping[str, float]) -> None:
        """Like :meth:`observe` but from pre-aggregated per-partition counts."""
        self._check_complete_batch(epoch)
        self._epoch = epoch
        for name, reads in reads_by_partition.items():
            self._add(name, epoch, reads)

    def accumulate(self, epoch: int, reads_by_partition: Mapping[str, float]) -> None:
        """Fold a *partial* (sub-epoch) batch; same-epoch calls add up.

        Mirrors :meth:`FeatureStore.accumulate` (the explicit streaming
        path); epochs must still be non-decreasing.
        """
        if epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {epoch} after {self._epoch})"
            )
        self._epoch = epoch
        for name, reads in reads_by_partition.items():
            self._add(name, epoch, reads)

    def _check_complete_batch(self, epoch: int) -> None:
        """The observe/observe_counts contract: strictly increasing epochs."""
        if epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {epoch} after {self._epoch})"
            )
        if epoch == self._epoch and self._epoch >= 0:
            raise ValueError(
                f"epoch {epoch} was already observed; observe()/observe_counts() "
                "take one complete batch per epoch — use accumulate() to fold "
                "sub-epoch partial batches"
            )

    def _add(self, name: str, epoch: int, reads: float) -> None:
        if reads < 0:
            raise ValueError(f"negative read count for {name!r}")
        if reads == 0:
            return
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _PartitionState()
        self._evict(state)
        if state.entries and state.entries[-1][0] == epoch:
            state.entries[-1][1] += reads
        else:
            state.entries.append([epoch, reads])
        state.window_total += reads
        state.lifetime_total += reads
        state.last_access_epoch = max(state.last_access_epoch, epoch)

    def _evict(self, state: _PartitionState) -> None:
        """Drop entries that have slid out of the window (lazy, amortized O(1))."""
        boundary = self._epoch - self.window_months
        entries = state.entries
        while entries and entries[0][0] <= boundary:
            _, reads = entries.popleft()
            state.window_total -= reads
        if not entries:
            state.window_total = 0.0  # clamp float residue when empty

    # -- queries ----------------------------------------------------------------
    def window_reads(self, name: str) -> float:
        """Total reads of ``name`` within the current window."""
        state = self._states.get(name)
        if state is None:
            return 0.0
        self._evict(state)
        return state.window_total

    def lifetime_reads(self, name: str) -> float:
        state = self._states.get(name)
        return state.lifetime_total if state is not None else 0.0

    def epochs_since_access(self, name: str) -> float:
        """Epochs since the last read (``inf`` if never accessed)."""
        state = self._states.get(name)
        if state is None or state.last_access_epoch < 0:
            return float("inf")
        return float(self._epoch - state.last_access_epoch)

    def window_series(self, name: str) -> tuple[float, ...]:
        """Dense per-epoch reads over the window, oldest epoch first."""
        length = min(self.window_months, self._epoch + 1)
        if length <= 0:
            return ()
        start = self._epoch - length + 1
        series = [0.0] * length
        state = self._states.get(name)
        if state is not None:
            self._evict(state)
            for epoch, reads in state.entries:
                if epoch >= start:
                    series[epoch - start] = reads
        return tuple(series)

    def window_series_map(
        self, names: Iterable[str]
    ) -> dict[str, tuple[float, ...]]:
        """:meth:`window_series` for many partitions (loop; oracle parity API)."""
        return {name: self.window_series(name) for name in names}

    def snapshot(self, names: Iterable[str]) -> dict[str, PartitionFeatures]:
        """Windowed features for ``names`` (used at re-optimization points)."""
        features: dict[str, PartitionFeatures] = {}
        for name in names:
            features[name] = PartitionFeatures(
                name=name,
                window_reads=self.window_reads(name),
                window_series=self.window_series(name),
                lifetime_reads=self.lifetime_reads(name),
                epochs_since_access=self.epochs_since_access(name),
            )
        return features

    def tracked_partitions(self) -> list[str]:
        """Names of every partition that has ever been accessed."""
        return sorted(self._states)
