"""Incremental sliding-window access features — the engine's hot path.

A production tiering service observes millions of access events; recomputing
every partition's windowed features from the full trace each epoch would make
the control loop O(trace length).  :class:`FeatureStore` instead maintains,
per partition, a *sparse* deque of (epoch, reads) entries restricted to the
sliding window plus a handful of running aggregates, with **lazy eviction**:

* :meth:`observe` does O(1) amortized work per event — entries are appended
  (coalescing within an epoch) and each entry is evicted at most once over
  its lifetime;
* partitions that receive no events in an epoch are not touched at all —
  their stale window totals are corrected on first read, so a million cold
  partitions cost nothing per epoch;
* :meth:`snapshot` (called only at re-optimization points) densifies the
  window per partition in O(partitions x window).

The invariant tested by ``tests/engine/test_feature_store.py`` is exact
equivalence with a brute-force recompute over the full history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from .events import EpochBatch

__all__ = ["PartitionFeatures", "FeatureStore"]


@dataclass(frozen=True)
class PartitionFeatures:
    """Windowed access features of one partition at one point in time.

    ``window_series`` is dense (one entry per epoch in the window, oldest
    first), so it can feed :class:`repro.core.access_predict`-style lag
    features or a forecaster's window mean directly.
    """

    name: str
    window_reads: float
    window_series: tuple[float, ...]
    lifetime_reads: float
    epochs_since_access: float

    @property
    def window_mean(self) -> float:
        if not self.window_series:
            return 0.0
        return self.window_reads / len(self.window_series)


class _PartitionState:
    """Sparse per-partition window state (internal)."""

    __slots__ = ("entries", "window_total", "lifetime_total", "last_access_epoch")

    def __init__(self) -> None:
        self.entries: deque[list[float]] = deque()  # [epoch, reads] pairs
        self.window_total = 0.0
        self.lifetime_total = 0.0
        self.last_access_epoch = -1


class FeatureStore:
    """Maintains sliding-window access features with O(new events) updates.

    Parameters
    ----------
    window_months:
        Width of the sliding window; the window at epoch ``e`` covers epochs
        ``(e - window_months, e]``, i.e. the current epoch and the
        ``window_months - 1`` before it.
    """

    def __init__(self, window_months: int = 6):
        if window_months <= 0:
            raise ValueError("window_months must be positive")
        self.window_months = window_months
        self._states: dict[str, _PartitionState] = {}
        self._epoch = -1

    @property
    def current_epoch(self) -> int:
        """The most recent epoch observed (-1 before any observation)."""
        return self._epoch

    # -- ingestion -------------------------------------------------------------
    def observe(self, batch: EpochBatch) -> None:
        """Fold one epoch's events in.  Epochs must be non-decreasing."""
        if batch.epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {batch.epoch} after {self._epoch})"
            )
        self._epoch = batch.epoch
        for event in batch.events:
            self._add(event.partition, batch.epoch, event.reads)

    def observe_counts(self, epoch: int, reads_by_partition: Mapping[str, float]) -> None:
        """Like :meth:`observe` but from pre-aggregated per-partition counts."""
        if epoch < self._epoch:
            raise ValueError(
                f"epochs must be non-decreasing (got {epoch} after {self._epoch})"
            )
        self._epoch = epoch
        for name, reads in reads_by_partition.items():
            self._add(name, epoch, reads)

    def _add(self, name: str, epoch: int, reads: float) -> None:
        if reads < 0:
            raise ValueError(f"negative read count for {name!r}")
        if reads == 0:
            return
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _PartitionState()
        self._evict(state)
        if state.entries and state.entries[-1][0] == epoch:
            state.entries[-1][1] += reads
        else:
            state.entries.append([epoch, reads])
        state.window_total += reads
        state.lifetime_total += reads
        state.last_access_epoch = max(state.last_access_epoch, epoch)

    def _evict(self, state: _PartitionState) -> None:
        """Drop entries that have slid out of the window (lazy, amortized O(1))."""
        boundary = self._epoch - self.window_months
        entries = state.entries
        while entries and entries[0][0] <= boundary:
            _, reads = entries.popleft()
            state.window_total -= reads
        if not entries:
            state.window_total = 0.0  # clamp float residue when empty

    # -- queries ----------------------------------------------------------------
    def window_reads(self, name: str) -> float:
        """Total reads of ``name`` within the current window."""
        state = self._states.get(name)
        if state is None:
            return 0.0
        self._evict(state)
        return state.window_total

    def lifetime_reads(self, name: str) -> float:
        state = self._states.get(name)
        return state.lifetime_total if state is not None else 0.0

    def epochs_since_access(self, name: str) -> float:
        """Epochs since the last read (``inf`` if never accessed)."""
        state = self._states.get(name)
        if state is None or state.last_access_epoch < 0:
            return float("inf")
        return float(self._epoch - state.last_access_epoch)

    def window_series(self, name: str) -> tuple[float, ...]:
        """Dense per-epoch reads over the window, oldest epoch first.

        Before ``window_months`` epochs have elapsed the series is shorter
        (only the epochs that exist so far), so window means are not diluted
        by non-existent history.
        """
        length = min(self.window_months, self._epoch + 1)
        if length <= 0:
            return ()
        start = self._epoch - length + 1
        series = [0.0] * length
        state = self._states.get(name)
        if state is not None:
            self._evict(state)
            for epoch, reads in state.entries:
                if epoch >= start:
                    series[epoch - start] = reads
        return tuple(series)

    def snapshot(self, names: Iterable[str]) -> dict[str, PartitionFeatures]:
        """Windowed features for ``names`` (used at re-optimization points)."""
        features: dict[str, PartitionFeatures] = {}
        for name in names:
            features[name] = PartitionFeatures(
                name=name,
                window_reads=self.window_reads(name),
                window_series=self.window_series(name),
                lifetime_reads=self.lifetime_reads(name),
                epochs_since_access=self.epochs_since_access(name),
            )
        return features

    def tracked_partitions(self) -> list[str]:
        """Names of every partition that has ever been accessed."""
        return sorted(self._states)
