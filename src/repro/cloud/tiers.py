"""Cloud storage tier definitions and the Azure price sheet used by the paper.

The paper (Tables I and XII) models a cloud object store as an ordered list of
*tiers*.  Tier 0 is the lowest-latency, most expensive tier (Premium) and the
last tier is the archival tier with hour-scale time-to-first-byte.  Every tier
is described by four numbers: a monthly storage price, a per-GB read price, a
per-GB write price and a read latency (time to first byte).  Optionally a tier
carries a reserved capacity and an early-deletion period.

All prices are expressed in **cents**, sizes in **GB**, latencies in
**seconds** and durations in **months**, matching the conventions of the
paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "StorageTier",
    "TierCatalog",
    "azure_table1_tiers",
    "azure_table12_tiers",
    "azure_tier_catalog",
    "NEW_DATA_TIER",
]

#: Sentinel tier index used for newly ingested data that has no current tier.
#: The paper writes ``L(P_i) = -1`` for such partitions.
NEW_DATA_TIER: int = -1


@dataclass(frozen=True)
class StorageTier:
    """A single cloud storage tier.

    Parameters
    ----------
    name:
        Human readable tier name (e.g. ``"hot"``).
    storage_cost:
        Storage price in cents per GB per month (``C^s_l`` in the paper).
    read_cost:
        Read price in cents per GB (``C^r_l``).
    write_cost:
        Write price in cents per GB (``C^w_l``); this is also the cost of
        moving *new* data into the tier, ``Delta_{-1,l}``.
    latency_s:
        Read latency (time to first byte) in seconds (``B_l``).
    capacity_gb:
        Reserved capacity ``S_l`` in GB.  ``math.inf`` means unbounded, which
        is the common pay-per-use case.
    early_deletion_months:
        Minimum residency before data can leave the tier without penalty.
        Azure's archive tier uses 6 months; premium/hot/cool use 0.
    slo_latency_s:
        The provider's *published* read-latency SLO for the tier (the
        guaranteed time to first byte), used by the SLO-constrained OPTASSIGN
        variants.  ``None`` means the provider publishes no SLO; SLO
        constraints then fall back to the expected latency ``latency_s`` (see
        :attr:`effective_slo_s`).
    """

    name: str
    storage_cost: float
    read_cost: float
    write_cost: float
    latency_s: float
    capacity_gb: float = math.inf
    early_deletion_months: float = 0.0
    slo_latency_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        for label, value in (
            ("storage_cost", self.storage_cost),
            ("read_cost", self.read_cost),
            ("write_cost", self.write_cost),
            ("latency_s", self.latency_s),
            ("capacity_gb", self.capacity_gb),
            ("early_deletion_months", self.early_deletion_months),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value!r}")
        if self.slo_latency_s is not None and self.slo_latency_s < 0:
            raise ValueError(
                f"slo_latency_s must be non-negative, got {self.slo_latency_s!r}"
            )

    @property
    def effective_slo_s(self) -> float:
        """The SLO latency bound: the published SLO, or ``latency_s`` if none."""
        return self.latency_s if self.slo_latency_s is None else self.slo_latency_s

    def with_capacity(self, capacity_gb: float) -> "StorageTier":
        """Return a copy of this tier with a different reserved capacity."""
        return replace(self, capacity_gb=capacity_gb)

    def storage_cost_for(self, size_gb: float, months: float) -> float:
        """Cost in cents of storing ``size_gb`` in this tier for ``months``."""
        if size_gb < 0 or months < 0:
            raise ValueError("size and duration must be non-negative")
        return self.storage_cost * size_gb * months

    def read_cost_for(self, size_gb: float, accesses: float = 1.0) -> float:
        """Cost in cents of reading ``size_gb`` from this tier ``accesses`` times."""
        if size_gb < 0 or accesses < 0:
            raise ValueError("size and accesses must be non-negative")
        return self.read_cost * size_gb * accesses

    def write_cost_for(self, size_gb: float) -> float:
        """Cost in cents of writing ``size_gb`` into this tier once."""
        if size_gb < 0:
            raise ValueError("size must be non-negative")
        return self.write_cost * size_gb


class TierCatalog:
    """An ordered collection of :class:`StorageTier` objects.

    Tiers are ordered from the lowest-latency tier (index 0) to the archival
    tier (last index).  The catalog provides lookups by name or index and the
    tier-change cost ``Delta_{u,v}`` used by the OPTASSIGN objective.
    """

    def __init__(self, tiers: Sequence[StorageTier]):
        if not tiers:
            raise ValueError("a tier catalog needs at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        latencies = [t.latency_s for t in tiers]
        if latencies != sorted(latencies):
            raise ValueError(
                "tiers must be ordered by non-decreasing latency "
                f"(got latencies {latencies})"
            )
        self._tiers: tuple[StorageTier, ...] = tuple(tiers)
        self._by_name = {tier.name: index for index, tier in enumerate(self._tiers)}
        self._cost_arrays: dict[str, np.ndarray] | None = None
        self._change_matrix: np.ndarray | None = None
        #: Monotonic counter bumped by every in-place :meth:`reprice`.  Caches
        #: keyed on catalog identity (``id(catalog)``) must also key on this
        #: version, or an in-place re-pricing would go unnoticed (see
        #: ``DeltaSolver._pricing_signature``).
        self.pricing_version: int = 0

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._tiers)

    def __iter__(self) -> Iterator[StorageTier]:
        return iter(self._tiers)

    def __getitem__(self, index: int) -> StorageTier:
        return self._tiers[index]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        names = ", ".join(tier.name for tier in self._tiers)
        return f"TierCatalog([{names}])"

    # -- lookups ------------------------------------------------------------
    @property
    def tiers(self) -> tuple[StorageTier, ...]:
        return self._tiers

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(tier.name for tier in self._tiers)

    def index_of(self, name: str) -> int:
        """Index of the tier called ``name``; raises ``KeyError`` if unknown."""
        return self._by_name[name]

    def by_name(self, name: str) -> StorageTier:
        """The tier called ``name``; raises ``KeyError`` if unknown."""
        return self._tiers[self._by_name[name]]

    @property
    def archive_index(self) -> int:
        """Index of the highest-latency tier."""
        return len(self._tiers) - 1

    # -- provider identity ----------------------------------------------------
    #: Name every tier of a single-provider catalog belongs to.  Provider
    #: affinity constraints validate against :attr:`provider_names`, so a
    #: plain catalog accepts only affinities naming ``"default"`` — the
    #: multi-provider subclass (:class:`repro.cloud.MultiProviderCatalog`)
    #: overrides all three hooks below.
    DEFAULT_PROVIDER: str = "default"

    @property
    def provider_names(self) -> tuple[str, ...]:
        """Names of the cloud providers backing this catalog."""
        return (self.DEFAULT_PROVIDER,)

    def _check_tier_index(self, tier_index: int, role: str) -> None:
        """Explicit bounds check — negative indices must not wrap around."""
        if tier_index < 0 or tier_index >= len(self._tiers):
            raise IndexError(f"{role} tier {tier_index} out of range")

    def provider_of(self, tier_index: int) -> str:
        """Name of the provider hosting the tier at ``tier_index``."""
        self._check_tier_index(tier_index, "requested")
        return self.DEFAULT_PROVIDER

    def egress_cost_per_gb(self, from_tier: int, to_tier: int) -> float:
        """Per-GB egress fee for moving data between the two tiers.

        A single-provider catalog never pays egress; the multi-provider
        catalog charges the *source* provider's egress fee whenever the move
        crosses a provider boundary.  :data:`NEW_DATA_TIER` ingests pay none.
        """
        self._check_tier_index(to_tier, "destination")
        if from_tier != NEW_DATA_TIER:
            self._check_tier_index(from_tier, "source")
        return 0.0

    # -- derived quantities ---------------------------------------------------
    def tier_change_cost(self, from_tier: int, to_tier: int) -> float:
        """Per-GB cost ``Delta_{u,v}`` of moving data from ``from_tier`` to ``to_tier``.

        ``from_tier`` may be :data:`NEW_DATA_TIER` (-1) for newly ingested
        data, in which case only the write cost of the destination is paid.
        Moving data to the tier it already occupies is free.
        """
        if to_tier < 0 or to_tier >= len(self._tiers):
            raise IndexError(f"destination tier {to_tier} out of range")
        if from_tier == NEW_DATA_TIER:
            return self._tiers[to_tier].write_cost
        if from_tier < 0 or from_tier >= len(self._tiers):
            raise IndexError(f"source tier {from_tier} out of range")
        if from_tier == to_tier:
            return 0.0
        source = self._tiers[from_tier]
        destination = self._tiers[to_tier]
        return source.read_cost + destination.write_cost

    def cost_arrays(self) -> dict[str, np.ndarray]:
        """Per-tier price columns as float64 vectors (cached; do not mutate).

        Keys: ``storage_cost``, ``read_cost``, ``write_cost``, ``latency_s``,
        ``capacity_gb``, ``effective_slo_s`` — one entry per tier, in catalog
        order.  This is the columnar counterpart of iterating the catalog,
        used by the vectorized cost paths.
        """
        if self._cost_arrays is None:
            self._cost_arrays = {
                key: np.array(
                    [getattr(tier, key) for tier in self._tiers], dtype=np.float64
                )
                for key in (
                    "storage_cost",
                    "read_cost",
                    "write_cost",
                    "latency_s",
                    "capacity_gb",
                    "effective_slo_s",
                )
            }
        return self._cost_arrays

    def change_cost_matrix(self) -> np.ndarray:
        """``Delta_{u,v}`` for every (source, destination) pair, vectorized.

        Returns a ``(T + 1, T)`` matrix whose row ``u`` (for ``u < T``) is the
        per-GB cost of moving data from tier ``u`` to each destination, and
        whose *last* row is the :data:`NEW_DATA_TIER` case (only the
        destination's write cost).  Index it with
        ``matrix[np.where(current < 0, T, current)]`` to resolve per-partition
        rows.  Entries agree exactly with :meth:`tier_change_cost`.
        """
        if self._change_matrix is None:
            costs = self.cost_arrays()
            matrix = costs["read_cost"][:, None] + costs["write_cost"][None, :]
            np.fill_diagonal(matrix, 0.0)
            self._change_matrix = np.concatenate(
                [matrix, costs["write_cost"][None, :]]
            )
        return self._change_matrix

    def reprice(
        self,
        tier_names: Iterable[str] | None = None,
        *,
        storage_factor: float = 1.0,
        read_factor: float = 1.0,
        write_factor: float = 1.0,
    ) -> tuple[int, ...]:
        """Re-price tiers **in place**, preserving catalog identity.

        Live systems (the chaos subsystem's ``PriceShock`` in particular)
        re-price mid-run while engines, pool sets and stacked solvers all hold
        references to *this* catalog object — so the mutation happens in
        place: tier names, ordering and latencies are untouched (tier indices
        stay valid), the cached cost arrays and change matrix are dropped, and
        :attr:`pricing_version` is bumped so price-keyed caches can detect the
        change.  Returns the affected tier indices.

        ``tier_names`` limits the re-pricing to those tiers (default: all).
        Factors multiply the current prices and must be positive.
        """
        for label, factor in (
            ("storage_factor", storage_factor),
            ("read_factor", read_factor),
            ("write_factor", write_factor),
        ):
            if not factor > 0:
                raise ValueError(f"{label} must be positive, got {factor!r}")
        if tier_names is None:
            affected = set(range(len(self._tiers)))
        else:
            affected = {self.index_of(name) for name in tier_names}  # KeyError
        if not affected:
            raise ValueError("reprice needs at least one tier")
        self._tiers = tuple(
            replace(
                tier,
                storage_cost=tier.storage_cost * storage_factor,
                read_cost=tier.read_cost * read_factor,
                write_cost=tier.write_cost * write_factor,
            )
            if index in affected
            else tier
            for index, tier in enumerate(self._tiers)
        )
        self._cost_arrays = None
        self._change_matrix = None
        self.pricing_version += 1
        return tuple(sorted(affected))

    def with_capacities(self, capacities: Sequence[float]) -> "TierCatalog":
        """Return a new catalog with per-tier reserved capacities (in GB)."""
        if len(capacities) != len(self._tiers):
            raise ValueError(
                f"expected {len(self._tiers)} capacities, got {len(capacities)}"
            )
        return TierCatalog(
            [tier.with_capacity(cap) for tier, cap in zip(self._tiers, capacities)]
        )

    def subset(self, names: Iterable[str]) -> "TierCatalog":
        """Return a catalog restricted to ``names`` (keeping original order)."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise KeyError(f"unknown tier names: {sorted(unknown)}")
        return TierCatalog([tier for tier in self._tiers if tier.name in wanted])


# ---------------------------------------------------------------------------
# Azure presets
# ---------------------------------------------------------------------------

def azure_table1_tiers() -> list[StorageTier]:
    """Azure ADLS Gen2 tiers with the prices of the paper's Table I.

    Table I quotes storage prices in cents/GB/month, read prices in cents per
    10k operations of 650 MB each (converted here to cents/GB), and the time
    to first byte per tier.
    """

    def per_gb(cents_per_10k_ops: float, mb_per_op: float = 650.0) -> float:
        # 10k operations move 10_000 * mb_per_op MB; price per GB follows.
        gb_moved = 10_000.0 * mb_per_op / 1024.0
        return cents_per_10k_ops / gb_moved

    return [
        StorageTier(
            name="premium",
            storage_cost=15.0,
            read_cost=per_gb(0.182),
            write_cost=per_gb(0.182),
            latency_s=0.003,
        ),
        StorageTier(
            name="hot",
            storage_cost=2.08,
            read_cost=per_gb(0.52),
            write_cost=per_gb(0.52),
            latency_s=0.010,
        ),
        StorageTier(
            name="cool",
            storage_cost=1.52,
            read_cost=per_gb(1.3),
            write_cost=per_gb(1.3),
            latency_s=0.010,
        ),
        StorageTier(
            name="archive",
            storage_cost=0.099,
            read_cost=per_gb(650.0),
            write_cost=per_gb(1.3),
            latency_s=3600.0,
            early_deletion_months=6.0,
        ),
    ]


def azure_table12_tiers() -> list[StorageTier]:
    """Azure tiers with the exact per-GB parameters of the paper's Table XII.

    Table XII is the parameter set the authors feed to the ILP in the unified
    pipeline experiments (Tables IX-XI), so benchmarks reproducing those
    tables use this preset.
    """
    return [
        StorageTier(
            name="premium",
            storage_cost=15.0,
            read_cost=0.004659,
            write_cost=0.004659,
            latency_s=0.0053,
        ),
        StorageTier(
            name="hot",
            storage_cost=2.08,
            read_cost=0.01331,
            write_cost=0.01331,
            latency_s=0.0614,
        ),
        StorageTier(
            name="cool",
            storage_cost=1.52,
            read_cost=0.0333,
            write_cost=0.01331,
            latency_s=0.0614,
        ),
        StorageTier(
            name="archive",
            storage_cost=0.099,
            read_cost=16.64,
            write_cost=0.0333,
            latency_s=3600.0,
            early_deletion_months=6.0,
        ),
    ]


def azure_tier_catalog(
    include_archive: bool = True,
    include_premium: bool = True,
    capacities: Sequence[float] | None = None,
    table: str = "XII",
) -> TierCatalog:
    """Build a :class:`TierCatalog` with Azure parameters.

    Parameters
    ----------
    include_archive, include_premium:
        Drop the archive and/or premium tiers.  The enterprise tiering
        experiments (Tables II-IV) use hot/cool(/archive) only, while the
        pipeline experiments (Tables IX-XI) use premium/hot/cool.
    capacities:
        Optional reserved capacities (GB), one per retained tier.
    table:
        ``"I"`` or ``"XII"`` — which of the paper's parameter tables to use.
    """
    if table == "I":
        tiers = azure_table1_tiers()
    elif table == "XII":
        tiers = azure_table12_tiers()
    else:
        raise ValueError(f"table must be 'I' or 'XII', got {table!r}")
    if not include_premium:
        tiers = [tier for tier in tiers if tier.name != "premium"]
    if not include_archive:
        tiers = [tier for tier in tiers if tier.name != "archive"]
    catalog = TierCatalog(tiers)
    if capacities is not None:
        catalog = catalog.with_capacities(capacities)
    return catalog
