"""Multi-cloud provider catalogs: named tier menus, egress fees, latency SLOs.

The paper prices placements against a single fixed tier catalog (Azure ADLS
Gen2).  Production tiering services choose among *several* cloud providers,
each with its own tier menu, its own per-GB egress charge for data leaving the
provider, and per-tier read-latency SLOs.  This module models that axis:

* :class:`CloudProvider` — one provider's named tier menu plus its egress fee;
* :func:`aws_s3` / :func:`azure_blob` / :func:`gcp_gcs` — preset catalogs with
  realistic (published-price-shaped) parameters in the repo's cents/GB/month
  conventions;
* :class:`ProviderBuilder` — a small fluent builder for custom providers;
* :class:`MultiProviderCatalog` — a combined :class:`~repro.cloud.TierCatalog`
  over every provider's tiers, whose tier-change costs add the source
  provider's egress fee on cross-provider moves.

Because :class:`MultiProviderCatalog` *is a* ``TierCatalog`` (tiers globally
ordered by latency, names prefixed ``provider/tier``), the whole existing
stack — :class:`~repro.cloud.CostModel`, the OPTASSIGN solvers, the
simulator, the online engine — prices cross-provider placement without
modification: the objective's ``Delta_{u,v}`` term and the simulator's write
charges flow through :meth:`tier_change_cost` / :meth:`change_cost_matrix`,
which this subclass overrides to include egress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from .tiers import NEW_DATA_TIER, StorageTier, TierCatalog, azure_table12_tiers

__all__ = [
    "CloudProvider",
    "ProviderBuilder",
    "MultiProviderCatalog",
    "aws_s3",
    "azure_blob",
    "gcp_gcs",
    "multi_cloud_catalog",
    "PROVIDER_SEPARATOR",
]

#: Separator between provider and tier names in a combined catalog
#: (e.g. ``"aws_s3/standard"``).
PROVIDER_SEPARATOR: str = "/"


@dataclass(frozen=True)
class CloudProvider:
    """One cloud provider: a named tier menu plus its egress pricing.

    Parameters
    ----------
    name:
        Provider identifier (e.g. ``"aws_s3"``); must not contain the
        :data:`PROVIDER_SEPARATOR`.
    tiers:
        The provider's tier menu, ordered by non-decreasing latency (the same
        invariant :class:`~repro.cloud.TierCatalog` enforces).
    egress_cost_per_gb:
        Cents per GB charged when data *leaves* this provider for another
        (cloud providers bill egress at the source; ingress is free).
    """

    name: str
    tiers: tuple[StorageTier, ...]
    egress_cost_per_gb: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("provider name must be non-empty")
        if PROVIDER_SEPARATOR in self.name:
            raise ValueError(
                f"provider name may not contain {PROVIDER_SEPARATOR!r}: {self.name!r}"
            )
        if self.egress_cost_per_gb < 0:
            raise ValueError("egress_cost_per_gb must be non-negative")
        if not isinstance(self.tiers, tuple):
            object.__setattr__(self, "tiers", tuple(self.tiers))
        # Reuse TierCatalog's validation (non-empty, unique names, latency order).
        TierCatalog(self.tiers)

    def catalog(self) -> TierCatalog:
        """This provider's tiers alone, as a plain single-provider catalog."""
        return TierCatalog(self.tiers)


class ProviderBuilder:
    """Fluent construction of a custom :class:`CloudProvider`.

    >>> provider = (
    ...     ProviderBuilder("onprem", egress_cost_per_gb=0.0)
    ...     .tier("ssd", storage_cost=5.0, read_cost=0.001, write_cost=0.001,
    ...           latency_s=0.001, slo_latency_s=0.005)
    ...     .tier("hdd", storage_cost=1.0, read_cost=0.01, write_cost=0.01,
    ...           latency_s=0.02)
    ...     .build()
    ... )
    """

    def __init__(self, name: str, egress_cost_per_gb: float = 0.0):
        self._name = name
        self._egress = egress_cost_per_gb
        self._tiers: list[StorageTier] = []

    def tier(
        self,
        name: str,
        storage_cost: float,
        read_cost: float,
        write_cost: float,
        latency_s: float,
        capacity_gb: float = math.inf,
        early_deletion_months: float = 0.0,
        slo_latency_s: float | None = None,
    ) -> "ProviderBuilder":
        """Append one tier to the menu (tiers must be added fastest first)."""
        self._tiers.append(
            StorageTier(
                name=name,
                storage_cost=storage_cost,
                read_cost=read_cost,
                write_cost=write_cost,
                latency_s=latency_s,
                capacity_gb=capacity_gb,
                early_deletion_months=early_deletion_months,
                slo_latency_s=slo_latency_s,
            )
        )
        return self

    def build(self) -> CloudProvider:
        if not self._tiers:
            raise ValueError(f"provider {self._name!r} needs at least one tier")
        return CloudProvider(
            name=self._name,
            tiers=tuple(self._tiers),
            egress_cost_per_gb=self._egress,
        )


class MultiProviderCatalog(TierCatalog):
    """All providers' tiers in one catalog, with egress-aware change costs.

    The combined tier list is globally sorted by latency (stable, so ties keep
    provider-declaration order) and every tier is renamed
    ``provider/tier``.  Tier-change costs ``Delta_{u,v}`` equal the base
    ``read + write`` plus the *source* provider's per-GB egress fee whenever
    the move crosses a provider boundary; new-data ingests and intra-provider
    moves pay no egress.  :meth:`change_cost_matrix` mirrors the scalar
    arithmetic operation for operation so the vectorized solvers stay
    bit-identical to the scalar oracles.
    """

    def __init__(self, providers: Sequence[CloudProvider]):
        providers = tuple(providers)
        if not providers:
            raise ValueError("a multi-provider catalog needs at least one provider")
        names = [provider.name for provider in providers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate provider names: {names}")
        entries: list[tuple[StorageTier, int]] = []
        for provider_idx, provider in enumerate(providers):
            for tier in provider.tiers:
                entries.append(
                    (
                        replace(
                            tier,
                            name=f"{provider.name}{PROVIDER_SEPARATOR}{tier.name}",
                        ),
                        provider_idx,
                    )
                )
        entries.sort(key=lambda entry: entry[0].latency_s)
        super().__init__([tier for tier, _ in entries])
        self._providers = providers
        self._provider_index = np.array(
            [provider_idx for _, provider_idx in entries], dtype=np.int64
        )
        self._egress_by_provider = np.array(
            [provider.egress_cost_per_gb for provider in providers], dtype=np.float64
        )

    # -- provider identity -----------------------------------------------------
    @property
    def providers(self) -> tuple[CloudProvider, ...]:
        return self._providers

    @property
    def provider_names(self) -> tuple[str, ...]:
        return tuple(provider.name for provider in self._providers)

    @property
    def provider_index(self) -> np.ndarray:
        """Provider position (into :attr:`providers`) per global tier (do not mutate)."""
        return self._provider_index

    def provider_of(self, tier_index: int) -> str:
        """Name of the provider hosting the tier at ``tier_index``."""
        self._check_tier_index(tier_index, "requested")
        return self._providers[self._provider_index[tier_index]].name

    def tier_indices_of(self, provider_name: str) -> list[int]:
        """Global tier indices belonging to ``provider_name`` (catalog order)."""
        position = self.provider_names.index(provider_name)  # raises ValueError
        return [int(i) for i in np.flatnonzero(self._provider_index == position)]

    def single_provider(self, provider_name: str) -> TierCatalog:
        """One provider's own catalog (unprefixed tier names) — the baseline view."""
        for provider in self._providers:
            if provider.name == provider_name:
                return provider.catalog()
        raise KeyError(
            f"unknown provider {provider_name!r}; have {list(self.provider_names)}"
        )

    def global_index(self, provider_name: str, tier_name: str) -> int:
        """Combined-catalog index of ``provider/tier``."""
        return self.index_of(f"{provider_name}{PROVIDER_SEPARATOR}{tier_name}")

    # -- egress-aware change costs ---------------------------------------------
    def egress_cost_per_gb(self, from_tier: int, to_tier: int) -> float:
        """Source provider's egress fee if the move crosses providers, else 0."""
        self._check_tier_index(to_tier, "destination")
        if from_tier == NEW_DATA_TIER:
            return 0.0
        self._check_tier_index(from_tier, "source")
        source = self._provider_index[from_tier]
        if source == self._provider_index[to_tier]:
            return 0.0
        return float(self._egress_by_provider[source])

    def tier_change_cost(self, from_tier: int, to_tier: int) -> float:
        """``Delta_{u,v}`` plus the source provider's egress fee on cross-provider moves."""
        if to_tier < 0 or to_tier >= len(self._tiers):
            raise IndexError(f"destination tier {to_tier} out of range")
        if from_tier == NEW_DATA_TIER:
            return self._tiers[to_tier].write_cost
        if from_tier < 0 or from_tier >= len(self._tiers):
            raise IndexError(f"source tier {from_tier} out of range")
        if from_tier == to_tier:
            return 0.0
        cost = self._tiers[from_tier].read_cost + self._tiers[to_tier].write_cost
        if self._provider_index[from_tier] != self._provider_index[to_tier]:
            cost = cost + float(
                self._egress_by_provider[self._provider_index[from_tier]]
            )
        return cost

    def change_cost_matrix(self) -> np.ndarray:
        """Vectorized ``Delta_{u,v}`` including egress; agrees exactly with
        :meth:`tier_change_cost` cell for cell (same operation order)."""
        if self._change_matrix is None:
            costs = self.cost_arrays()
            matrix = costs["read_cost"][:, None] + costs["write_cost"][None, :]
            np.fill_diagonal(matrix, 0.0)
            cross = self._provider_index[:, None] != self._provider_index[None, :]
            egress = self._egress_by_provider[self._provider_index]
            matrix = np.where(cross, matrix + egress[:, None], matrix)
            self._change_matrix = np.concatenate(
                [matrix, costs["write_cost"][None, :]]
            )
        return self._change_matrix

    # -- reconstruction --------------------------------------------------------
    def with_capacities(self, capacities: Sequence[float]) -> "MultiProviderCatalog":
        """A copy with per-(global) tier reserved capacities, provider info kept."""
        if len(capacities) != len(self._tiers):
            raise ValueError(
                f"expected {len(self._tiers)} capacities, got {len(capacities)}"
            )
        # Map global capacities back onto each provider's local tier menu.
        by_global_name = {
            tier.name: capacity for tier, capacity in zip(self._tiers, capacities)
        }
        rebuilt = []
        for provider in self._providers:
            rebuilt.append(
                replace(
                    provider,
                    tiers=tuple(
                        tier.with_capacity(
                            by_global_name[
                                f"{provider.name}{PROVIDER_SEPARATOR}{tier.name}"
                            ]
                        )
                        for tier in provider.tiers
                    ),
                )
            )
        return MultiProviderCatalog(rebuilt)

    def subset(self, names: Iterable[str]) -> TierCatalog:
        raise NotImplementedError(
            "subsetting a multi-provider catalog by tier name would silently "
            "drop egress semantics; use single_provider(name) for a "
            "one-provider baseline view"
        )


# ---------------------------------------------------------------------------
# Preset provider catalogs
# ---------------------------------------------------------------------------
#
# Prices follow the repo's conventions (cents per GB per month for storage,
# cents per GB for reads/writes/egress, seconds for latency).  The numbers are
# shaped after the providers' published price sheets at paper-writing time —
# close enough that the *relative* structure (which provider wins which
# workload class) is realistic, which is what the multi-cloud scenario tests.


def aws_s3() -> CloudProvider:
    """Amazon S3: cheap deep archive with hour-scale restores, 9 c/GB egress."""
    return CloudProvider(
        name="aws_s3",
        egress_cost_per_gb=9.0,
        tiers=(
            StorageTier(
                name="standard",
                storage_cost=2.3,
                read_cost=0.043,
                write_cost=0.05,
                latency_s=0.012,
                slo_latency_s=0.05,
            ),
            StorageTier(
                name="standard_ia",
                storage_cost=1.25,
                read_cost=1.0,
                write_cost=0.1,
                latency_s=0.015,
                slo_latency_s=0.08,
                early_deletion_months=1.0,
            ),
            StorageTier(
                name="glacier_instant",
                storage_cost=0.4,
                read_cost=3.0,
                write_cost=0.2,
                latency_s=0.05,
                slo_latency_s=0.2,
                early_deletion_months=3.0,
            ),
            StorageTier(
                name="deep_archive",
                storage_cost=0.099,
                read_cost=2.0,
                write_cost=0.2,
                latency_s=43200.0,
                slo_latency_s=43200.0,
                early_deletion_months=6.0,
            ),
        ),
    )


def azure_blob() -> CloudProvider:
    """Azure Blob/ADLS: the paper's Table XII menu, annotated with SLOs, 8.7 c/GB egress."""
    slos = {"premium": 0.01, "hot": 0.1, "cool": 0.1, "archive": 54000.0}
    return CloudProvider(
        name="azure_blob",
        egress_cost_per_gb=8.7,
        tiers=tuple(
            replace(tier, slo_latency_s=slos[tier.name])
            for tier in azure_table12_tiers()
        ),
    )


def gcp_gcs() -> CloudProvider:
    """Google Cloud Storage: millisecond first byte on *every* tier (including
    archive — GCS's differentiator), pricier retrievals, 12 c/GB egress."""
    return CloudProvider(
        name="gcp_gcs",
        egress_cost_per_gb=12.0,
        tiers=(
            StorageTier(
                name="standard",
                storage_cost=2.0,
                read_cost=0.04,
                write_cost=0.05,
                latency_s=0.02,
                slo_latency_s=0.1,
            ),
            StorageTier(
                name="nearline",
                storage_cost=1.0,
                read_cost=1.0,
                write_cost=0.1,
                latency_s=0.02,
                slo_latency_s=0.1,
                early_deletion_months=1.0,
            ),
            StorageTier(
                name="coldline",
                storage_cost=0.4,
                read_cost=2.0,
                write_cost=0.1,
                latency_s=0.02,
                slo_latency_s=0.1,
                early_deletion_months=3.0,
            ),
            StorageTier(
                name="archive",
                storage_cost=0.12,
                read_cost=5.0,
                write_cost=0.1,
                latency_s=0.05,
                slo_latency_s=0.2,
                early_deletion_months=12.0,
            ),
        ),
    )


def multi_cloud_catalog(
    providers: Sequence[CloudProvider] | None = None,
) -> MultiProviderCatalog:
    """The default three-provider catalog (AWS S3 + Azure Blob + GCP GCS)."""
    if providers is None:
        providers = (aws_s3(), azure_blob(), gcp_gcs())
    return MultiProviderCatalog(providers)
