"""Cloud storage substrate: tiers, price sheets, data objects, billing and simulation.

This subpackage replaces the paper's live Azure ADLS Gen2 environment with an
explicit, deterministic cost model parameterised by the published price sheet
(Tables I and XII of the paper).  Every other module — the OPTASSIGN
optimizer, the SCOPe pipeline, the benchmarks — computes costs exclusively
through :class:`repro.cloud.CostModel` and :class:`repro.cloud.CloudStorageSimulator`
so predicted and billed costs can never disagree on the arithmetic.
"""

from .arrays import PartitionArrays
from .billing import (
    BatchCostTensors,
    CompressionProfile,
    CostBreakdown,
    CostModel,
    CostWeights,
    NO_COMPRESSION_PROFILE,
)
from .objects import (
    DataPartition,
    Dataset,
    DatasetCatalog,
    FileBlock,
    PartitionCatalog,
)
from .pools import CapacityPool, PoolSet
from .providers import (
    CloudProvider,
    MultiProviderCatalog,
    PROVIDER_SEPARATOR,
    ProviderBuilder,
    aws_s3,
    azure_blob,
    gcp_gcs,
    multi_cloud_catalog,
)
from .simulator import (
    AccessEvent,
    CloudStorageSimulator,
    CompiledPlacement,
    PlacementDecision,
    SimulationResult,
    TimedEvent,
    percent_cost_benefit,
)
from .tiers import (
    NEW_DATA_TIER,
    StorageTier,
    TierCatalog,
    azure_table1_tiers,
    azure_table12_tiers,
    azure_tier_catalog,
)

__all__ = [
    "PartitionArrays",
    "BatchCostTensors",
    "CompressionProfile",
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "NO_COMPRESSION_PROFILE",
    "DataPartition",
    "Dataset",
    "DatasetCatalog",
    "FileBlock",
    "PartitionCatalog",
    "CapacityPool",
    "PoolSet",
    "CloudProvider",
    "MultiProviderCatalog",
    "PROVIDER_SEPARATOR",
    "ProviderBuilder",
    "aws_s3",
    "azure_blob",
    "gcp_gcs",
    "multi_cloud_catalog",
    "AccessEvent",
    "CloudStorageSimulator",
    "CompiledPlacement",
    "PlacementDecision",
    "SimulationResult",
    "TimedEvent",
    "percent_cost_benefit",
    "NEW_DATA_TIER",
    "StorageTier",
    "TierCatalog",
    "azure_table1_tiers",
    "azure_table12_tiers",
    "azure_tier_catalog",
]
