"""Shared capacity pools: tier GB budgets that span *tenants*.

A :class:`~repro.cloud.StorageTier`'s ``capacity_gb`` bounds what one
OPTASSIGN instance may place in that tier.  A fleet operator's reality is one
level up: thousands of tenant accounts draw from the *same* reserved capacity
— "all premium SSD in region X", "the aws_s3 contract's committed GBs" — so
the budget must be enforced across tenants, not per account.

:class:`CapacityPool` names one such budget over a group of tiers of a shared
catalog; :class:`PoolSet` resolves a collection of pools against the catalog,
validates that no tier is claimed twice, and provides the vectorized
tier-to-pool aggregation the fleet arbitration
(:func:`repro.core.optassign.repair_pools`) and the pool-utilization
accounting run on.  Tiers not covered by any pool stay pay-per-use
(unbounded), which is the common case for the cheap cold tiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Sequence

import numpy as np

from .tiers import TierCatalog

__all__ = ["CapacityPool", "PoolSet"]

#: Index marking a tier that belongs to no pool (unconstrained).
UNPOOLED: int = -1


@dataclass(frozen=True)
class CapacityPool:
    """One shared GB budget over a group of tiers of the fleet's catalog.

    Parameters
    ----------
    name:
        Pool identifier (e.g. ``"premium_region_x"`` or ``"aws_s3"``).
    tier_names:
        Names of the catalog tiers the budget covers.  A multi-provider
        catalog uses its combined ``provider/tier`` names here.
    capacity_gb:
        The shared budget in GB, summed over every tenant's stored bytes in
        the pool's tiers.
    """

    name: str
    tier_names: tuple[str, ...]
    capacity_gb: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if not self.tier_names:
            raise ValueError(f"pool {self.name!r} must cover at least one tier")
        if not isinstance(self.tier_names, tuple):
            object.__setattr__(self, "tier_names", tuple(self.tier_names))
        if len(set(self.tier_names)) != len(self.tier_names):
            raise ValueError(f"pool {self.name!r} lists duplicate tiers")
        if not self.capacity_gb > 0:
            raise ValueError(f"pool {self.name!r} needs a positive capacity_gb")
        if math.isinf(self.capacity_gb):
            raise ValueError(
                f"pool {self.name!r} has infinite capacity; leave the tiers "
                "unpooled instead"
            )


class PoolSet:
    """A collection of :class:`CapacityPool` resolved against one catalog.

    Validates that every pool's tiers exist in the catalog and that no tier is
    claimed by two pools, and precomputes the ``tier index -> pool index`` map
    used to aggregate per-tier GB usage into per-pool usage in one
    ``np.bincount``-style pass.
    """

    def __init__(self, catalog: TierCatalog, pools: Sequence[CapacityPool]):
        if not pools:
            raise ValueError("a pool set needs at least one pool")
        names = [pool.name for pool in pools]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool names: {names}")
        self.catalog = catalog
        self.pools: tuple[CapacityPool, ...] = tuple(pools)
        pool_of_tier = np.full(len(catalog), UNPOOLED, dtype=np.int64)
        for pool_index, pool in enumerate(self.pools):
            for tier_name in pool.tier_names:
                tier_index = catalog.index_of(tier_name)  # KeyError if unknown
                if pool_of_tier[tier_index] != UNPOOLED:
                    other = self.pools[int(pool_of_tier[tier_index])].name
                    raise ValueError(
                        f"tier {tier_name!r} is claimed by both pool "
                        f"{other!r} and pool {pool.name!r}"
                    )
                pool_of_tier[tier_index] = pool_index
        self.pool_of_tier: np.ndarray = pool_of_tier
        self.capacities: np.ndarray = np.array(
            [pool.capacity_gb for pool in self.pools], dtype=np.float64
        )

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.pools)

    def __iter__(self) -> Iterator[CapacityPool]:
        return iter(self.pools)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{pool.name}={pool.capacity_gb:g}GB" for pool in self.pools
        )
        return f"PoolSet([{parts}])"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(pool.name for pool in self.pools)

    def tiers_of(self, pool_index: int) -> np.ndarray:
        """Catalog tier indices belonging to the pool at ``pool_index``."""
        return np.flatnonzero(self.pool_of_tier == pool_index)

    def set_capacity(self, pool_name: str, capacity_gb: float) -> float:
        """Resize one pool's budget **in place**, preserving set identity.

        Mid-run capacity shocks (the chaos subsystem's ``PoolShock``) must not
        swap the :class:`PoolSet` object out from under the fleet scheduler —
        the scheduler validates ``pools.catalog is tiers`` once at
        construction and reads ``self.pools.capacities`` every epoch — so the
        budget changes in place.  Tier membership is immutable; only the GB
        budget moves.  Returns the previous capacity.
        """
        names = [pool.name for pool in self.pools]
        try:
            pool_index = names.index(pool_name)
        except ValueError:
            raise KeyError(f"unknown pool {pool_name!r} (pools: {names})") from None
        previous = self.pools[pool_index].capacity_gb
        # replace() re-runs CapacityPool's validation (positive, finite).
        resized = replace(self.pools[pool_index], capacity_gb=capacity_gb)
        self.pools = (
            self.pools[:pool_index] + (resized,) + self.pools[pool_index + 1 :]
        )
        self.capacities[pool_index] = capacity_gb
        return previous

    # -- aggregation ----------------------------------------------------------
    def usage(self, tier_usage_gb: np.ndarray) -> np.ndarray:
        """Per-pool GB usage, aggregated from a per-tier usage vector.

        ``tier_usage_gb`` is a ``(T,)`` vector of stored GB per catalog tier
        (e.g. summed across every tenant's
        :meth:`~repro.cloud.CompiledPlacement.tier_usage_gb`).
        """
        tier_usage_gb = np.asarray(tier_usage_gb, dtype=np.float64)
        if tier_usage_gb.shape != (len(self.catalog),):
            raise ValueError(
                f"tier_usage_gb must have shape ({len(self.catalog)},), "
                f"got {tier_usage_gb.shape}"
            )
        pooled = self.pool_of_tier >= 0
        return np.bincount(
            self.pool_of_tier[pooled],
            weights=tier_usage_gb[pooled],
            minlength=len(self.pools),
        )

    def usage_by_name(self, tier_usage_gb: np.ndarray) -> dict[str, float]:
        """Like :meth:`usage` but keyed by pool name (for reports)."""
        used = self.usage(tier_usage_gb)
        return {pool.name: float(used[i]) for i, pool in enumerate(self.pools)}

    # -- constructors ---------------------------------------------------------
    @classmethod
    def per_tier(
        cls, catalog: TierCatalog, capacities: Mapping[str, float]
    ) -> "PoolSet":
        """One single-tier pool per entry of ``{tier name: capacity GB}``."""
        return cls(
            catalog,
            [
                CapacityPool(name=tier_name, tier_names=(tier_name,), capacity_gb=cap)
                for tier_name, cap in capacities.items()
            ],
        )

    @classmethod
    def per_provider(
        cls, catalog: TierCatalog, capacities: Mapping[str, float]
    ) -> "PoolSet":
        """One pool per provider, covering all that provider's tiers.

        ``capacities`` maps provider names (as reported by
        :meth:`~repro.cloud.TierCatalog.provider_of`) to shared GB budgets;
        providers not listed stay unpooled.
        """
        tiers_by_provider: dict[str, list[str]] = {}
        for tier_index, tier in enumerate(catalog):
            provider = catalog.provider_of(tier_index)
            tiers_by_provider.setdefault(provider, []).append(tier.name)
        unknown = set(capacities) - set(tiers_by_provider)
        if unknown:
            raise ValueError(
                f"capacities name providers not in the catalog: "
                f"{sorted(unknown)} (catalog has "
                f"{sorted(tiers_by_provider)})"
            )
        return cls(
            catalog,
            [
                CapacityPool(
                    name=provider,
                    tier_names=tuple(tiers_by_provider[provider]),
                    capacity_gb=cap,
                )
                for provider, cap in capacities.items()
            ],
        )

    def scaled(self, factor: float) -> "PoolSet":
        """A pool set with every capacity multiplied by ``factor``.

        The naive per-tenant baseline in the fleet example slices each pool
        into ``1/N`` static shares; this helper builds those shares.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return PoolSet(
            self.catalog,
            [
                CapacityPool(
                    name=pool.name,
                    tier_names=pool.tier_names,
                    capacity_gb=pool.capacity_gb * factor,
                )
                for pool in self.pools
            ],
        )
