"""A month-by-month cloud storage simulator.

The optimizer works from *predicted* accesses; the simulator replays the
*actual* access trace against a chosen placement and produces the bill the
cloud provider would have issued.  This is how the paper's "% cost benefit"
numbers are computed: run the platform-default placement and the optimized
placement against the same trace and compare the bills.

The simulator also tracks early-deletion penalties (data moved out of a tier
before its minimum residency) and per-access latencies, so SLA violations can
be counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .arrays import PartitionArrays
from .billing import CompressionProfile, CostBreakdown, CostModel, NO_COMPRESSION_PROFILE
from .objects import DataPartition
from .tiers import NEW_DATA_TIER, TierCatalog

__all__ = [
    "AccessEvent",
    "PlacementDecision",
    "SimulationResult",
    "CloudStorageSimulator",
    "CompiledPlacement",
    "percent_cost_benefit",
]


@dataclass(frozen=True)
class AccessEvent:
    """A single (aggregated) access to a partition during one month.

    ``reads`` is the number of read operations issued in ``month`` against
    ``partition``; each read touches ``partition.read_gb_per_access`` GB of
    uncompressed data.
    """

    month: int
    partition: str
    reads: float = 1.0

    def __post_init__(self) -> None:
        if self.month < 0:
            raise ValueError("month must be non-negative")
        if self.reads < 0:
            raise ValueError("reads must be non-negative")


@dataclass(frozen=True)
class TimedEvent:
    """:class:`AccessEvent`'s continuous-time sibling: one access at time ``t``.

    ``t`` is a virtual wall clock measured in (fractional) months, the same
    unit every price in the catalog is quoted against; ``t = 2.5`` is the
    middle of billing month 2.  Continuous workload generators
    (:mod:`repro.workloads.streams`) yield these on the fly, and the
    epoch-free trigger windows (:mod:`repro.engine.events`) group them into
    billable batches without ever materializing a schedule.  The billing fast
    path (:meth:`CompiledPlacement.step`) accepts either event type — it only
    reads ``partition`` and ``reads``.

    ``tenant`` optionally attributes the event to a fleet tenant; merged
    multi-tenant streams use it to split shared trigger windows back into
    per-tenant batches.
    """

    t: float
    partition: str
    reads: float = 1.0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("event time must be non-negative")
        if self.reads < 0:
            raise ValueError("reads must be non-negative")

    @property
    def month(self) -> int:
        """The billing month this event falls into (``floor(t)``)."""
        return int(self.t)


@dataclass(frozen=True)
class PlacementDecision:
    """Where a partition is stored and with what compression scheme."""

    tier_index: int
    profile: CompressionProfile = NO_COMPRESSION_PROFILE

    def __post_init__(self) -> None:
        if self.tier_index < 0:
            raise ValueError("tier_index must be a valid tier (>= 0)")


@dataclass
class SimulationResult:
    """Outcome of replaying an access trace against a placement."""

    bill: CostBreakdown
    early_deletion_penalty: float
    latency_violations: int
    access_count: int
    mean_latency_s: float
    per_partition: dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        """Total billed cents including early-deletion penalties."""
        return self.bill.total + self.early_deletion_penalty


class CloudStorageSimulator:
    """Replays access traces against placements and produces bills.

    Parameters
    ----------
    tiers:
        The tier catalog with prices and latencies.
    compute_cost_per_s:
        Compute price (cents/second) charged for decompression work.
    """

    def __init__(self, tiers: TierCatalog, compute_cost_per_s: float = 0.001):
        self.tiers = tiers
        self.compute_cost_per_s = compute_cost_per_s

    def simulate(
        self,
        partitions: Sequence[DataPartition],
        placement: Mapping[str, PlacementDecision],
        access_trace: Iterable[AccessEvent],
        duration_months: float,
        months_in_current_tier: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        """Replay ``access_trace`` against ``placement`` for ``duration_months``.

        Parameters
        ----------
        partitions:
            The partitions being stored; every one must have an entry in
            ``placement``.
        placement:
            Tier and compression decision per partition name.
        access_trace:
            Read events; events referring to months beyond the horizon or to
            unknown partitions raise ``KeyError``/``ValueError``.
        duration_months:
            Length of the billing horizon being simulated.
        months_in_current_tier:
            How long each partition has already resided in its current tier;
            used to charge early-deletion penalties when the placement moves
            it out before the minimum residency elapsed.
        """
        if duration_months <= 0:
            raise ValueError("duration_months must be positive")
        by_name = {partition.name: partition for partition in partitions}
        missing = [name for name in by_name if name not in placement]
        if missing:
            raise KeyError(f"placement missing partitions: {missing}")

        months_in_current_tier = months_in_current_tier or {}
        bill = CostBreakdown()
        per_partition: dict[str, CostBreakdown] = {}
        early_penalty = 0.0

        # Storage + migration charges, independent of the trace.
        for partition in partitions:
            decision = placement[partition.name]
            tier = self.tiers[decision.tier_index]
            stored_gb = decision.profile.compressed_gb(partition.size_gb)
            breakdown = CostBreakdown(
                storage=tier.storage_cost_for(stored_gb, duration_months),
                write=self.tiers.tier_change_cost(
                    partition.current_tier, decision.tier_index
                )
                * stored_gb,
            )
            per_partition[partition.name] = breakdown
            early_penalty += self._early_deletion_penalty(
                partition,
                decision,
                months_in_current_tier.get(partition.name, float("inf")),
            )

        # Access charges and latency bookkeeping, from the trace.
        latency_violations, total_latency, access_count = self._charge_accesses(
            by_name, placement, access_trace, per_partition, horizon=duration_months
        )

        for breakdown in per_partition.values():
            bill += breakdown

        mean_latency = total_latency / access_count if access_count else 0.0
        return SimulationResult(
            bill=bill,
            early_deletion_penalty=early_penalty,
            latency_violations=latency_violations,
            access_count=access_count,
            mean_latency_s=mean_latency,
            per_partition=per_partition,
        )

    def step_month(
        self,
        partitions: Sequence[DataPartition],
        placement: Mapping[str, PlacementDecision],
        access_events: Iterable[AccessEvent],
        storage_months: float = 1.0,
    ) -> SimulationResult:
        """Simulate a single billing epoch incrementally.

        Charges one epoch (``storage_months``) of storage for every partition
        plus the read/decompression cost and latency of ``access_events``.
        Unlike :meth:`simulate` it charges **no** tier-change writes and no
        early-deletion penalties: in the online setting those are one-off
        charges owned by whoever moves the data (see
        :class:`repro.engine.MigrationExecutor`), while this method accounts
        the recurring part of the bill.  The storage, read and decompression
        components summed over a horizon equal :meth:`simulate`'s exactly;
        movement charges are the mover's accounting (which may price a move in
        more detail than :meth:`simulate`'s single write term — e.g. reading
        the source at its *current* stored size rather than the destination's).

        ``access_events`` may carry any ``month`` value; they are interpreted
        as "the accesses that happened during this epoch".
        """
        if storage_months < 0:
            raise ValueError("storage_months must be non-negative")
        by_name = {partition.name: partition for partition in partitions}
        missing = [name for name in by_name if name not in placement]
        if missing:
            raise KeyError(f"placement missing partitions: {missing}")

        per_partition: dict[str, CostBreakdown] = {}
        for partition in partitions:
            decision = placement[partition.name]
            tier = self.tiers[decision.tier_index]
            stored_gb = decision.profile.compressed_gb(partition.size_gb)
            per_partition[partition.name] = CostBreakdown(
                storage=tier.storage_cost_for(stored_gb, storage_months)
            )

        latency_violations, total_latency, access_count = self._charge_accesses(
            by_name, placement, access_events, per_partition, horizon=None
        )

        bill = CostBreakdown()
        for breakdown in per_partition.values():
            bill += breakdown
        mean_latency = total_latency / access_count if access_count else 0.0
        return SimulationResult(
            bill=bill,
            early_deletion_penalty=0.0,
            latency_violations=latency_violations,
            access_count=access_count,
            mean_latency_s=mean_latency,
            per_partition=per_partition,
        )

    def _charge_accesses(
        self,
        by_name: Mapping[str, DataPartition],
        placement: Mapping[str, PlacementDecision],
        access_events: Iterable[AccessEvent],
        per_partition: dict[str, CostBreakdown],
        horizon: float | None,
    ) -> tuple[int, float, int]:
        """Accumulate read/decompression charges into ``per_partition``.

        Returns ``(latency_violations, total_latency, access_count)``.  When
        ``horizon`` is given, events beyond it raise (the batch contract);
        ``None`` skips the check (the incremental contract).
        """
        latency_violations = 0
        total_latency = 0.0
        access_count = 0
        for event in access_events:
            if horizon is not None and event.month >= horizon:
                raise ValueError(
                    f"access event at month {event.month} is outside the "
                    f"{horizon}-month horizon"
                )
            partition = by_name.get(event.partition)
            if partition is None:
                raise KeyError(
                    f"access event references unknown partition {event.partition!r}"
                )
            decision = placement[event.partition]
            tier = self.tiers[decision.tier_index]
            read_gb = decision.profile.compressed_gb(partition.read_gb_per_access)
            decompression_s = decision.profile.decompression_seconds(
                partition.read_gb_per_access
            )
            access = CostBreakdown(
                read=tier.read_cost_for(read_gb, event.reads),
                decompression=self.compute_cost_per_s * decompression_s * event.reads,
            )
            per_partition[event.partition] += access

            latency = decompression_s + tier.latency_s
            total_latency += latency * event.reads
            access_count += int(round(event.reads))
            if latency > partition.latency_threshold_s:
                latency_violations += int(round(event.reads))
        return latency_violations, total_latency, access_count

    def _early_deletion_penalty(
        self,
        partition: DataPartition,
        decision: PlacementDecision,
        months_resident: float,
    ) -> float:
        """Penalty for moving data out of a tier before its minimum residency.

        Azure bills the remaining storage months of the early-deletion window
        when data leaves the tier early; we reproduce that rule.
        """
        if partition.current_tier == NEW_DATA_TIER:
            return 0.0
        if decision.tier_index == partition.current_tier:
            return 0.0
        source = self.tiers[partition.current_tier]
        if months_resident >= source.early_deletion_months:
            return 0.0
        remaining = source.early_deletion_months - months_resident
        return source.storage_cost_for(partition.size_gb, remaining)

    def compile_placement(
        self,
        partitions: Sequence[DataPartition] | PartitionArrays,
        placement: Mapping[str, PlacementDecision],
    ) -> "CompiledPlacement":
        """Precompile ``(partitions, placement)`` for vectorized epoch stepping.

        The returned :class:`CompiledPlacement` answers :meth:`step_month`-style
        queries in O(events this epoch) numpy work instead of per-partition
        Python loops.  Compile once, step many times; recompile whenever the
        placement changes (the online engine does this at re-optimization
        points only).
        """
        arrays = (
            partitions
            if isinstance(partitions, PartitionArrays)
            else PartitionArrays.from_partitions(partitions)
        )
        return CompiledPlacement(self, arrays, placement)

    # -- convenience ----------------------------------------------------------
    def default_placement(
        self, partitions: Sequence[DataPartition], tier_index: int = 0
    ) -> dict[str, PlacementDecision]:
        """The platform baseline: everything uncompressed in a single tier."""
        return {
            partition.name: PlacementDecision(tier_index=tier_index)
            for partition in partitions
        }

    def cost_model(
        self, duration_months: float, weights=None
    ) -> CostModel:
        """A :class:`CostModel` consistent with this simulator's parameters."""
        return CostModel(
            tiers=self.tiers,
            compute_cost_per_s=self.compute_cost_per_s,
            duration_months=duration_months,
            weights=weights,
        )


class CompiledPlacement:
    """Vectorized per-epoch billing for one fixed (partitions, placement) pair.

    Precomputes, per partition, the monthly storage charge, the per-read cost
    components and the access latency as numpy vectors, so stepping an epoch
    is a handful of gathers over the events that actually happened — the same
    quantities :meth:`CloudStorageSimulator.step_month` computes with Python
    loops, to within floating-point summation order (the per-element
    arithmetic mirrors the scalar operation order exactly; only the totals
    are accumulated in a different order).

    Build via :meth:`CloudStorageSimulator.compile_placement`.
    """

    def __init__(
        self,
        simulator: CloudStorageSimulator,
        arrays: PartitionArrays,
        placement: Mapping[str, PlacementDecision],
    ):
        missing = [name for name in arrays.names if name not in placement]
        if missing:
            raise KeyError(f"placement missing partitions: {missing}")
        self.simulator = simulator
        self.arrays = arrays
        tiers = simulator.tiers
        costs = tiers.cost_arrays()
        count = len(arrays)

        tier_index = np.empty(count, dtype=np.int64)
        ratio = np.empty(count, dtype=np.float64)
        decompression_per_gb = np.empty(count, dtype=np.float64)
        for i, name in enumerate(arrays.names):
            decision = placement[name]
            tier_index[i] = decision.tier_index
            ratio[i] = decision.profile.ratio
            decompression_per_gb[i] = decision.profile.decompression_s_per_gb
        self.tier_index = tier_index

        stored_gb = arrays.size_gb / ratio
        self.stored_gb = stored_gb
        self.storage_per_month = costs["storage_cost"][tier_index] * stored_gb
        read_gb_uncompressed = arrays.read_gb_per_access
        read_gb = read_gb_uncompressed / ratio
        self.read_cost_per_read = costs["read_cost"][tier_index] * read_gb
        decompression_s = decompression_per_gb * read_gb_uncompressed
        self.decompression_cost_per_read = (
            simulator.compute_cost_per_s * decompression_s
        )
        self.latency_s = decompression_s + costs["latency_s"][tier_index]
        self.violates_sla = self.latency_s > arrays.latency_threshold_s

    def tier_usage_gb(self) -> np.ndarray:
        """Stored GB per catalog tier under this placement.

        The per-account capacity ledger: summed across tenants it is what the
        fleet layer checks against shared :class:`~repro.cloud.CapacityPool`
        budgets and reports as pool utilization.
        """
        return np.bincount(
            self.tier_index,
            weights=self.stored_gb,
            minlength=len(self.simulator.tiers),
        )

    def step(
        self,
        access_events: Iterable[AccessEvent],
        storage_months: float = 1.0,
        include_per_partition: bool = False,
    ) -> SimulationResult:
        """One epoch of storage plus this epoch's accesses, vectorized.

        Semantics match :meth:`CloudStorageSimulator.step_month`: one epoch of
        storage for every partition, read + decompression charges and latency
        bookkeeping for the events, no tier-change writes and no
        early-deletion penalties.  ``include_per_partition`` populates
        :attr:`SimulationResult.per_partition` (off by default — building one
        Python object per partition per epoch is exactly what this fast path
        exists to avoid).
        """
        if storage_months < 0:
            raise ValueError("storage_months must be non-negative")
        indices: list[int] = []
        reads: list[float] = []
        rounded: list[int] = []
        for event in access_events:
            try:
                index = self.arrays.index_of(event.partition)
            except KeyError:
                raise KeyError(
                    f"access event references unknown partition {event.partition!r}"
                ) from None
            indices.append(index)
            reads.append(event.reads)
            rounded.append(int(round(event.reads)))

        storage_total = float(np.sum(self.storage_per_month) * storage_months)
        if indices:
            index_array = np.asarray(indices, dtype=np.int64)
            reads_array = np.asarray(reads, dtype=np.float64)
            rounds_array = np.asarray(rounded, dtype=np.int64)
            read_total = float(self.read_cost_per_read[index_array] @ reads_array)
            decompression_total = float(
                self.decompression_cost_per_read[index_array] @ reads_array
            )
            total_latency = float(self.latency_s[index_array] @ reads_array)
            access_count = int(rounds_array.sum())
            latency_violations = int(
                rounds_array[self.violates_sla[index_array]].sum()
            )
        else:
            read_total = decompression_total = total_latency = 0.0
            access_count = latency_violations = 0

        per_partition: dict[str, CostBreakdown] = {}
        if include_per_partition:
            reads_dense = np.zeros(len(self.arrays), dtype=np.float64)
            if indices:
                np.add.at(reads_dense, index_array, reads_array)
            storage_each = (self.storage_per_month * storage_months).tolist()
            read_each = (self.read_cost_per_read * reads_dense).tolist()
            decompression_each = (
                self.decompression_cost_per_read * reads_dense
            ).tolist()
            for i, name in enumerate(self.arrays.names):
                per_partition[name] = CostBreakdown(
                    storage=storage_each[i],
                    read=read_each[i],
                    decompression=decompression_each[i],
                )

        mean_latency = total_latency / access_count if access_count else 0.0
        return SimulationResult(
            bill=CostBreakdown(
                storage=storage_total,
                read=read_total,
                decompression=decompression_total,
            ),
            early_deletion_penalty=0.0,
            latency_violations=latency_violations,
            access_count=access_count,
            mean_latency_s=mean_latency,
            per_partition=per_partition,
        )


def percent_cost_benefit(baseline_cost: float, optimized_cost: float) -> float:
    """The paper's ``% cost benefit`` metric: relative saving vs a baseline."""
    if baseline_cost < 0 or optimized_cost < 0:
        raise ValueError("costs must be non-negative")
    if baseline_cost == 0:
        return 0.0
    return 100.0 * (baseline_cost - optimized_cost) / baseline_cost
