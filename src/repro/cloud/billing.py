"""Cost accounting shared by the optimizer objective and the storage simulator.

The OPTASSIGN objective (Eq. 1 in the paper) charges, for a partition ``P_n``
assigned to tier ``l`` with compression scheme ``k``:

* a write + storage term
  ``(alpha * C^s_l + gamma * Delta_{L(P_n), l}) * Sp(P_n) / R^k_n``
* an access term
  ``beta * rho(P_n) * (C^c * D^k_n + C^r_l * Sp(P_n) / R^k_n)``

and requires ``D^k_n + B_l <= T(P_n)`` for latency feasibility.  This module
implements exactly that arithmetic once, in :class:`CostModel`, so that the
ILP, the greedy optimizer, the baselines and the simulator all agree on what a
placement costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .arrays import PartitionArrays
from .objects import DataPartition
from .tiers import NEW_DATA_TIER, TierCatalog

__all__ = [
    "CompressionProfile",
    "NO_COMPRESSION_PROFILE",
    "CostBreakdown",
    "CostWeights",
    "CostModel",
    "BatchCostTensors",
]


@dataclass(frozen=True)
class CompressionProfile:
    """Predicted (or measured) compression behaviour of one scheme on one partition.

    ``ratio`` is the compression ratio ``R^k_n`` (uncompressed size divided by
    compressed size, so >= 1 for useful codecs and exactly 1 for "none").
    ``decompression_s_per_gb`` is ``D^k_n`` expressed per GB of *uncompressed*
    data; the total decompression time for an access is this value times the
    uncompressed GB read.
    """

    scheme: str
    ratio: float
    decompression_s_per_gb: float

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise ValueError("compression ratio must be positive")
        if self.decompression_s_per_gb < 0:
            raise ValueError("decompression time must be non-negative")

    def compressed_gb(self, uncompressed_gb: float) -> float:
        """Size on disk of ``uncompressed_gb`` after applying this scheme."""
        return uncompressed_gb / self.ratio

    def decompression_seconds(self, uncompressed_gb: float) -> float:
        """Wall-clock seconds to decompress back to ``uncompressed_gb``."""
        return self.decompression_s_per_gb * uncompressed_gb


#: The identity scheme: no compression, no decompression overhead.
NO_COMPRESSION_PROFILE = CompressionProfile(
    scheme="none", ratio=1.0, decompression_s_per_gb=0.0
)


@dataclass
class CostBreakdown:
    """Cents spent per cost category over a billing horizon."""

    storage: float = 0.0
    read: float = 0.0
    write: float = 0.0
    decompression: float = 0.0

    @property
    def total(self) -> float:
        return self.storage + self.read + self.write + self.decompression

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            storage=self.storage + other.storage,
            read=self.read + other.read,
            write=self.write + other.write,
            decompression=self.decompression + other.decompression,
        )

    def __iadd__(self, other: "CostBreakdown") -> "CostBreakdown":
        self.storage += other.storage
        self.read += other.read
        self.write += other.write
        self.decompression += other.decompression
        return self

    def scaled(self, factor: float) -> "CostBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return CostBreakdown(
            storage=self.storage * factor,
            read=self.read * factor,
            write=self.write * factor,
            decompression=self.decompression * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "storage": self.storage,
            "read": self.read,
            "write": self.write,
            "decompression": self.decompression,
            "total": self.total,
        }

    def approx_equals(self, other: "CostBreakdown", tolerance: float = 1e-6) -> bool:
        """True if every component matches ``other`` within ``tolerance``."""
        return (
            math.isclose(self.storage, other.storage, abs_tol=tolerance)
            and math.isclose(self.read, other.read, abs_tol=tolerance)
            and math.isclose(self.write, other.write, abs_tol=tolerance)
            and math.isclose(self.decompression, other.decompression, abs_tol=tolerance)
        )


@dataclass(frozen=True)
class CostWeights:
    """The alpha/beta/gamma hyper-parameters of the OPTASSIGN objective.

    * ``alpha`` scales the storage cost term,
    * ``beta`` scales the access (read + decompression) term,
    * ``gamma`` scales the tier-change / write term.

    The paper's baselines are recovered by zeroing some weights — e.g. a
    purely latency-focused optimisation uses ``alpha = 0``.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("cost weights must be non-negative")


@dataclass
class BatchCostTensors:
    """The full (partitions x tiers x schemes) cost/latency evaluation.

    Produced by :meth:`CostModel.batch_tensors`; every entry agrees with the
    scalar :meth:`CostModel.placement_breakdown` /
    :meth:`CostModel.placement_objective` arithmetic bit for bit — the numpy
    expressions mirror the scalar operation order exactly, so the vectorized
    solvers can be validated against the scalar oracle with equality, not
    tolerance.

    Shapes: ``storage``, ``read``, ``write``, ``objective`` and ``latency_s``
    are ``(N, T, K)``; ``stored_gb``, ``decompression`` and ``decompression_s``
    are ``(N, K)`` because decompression does not depend on the tier;
    ``feasible`` is the ``(N, T, K)`` conjunction of the latency SLA, codec
    pinning and per-partition scheme availability.
    """

    schemes: tuple[str, ...]
    stored_gb: np.ndarray
    storage: np.ndarray
    read: np.ndarray
    write: np.ndarray
    decompression_s: np.ndarray
    decompression: np.ndarray
    objective: np.ndarray
    latency_s: np.ndarray
    feasible: np.ndarray

    @property
    def num_partitions(self) -> int:
        return self.objective.shape[0]

    @property
    def num_tiers(self) -> int:
        return self.objective.shape[1]

    @property
    def num_schemes(self) -> int:
        return self.objective.shape[2]

    def masked_objective(self) -> np.ndarray:
        """Objective with infeasible cells set to ``+inf`` (argmin-ready)."""
        return np.where(self.feasible, self.objective, np.inf)

    def breakdown_at(self, n: int, t: int, k: int) -> CostBreakdown:
        """The unweighted billed breakdown of one (partition, tier, scheme) cell."""
        return CostBreakdown(
            storage=float(self.storage[n, t, k]),
            read=float(self.read[n, t, k]),
            write=float(self.write[n, t, k]),
            decompression=float(self.decompression[n, k]),
        )


class CostModel:
    """Evaluates placement costs and latency for a given tier catalog.

    Parameters
    ----------
    tiers:
        The tier catalog (prices, latencies, capacities).
    compute_cost_per_s:
        ``C^c`` — compute price in cents per second used for decompression.
    duration_months:
        Billing horizon length over which storage accrues and the predicted
        accesses happen.
    weights:
        Objective weights (alpha, beta, gamma).  The *unweighted* breakdown is
        also available for reporting real (billed) cost.
    """

    def __init__(
        self,
        tiers: TierCatalog,
        compute_cost_per_s: float = 0.001,
        duration_months: float = 1.0,
        weights: CostWeights | None = None,
    ):
        if compute_cost_per_s < 0:
            raise ValueError("compute cost must be non-negative")
        if duration_months <= 0:
            raise ValueError("duration must be positive")
        self.tiers = tiers
        self.compute_cost_per_s = compute_cost_per_s
        self.duration_months = duration_months
        self.weights = weights or CostWeights()

    # -- single-placement accounting ----------------------------------------
    def placement_breakdown(
        self,
        partition: DataPartition,
        tier_index: int,
        profile: CompressionProfile = NO_COMPRESSION_PROFILE,
    ) -> CostBreakdown:
        """Unweighted billed cost of holding ``partition`` in ``tier_index``.

        Includes storage over the horizon, the tier-change (or initial write)
        cost, and the expected read + decompression cost of the predicted
        accesses.  This is what the cloud provider would actually bill.
        """
        tier = self.tiers[tier_index]
        stored_gb = profile.compressed_gb(partition.size_gb)
        storage = tier.storage_cost_for(stored_gb, self.duration_months)

        change_per_gb = self.tiers.tier_change_cost(partition.current_tier, tier_index)
        write = change_per_gb * stored_gb

        accesses = partition.effective_accesses
        read_gb = profile.compressed_gb(partition.read_gb_per_access)
        read = tier.read_cost_for(read_gb, accesses)

        decompression_seconds = profile.decompression_seconds(
            partition.read_gb_per_access
        )
        decompression = self.compute_cost_per_s * decompression_seconds * accesses

        return CostBreakdown(
            storage=storage, read=read, write=write, decompression=decompression
        )

    def placement_objective(
        self,
        partition: DataPartition,
        tier_index: int,
        profile: CompressionProfile = NO_COMPRESSION_PROFILE,
    ) -> float:
        """The weighted OPTASSIGN objective value of a single placement (Eq. 1)."""
        breakdown = self.placement_breakdown(partition, tier_index, profile)
        weights = self.weights
        return (
            weights.alpha * breakdown.storage
            + weights.gamma * breakdown.write
            + weights.beta * (breakdown.read + breakdown.decompression)
        )

    # -- latency -------------------------------------------------------------
    def access_latency_s(
        self,
        partition: DataPartition,
        tier_index: int,
        profile: CompressionProfile = NO_COMPRESSION_PROFILE,
    ) -> float:
        """Expected access latency: decompression time plus time to first byte."""
        tier = self.tiers[tier_index]
        return (
            profile.decompression_seconds(partition.read_gb_per_access)
            + tier.latency_s
        )

    def is_latency_feasible(
        self,
        partition: DataPartition,
        tier_index: int,
        profile: CompressionProfile = NO_COMPRESSION_PROFILE,
    ) -> bool:
        """True if the placement satisfies the partition's latency SLA."""
        return (
            self.access_latency_s(partition, tier_index, profile)
            <= partition.latency_threshold_s
        )

    # -- batch (vectorized) accounting ---------------------------------------
    def batch_tensors(
        self,
        arrays: PartitionArrays,
        schemes: Sequence[str],
        ratio: np.ndarray,
        decompression_s_per_gb: np.ndarray,
        scheme_available: np.ndarray | None = None,
        latency_slo_s: np.ndarray | None = None,
        tier_allowed: np.ndarray | None = None,
    ) -> BatchCostTensors:
        """Evaluate every (partition, tier, scheme) placement in one pass.

        Parameters
        ----------
        arrays:
            The partitions, columnar.
        schemes:
            Names of the ``K`` compression schemes spanning the last tensor
            axis, in the order of the ``ratio`` columns.
        ratio, decompression_s_per_gb:
            ``(N, K)`` compression ratios ``R^k_n`` and decompression speeds
            ``D^k_n`` (seconds per uncompressed GB).  Cells for unavailable
            (partition, scheme) pairs may hold any positive placeholder — they
            are masked out of ``feasible``.
        scheme_available:
            Optional ``(N, K)`` bool mask of which schemes have a profile for
            which partition; ``None`` means all are available.
        latency_slo_s:
            Optional ``(N,)`` per-partition cap on the tier's *published*
            read-latency SLO (``StorageTier.effective_slo_s``); ``inf``
            entries are unconstrained.  Unlike the latency SLA (which bounds
            expected access latency including decompression), this constrains
            the tier's guarantee alone, so it masks whole tiers.
        tier_allowed:
            Optional ``(N, T)`` bool mask of which tiers each partition may
            occupy — how provider-affinity constraints reach the tensor path.

        The arithmetic mirrors :meth:`placement_breakdown` /
        :meth:`placement_objective` operation for operation, so each tensor
        cell is bit-identical to the scalar result for the same placement.
        """
        ratio = np.asarray(ratio, dtype=np.float64)
        decompression_s_per_gb = np.asarray(decompression_s_per_gb, dtype=np.float64)
        if ratio.shape != (len(arrays), len(schemes)):
            raise ValueError(
                f"ratio must have shape ({len(arrays)}, {len(schemes)}), "
                f"got {ratio.shape}"
            )
        if decompression_s_per_gb.shape != ratio.shape:
            raise ValueError("decompression_s_per_gb must match ratio's shape")

        costs = self.tiers.cost_arrays()
        stored_gb = arrays.size_gb[:, None] / ratio
        storage = (
            costs["storage_cost"][None, :, None]
            * stored_gb[:, None, :]
            * self.duration_months
        )

        delta = self.tiers.change_cost_matrix()
        source_rows = np.where(
            arrays.current_tier < 0, len(self.tiers), arrays.current_tier
        )
        change_per_gb = delta[source_rows]
        write = change_per_gb[:, :, None] * stored_gb[:, None, :]

        read_gb_uncompressed = arrays.read_gb_per_access
        read_gb = read_gb_uncompressed[:, None] / ratio
        effective_accesses = arrays.effective_accesses
        read = (
            costs["read_cost"][None, :, None]
            * read_gb[:, None, :]
            * effective_accesses[:, None, None]
        )

        decompression_s = decompression_s_per_gb * read_gb_uncompressed[:, None]
        decompression = (
            self.compute_cost_per_s * decompression_s * effective_accesses[:, None]
        )

        weights = self.weights
        objective = (
            weights.alpha * storage
            + weights.gamma * write
            + weights.beta * (read + decompression[:, None, :])
        )

        latency = decompression_s[:, None, :] + costs["latency_s"][None, :, None]
        feasible = latency <= arrays.latency_threshold_s[:, None, None]

        allowed = self._batch_codec_allowed(arrays, schemes)
        if scheme_available is not None:
            allowed = allowed & scheme_available
        feasible = feasible & allowed[:, None, :]

        if latency_slo_s is not None:
            latency_slo_s = np.asarray(latency_slo_s, dtype=np.float64)
            if latency_slo_s.shape != (len(arrays),):
                raise ValueError(
                    f"latency_slo_s must have shape ({len(arrays)},), "
                    f"got {latency_slo_s.shape}"
                )
            slo_ok = costs["effective_slo_s"][None, :] <= latency_slo_s[:, None]
            feasible = feasible & slo_ok[:, :, None]
        if tier_allowed is not None:
            tier_allowed = np.asarray(tier_allowed, dtype=bool)
            if tier_allowed.shape != (len(arrays), len(self.tiers)):
                raise ValueError(
                    f"tier_allowed must have shape ({len(arrays)}, "
                    f"{len(self.tiers)}), got {tier_allowed.shape}"
                )
            feasible = feasible & tier_allowed[:, :, None]

        return BatchCostTensors(
            schemes=tuple(schemes),
            stored_gb=stored_gb,
            storage=storage,
            read=read,
            write=write,
            decompression_s=decompression_s,
            decompression=decompression,
            objective=objective,
            latency_s=latency,
            feasible=feasible,
        )

    @staticmethod
    def _batch_codec_allowed(
        arrays: PartitionArrays, schemes: Sequence[str]
    ) -> np.ndarray:
        """(N, K) mask of codec pinning: pinned partitions allow only their codec."""
        allowed = np.ones((len(arrays), len(schemes)), dtype=bool)
        scheme_index = {scheme: k for k, scheme in enumerate(schemes)}
        for n, codec in enumerate(arrays.current_codec):
            if codec is None:
                continue
            allowed[n] = False
            pinned = scheme_index.get(codec)
            if pinned is not None:
                allowed[n, pinned] = True
        return allowed

    # -- codec pinning -------------------------------------------------------
    def is_codec_allowed(self, partition: DataPartition, scheme: str) -> bool:
        """The paper pins already-compressed partitions to their current scheme."""
        if partition.current_codec is None:
            return True
        return scheme == partition.current_codec

    # -- aggregate accounting -------------------------------------------------
    def assignment_breakdown(
        self,
        partitions: Mapping[str, DataPartition] | list[DataPartition],
        placement: Mapping[str, tuple[int, CompressionProfile]],
    ) -> CostBreakdown:
        """Total billed cost of a full placement (one entry per partition)."""
        items = (
            partitions.values() if isinstance(partitions, Mapping) else partitions
        )
        total = CostBreakdown()
        for partition in items:
            tier_index, profile = placement[partition.name]
            total += self.placement_breakdown(partition, tier_index, profile)
        return total

    def with_weights(self, weights: CostWeights) -> "CostModel":
        """Return a copy of this model with different objective weights."""
        return CostModel(
            tiers=self.tiers,
            compute_cost_per_s=self.compute_cost_per_s,
            duration_months=self.duration_months,
            weights=weights,
        )

    def with_duration(self, duration_months: float) -> "CostModel":
        """Return a copy of this model with a different billing horizon."""
        return CostModel(
            tiers=self.tiers,
            compute_cost_per_s=self.compute_cost_per_s,
            duration_months=duration_months,
            weights=self.weights,
        )
