"""Struct-of-arrays view of partition collections — the columnar fast path.

The scalar code paths evaluate costs one :class:`~repro.cloud.DataPartition`
Python object at a time; at tens of thousands of partitions the interpreter
overhead dominates the arithmetic.  :class:`PartitionArrays` holds the same
information as a list of partitions but column-wise, as preallocated numpy
vectors, so the cost model can evaluate the full (partition x tier x scheme)
tensor in a handful of vectorized operations.

The representation is **lossless**: ``PartitionArrays.from_partitions``
followed by :meth:`PartitionArrays.to_partitions` reproduces the original
partitions field for field (names, codecs, file ids and all), which is what
lets the vectorized solvers and the scalar reference oracles operate on the
same instances and be compared bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .objects import DataPartition

__all__ = ["PartitionArrays"]


@dataclass
class PartitionArrays:
    """Columnar (struct-of-arrays) representation of a partition list.

    All float columns are float64 vectors of the same length; ``current_tier``
    is an int64 vector (``NEW_DATA_TIER`` = -1 for unplaced data).  Columns
    that do not participate in any arithmetic (``names``, ``current_codec``,
    ``file_ids``) stay as plain Python tuples so the round trip back to
    :class:`DataPartition` loses nothing.
    """

    names: tuple[str, ...]
    size_gb: np.ndarray
    predicted_accesses: np.ndarray
    latency_threshold_s: np.ndarray
    current_tier: np.ndarray
    read_fraction: np.ndarray
    pushdown_fraction: np.ndarray
    current_codec: tuple[str | None, ...]
    file_ids: tuple[frozenset[str], ...]
    _index: dict[str, int] | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_partitions(cls, partitions: Sequence[DataPartition]) -> "PartitionArrays":
        """Extract every column from a partition list in one pass."""
        names: list[str] = []
        codecs: list[str | None] = []
        file_ids: list[frozenset[str]] = []
        floats = np.empty((5, len(partitions)), dtype=np.float64)
        tiers = np.empty(len(partitions), dtype=np.int64)
        for column, partition in enumerate(partitions):
            names.append(partition.name)
            codecs.append(partition.current_codec)
            file_ids.append(partition.file_ids)
            floats[0, column] = partition.size_gb
            floats[1, column] = partition.predicted_accesses
            floats[2, column] = partition.latency_threshold_s
            floats[3, column] = partition.read_fraction
            floats[4, column] = partition.pushdown_fraction
            tiers[column] = partition.current_tier
        return cls(
            names=tuple(names),
            size_gb=floats[0].copy(),
            predicted_accesses=floats[1].copy(),
            latency_threshold_s=floats[2].copy(),
            current_tier=tiers,
            read_fraction=floats[3].copy(),
            pushdown_fraction=floats[4].copy(),
            current_codec=tuple(codecs),
            file_ids=tuple(file_ids),
        )

    def to_partitions(self) -> list[DataPartition]:
        """Materialise the columns back into :class:`DataPartition` objects."""
        size = self.size_gb.tolist()
        accesses = self.predicted_accesses.tolist()
        thresholds = self.latency_threshold_s.tolist()
        tiers = self.current_tier.tolist()
        read_fraction = self.read_fraction.tolist()
        pushdown = self.pushdown_fraction.tolist()
        return [
            DataPartition(
                name=self.names[i],
                size_gb=size[i],
                predicted_accesses=accesses[i],
                latency_threshold_s=thresholds[i],
                current_tier=tiers[i],
                current_codec=self.current_codec[i],
                file_ids=self.file_ids[i],
                read_fraction=read_fraction[i],
                pushdown_fraction=pushdown[i],
            )
            for i in range(len(self.names))
        ]

    def take(self, indices: Sequence[int] | np.ndarray) -> "PartitionArrays":
        """A row subset as a new :class:`PartitionArrays` (order preserved).

        The numeric columns are numpy fancy-indexed; the object columns are
        gathered in one list pass.  This is what lets the incremental delta
        solver carve the changed rows out of a large instance without
        materialising per-row :class:`DataPartition` objects for the
        unchanged majority.
        """
        idx = np.asarray(indices, dtype=np.int64)
        positions = idx.tolist()
        return PartitionArrays(
            names=tuple(self.names[i] for i in positions),
            size_gb=self.size_gb[idx],
            predicted_accesses=self.predicted_accesses[idx],
            latency_threshold_s=self.latency_threshold_s[idx],
            current_tier=self.current_tier[idx],
            read_fraction=self.read_fraction[idx],
            pushdown_fraction=self.pushdown_fraction[idx],
            current_codec=tuple(self.current_codec[i] for i in positions),
            file_ids=tuple(self.file_ids[i] for i in positions),
        )

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def index_of(self, name: str) -> int:
        """Row index of ``name``; raises ``KeyError`` if unknown."""
        if self._index is None:
            self._index = {n: i for i, n in enumerate(self.names)}
        return self._index[name]

    # -- derived columns (mirror the DataPartition properties) ----------------
    @property
    def effective_accesses(self) -> np.ndarray:
        """Accesses hitting the read/decompression path (pushdown excluded)."""
        return self.predicted_accesses * (1.0 - self.pushdown_fraction)

    @property
    def read_gb_per_access(self) -> np.ndarray:
        """GB of uncompressed data touched by a single access."""
        return self.size_gb * self.read_fraction
