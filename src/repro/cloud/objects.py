"""Data objects that live in the simulated data lake.

The paper works at two granularities:

* **Datasets** (Enterprise Data I experiments): large objects, TB-PB in size,
  with monthly read/write access counts from historical logs.  The tiering
  optimizer and the access-pattern predictor operate on these.
* **Data partitions** (OPTASSIGN / DATAPART / pipeline experiments): groups of
  files produced either by ingestion batches or by the access-aware
  partitioner G-PART.  Each partition carries a predicted number of accesses
  for the projected billing period, a latency SLA and (optionally) the file
  ids it contains.

Both are plain dataclasses so they serialise trivially and are cheap to
construct in the millions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .tiers import NEW_DATA_TIER

__all__ = [
    "FileBlock",
    "DataPartition",
    "Dataset",
    "PartitionCatalog",
    "DatasetCatalog",
]

#: Name of the "identity" compression scheme: data is stored uncompressed.
NO_COMPRESSION = "none"


@dataclass(frozen=True)
class FileBlock:
    """A contiguous block of records (a file) inside a dataset.

    ``num_records`` is used by DATAPART when computing spans and overlaps;
    ``size_gb`` is used by the cost model.
    """

    file_id: str
    num_records: int
    size_gb: float

    def __post_init__(self) -> None:
        if self.num_records < 0:
            raise ValueError("num_records must be non-negative")
        if self.size_gb < 0:
            raise ValueError("size_gb must be non-negative")


@dataclass
class DataPartition:
    """A unit of placement for OPTASSIGN.

    Parameters
    ----------
    name:
        Unique identifier for the partition.
    size_gb:
        Uncompressed span ``Sp(P_i)`` in GB.
    predicted_accesses:
        Projected number of read accesses ``rho(P_i)`` over the billing
        horizon under optimisation.
    latency_threshold_s:
        Latency SLA ``T(P_i)`` in seconds: decompression time plus time to
        first byte must not exceed this.
    current_tier:
        Index of the tier the partition currently occupies, or
        ``NEW_DATA_TIER`` (-1) for newly ingested data.
    current_codec:
        Name of the compression scheme already applied, or ``None`` if data
        has not been compressed yet.  The paper's last ILP constraint pins
        already-compressed partitions to their scheme.
    file_ids:
        Optional set of member file ids (used when the partition came out of
        G-PART and we want to trace provenance).
    read_fraction:
        Fraction of the partition read per access (1.0 = full scan).
    pushdown_fraction:
        Fraction ``f`` of accesses that can be served directly on compressed
        data (computation pushdown); those accesses incur neither read nor
        decompression cost.
    """

    name: str
    size_gb: float
    predicted_accesses: float
    latency_threshold_s: float = float("inf")
    current_tier: int = NEW_DATA_TIER
    current_codec: str | None = None
    file_ids: frozenset[str] = field(default_factory=frozenset)
    read_fraction: float = 1.0
    pushdown_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("partition name must be non-empty")
        if self.size_gb < 0:
            raise ValueError("size_gb must be non-negative")
        if self.predicted_accesses < 0:
            raise ValueError("predicted_accesses must be non-negative")
        if self.latency_threshold_s < 0:
            raise ValueError("latency_threshold_s must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.pushdown_fraction <= 1.0:
            raise ValueError("pushdown_fraction must be in [0, 1]")
        if not isinstance(self.file_ids, frozenset):
            object.__setattr__(self, "file_ids", frozenset(self.file_ids))

    @property
    def is_new(self) -> bool:
        """True if the partition has not been placed in any tier yet."""
        return self.current_tier == NEW_DATA_TIER

    @property
    def effective_accesses(self) -> float:
        """Accesses that actually hit the read/decompression path.

        Pushdown-eligible accesses are served on compressed data and do not
        contribute to read or decompression cost.
        """
        return self.predicted_accesses * (1.0 - self.pushdown_fraction)

    @property
    def read_gb_per_access(self) -> float:
        """GB of (uncompressed) data touched by a single access."""
        return self.size_gb * self.read_fraction


@dataclass
class Dataset:
    """A dataset in the enterprise data lake with its historical access log.

    ``monthly_reads[i]`` / ``monthly_writes[i]`` are counts of read / write
    accesses during the i-th month after ``created_month``; index 0 is the
    creation month.  The most recent month is the last element.
    """

    name: str
    size_gb: float
    created_month: int
    monthly_reads: list[float] = field(default_factory=list)
    monthly_writes: list[float] = field(default_factory=list)
    current_tier: int = NEW_DATA_TIER
    latency_threshold_s: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dataset name must be non-empty")
        if self.size_gb < 0:
            raise ValueError("size_gb must be non-negative")
        if len(self.monthly_reads) != len(self.monthly_writes):
            raise ValueError(
                "monthly_reads and monthly_writes must have the same length"
            )
        if any(r < 0 for r in self.monthly_reads):
            raise ValueError("monthly read counts must be non-negative")
        if any(w < 0 for w in self.monthly_writes):
            raise ValueError("monthly write counts must be non-negative")

    @property
    def age_months(self) -> int:
        """Number of months of history recorded for this dataset."""
        return len(self.monthly_reads)

    def reads_in_window(self, months: int) -> float:
        """Total read accesses during the most recent ``months`` months."""
        if months <= 0:
            return 0.0
        return float(sum(self.monthly_reads[-months:]))

    def writes_in_window(self, months: int) -> float:
        """Total write accesses during the most recent ``months`` months."""
        if months <= 0:
            return 0.0
        return float(sum(self.monthly_writes[-months:]))

    def accessed_within(self, months: int) -> bool:
        """True if the dataset saw any read access in the last ``months`` months."""
        return self.reads_in_window(months) > 0

    def to_partition(
        self,
        predicted_accesses: float,
        latency_threshold_s: float | None = None,
    ) -> DataPartition:
        """View this dataset as a placement unit for OPTASSIGN."""
        return DataPartition(
            name=self.name,
            size_gb=self.size_gb,
            predicted_accesses=predicted_accesses,
            latency_threshold_s=(
                self.latency_threshold_s
                if latency_threshold_s is None
                else latency_threshold_s
            ),
            current_tier=self.current_tier,
        )


class _Catalog:
    """Shared implementation for keyed, ordered object collections."""

    def __init__(self, items: Iterable, kind: str):
        self._items = list(items)
        self._kind = kind
        self._by_name = {}
        for item in self._items:
            if item.name in self._by_name:
                raise ValueError(f"duplicate {kind} name: {item.name!r}")
            self._by_name[item.name] = item

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __getitem__(self, name: str):
        return self._by_name[name]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(item.name for item in self._items)

    @property
    def total_size_gb(self) -> float:
        return float(sum(item.size_gb for item in self._items))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self._items)} {self._kind}s, "
            f"{self.total_size_gb:.3f} GB)"
        )


class PartitionCatalog(_Catalog):
    """An ordered, name-indexed collection of :class:`DataPartition`."""

    def __init__(self, partitions: Iterable[DataPartition]):
        super().__init__(partitions, kind="partition")

    @property
    def partitions(self) -> list[DataPartition]:
        return list(self._items)


class DatasetCatalog(_Catalog):
    """An ordered, name-indexed collection of :class:`Dataset`."""

    def __init__(self, datasets: Iterable[Dataset]):
        super().__init__(datasets, kind="dataset")

    @property
    def datasets(self) -> list[Dataset]:
        return list(self._items)

    def to_partitions(
        self,
        predicted_accesses: Mapping[str, float],
        default_accesses: float = 0.0,
    ) -> PartitionCatalog:
        """Convert every dataset to a :class:`DataPartition`.

        ``predicted_accesses`` maps dataset name to the projected number of
        accesses for the optimisation horizon; datasets without an entry use
        ``default_accesses``.
        """
        return PartitionCatalog(
            dataset.to_partition(
                predicted_accesses.get(dataset.name, default_accesses)
            )
            for dataset in self._items
        )
