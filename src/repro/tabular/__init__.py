"""Lightweight tabular substrate: typed in-memory tables, layouts and scans.

Stands in for the PostgreSQL / Apache Spark execution engines of the paper:
SCOPe only needs query-result bytes in row- or column-oriented layouts and
per-column value statistics, both of which this subpackage provides without
external dependencies.
"""

from .columnar import columnar_bytes_to_table, table_to_columnar_bytes
from .csvio import csv_bytes_to_table, table_to_csv_bytes
from .generators import (
    categorical_column,
    float_column,
    integer_column,
    random_strings,
    random_table,
    string_column,
)
from .scan import Predicate, Query, run_query
from .table import Column, DataType, Table

__all__ = [
    "Column",
    "DataType",
    "Table",
    "Predicate",
    "Query",
    "run_query",
    "table_to_csv_bytes",
    "csv_bytes_to_table",
    "table_to_columnar_bytes",
    "columnar_bytes_to_table",
    "random_table",
    "random_strings",
    "categorical_column",
    "integer_column",
    "float_column",
    "string_column",
]
