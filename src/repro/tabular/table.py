"""A minimal typed, columnar, in-memory table.

The paper runs TPC-H queries on PostgreSQL and enterprise queries on Spark;
SCOPe itself only ever sees (a) the bytes of query results / partitions in a
row-oriented or column-oriented layout and (b) simple per-column statistics
(datatype, value frequencies) used for the weighted-entropy features.  This
module provides exactly that: a :class:`Table` of named, typed :class:`Column`
objects with row selection, projection, concatenation and per-column value
statistics.  pandas is intentionally not used (it is not available offline).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["DataType", "Column", "Table"]


class DataType:
    """Logical column datatypes understood by the feature extractor."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    ALL = (INT, FLOAT, STRING, DATE)

    @staticmethod
    def validate(dtype: str) -> str:
        if dtype not in DataType.ALL:
            raise ValueError(f"unknown dtype {dtype!r}; expected one of {DataType.ALL}")
        return dtype

    @staticmethod
    def infer(value: Any) -> str:
        """Best-effort datatype inference for a single Python value."""
        if isinstance(value, bool):
            return DataType.INT
        if isinstance(value, int):
            return DataType.INT
        if isinstance(value, float):
            return DataType.FLOAT
        return DataType.STRING


@dataclass
class Column:
    """A named, typed sequence of values."""

    name: str
    dtype: str
    values: list

    def __post_init__(self) -> None:
        DataType.validate(self.dtype)
        if not self.name:
            raise ValueError("column name must be non-empty")
        if not isinstance(self.values, list):
            self.values = list(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator:
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def take(self, indices: Sequence[int]) -> "Column":
        """A new column containing the values at ``indices`` (in that order)."""
        values = self.values
        return Column(self.name, self.dtype, [values[i] for i in indices])

    def value_counts(self) -> Counter:
        """Frequency of each distinct (stringified) value."""
        return Counter(str(value) for value in self.values)

    def distinct_count(self) -> int:
        return len(set(str(value) for value in self.values))


class Table:
    """An ordered collection of equal-length :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column], name: str = "table"):
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self.name = name
        self._columns: list[Column] = list(columns)
        self._by_name = {column.name: column for column in self._columns}

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[Any]],
        column_names: Sequence[str],
        dtypes: Sequence[str] | None = None,
        name: str = "table",
    ) -> "Table":
        """Build a table from a list of row tuples."""
        if not column_names:
            raise ValueError("column_names must be non-empty")
        if dtypes is not None and len(dtypes) != len(column_names):
            raise ValueError("dtypes must match column_names in length")
        columns_data: list[list[Any]] = [[] for _ in column_names]
        for row in rows:
            if len(row) != len(column_names):
                raise ValueError(
                    f"row of width {len(row)} does not match {len(column_names)} columns"
                )
            for slot, value in zip(columns_data, row):
                slot.append(value)
        if dtypes is None:
            dtypes = [
                DataType.infer(values[0]) if values else DataType.STRING
                for values in columns_data
            ]
        columns = [
            Column(column_name, dtype, values)
            for column_name, dtype, values in zip(column_names, dtypes, columns_data)
        ]
        return cls(columns, name=name)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Sequence[Any]],
        dtypes: Mapping[str, str] | None = None,
        name: str = "table",
    ) -> "Table":
        """Build a table from a mapping of column name to values."""
        columns = []
        for column_name, values in data.items():
            values = list(values)
            if dtypes and column_name in dtypes:
                dtype = dtypes[column_name]
            else:
                dtype = DataType.infer(values[0]) if values else DataType.STRING
            columns.append(Column(column_name, dtype, values))
        return cls(columns, name=name)

    # -- basic accessors ------------------------------------------------------
    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self._columns]

    @property
    def dtypes(self) -> dict[str, str]:
        return {column.name: column.dtype for column in self._columns}

    @property
    def num_rows(self) -> int:
        return len(self._columns[0])

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self.num_rows

    def __getitem__(self, column_name: str) -> Column:
        return self._by_name[column_name]

    def __contains__(self, column_name: object) -> bool:
        return column_name in self._by_name

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self.num_rows}, "
            f"columns={self.column_names})"
        )

    def row(self, index: int) -> tuple:
        """The values of row ``index`` across all columns."""
        return tuple(column[index] for column in self._columns)

    def iter_rows(self) -> Iterator[tuple]:
        for index in range(self.num_rows):
            yield self.row(index)

    # -- transformations -------------------------------------------------------
    def select_rows(self, indices: Sequence[int], name: str | None = None) -> "Table":
        """A new table containing only the rows at ``indices``."""
        for index in indices:
            if index < 0 or index >= self.num_rows:
                raise IndexError(f"row index {index} out of range")
        return Table(
            [column.take(indices) for column in self._columns],
            name=name or self.name,
        )

    def filter(self, predicate: Callable[[tuple], bool], name: str | None = None) -> "Table":
        """Rows for which ``predicate(row_tuple)`` is true."""
        indices = [index for index, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.select_rows(indices, name=name)

    def project(self, column_names: Sequence[str], name: str | None = None) -> "Table":
        """A new table containing only ``column_names`` (in that order)."""
        missing = [c for c in column_names if c not in self._by_name]
        if missing:
            raise KeyError(f"unknown columns: {missing}")
        return Table(
            [self._by_name[c] for c in column_names], name=name or self.name
        )

    def head(self, n: int) -> "Table":
        """The first ``n`` rows."""
        n = max(0, min(n, self.num_rows))
        return self.select_rows(list(range(n)))

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)``."""
        start = max(0, start)
        stop = min(self.num_rows, stop)
        if stop < start:
            stop = start
        return self.select_rows(list(range(start, stop)))

    def sort_by(self, column_name: str, descending: bool = False) -> "Table":
        """A new table with rows sorted by ``column_name``."""
        column = self._by_name[column_name]
        order = sorted(
            range(self.num_rows), key=lambda i: column[i], reverse=descending
        )
        return self.select_rows(order)

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        """Vertically stack another table with identical schema."""
        if self.column_names != other.column_names:
            raise ValueError("schemas differ: cannot concatenate")
        columns = [
            Column(a.name, a.dtype, a.values + b.values)
            for a, b in zip(self._columns, other._columns)
        ]
        return Table(columns, name=name or self.name)

    # -- statistics --------------------------------------------------------------
    def columns_by_dtype(self) -> dict[str, list[Column]]:
        """Group the table's columns by their logical datatype."""
        groups: dict[str, list[Column]] = {}
        for column in self._columns:
            groups.setdefault(column.dtype, []).append(column)
        return groups

    def approx_row_bytes(self) -> float:
        """Average serialized width of a row in bytes (CSV-style estimate)."""
        if self.num_rows == 0:
            return 0.0
        sample = min(self.num_rows, 256)
        total = 0
        for index in range(sample):
            total += sum(len(str(value)) + 1 for value in self.row(index))
        return total / sample
