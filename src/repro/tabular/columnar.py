"""Column-oriented ("parquet-like") serialisation of tables.

Parquet stores each column's values contiguously, optionally dictionary- and
run-length-encoded, which is why columnar layouts compress better than CSV on
repetitive tabular data.  This module reproduces that *byte-stream structure*
(per-column blocks, dictionary encoding for low-cardinality columns, a small
footer) without implementing the real Parquet format: the compression codecs
and the weighted-entropy features only depend on the redundancy structure of
the bytes, not on Parquet's exact encoding.
"""

from __future__ import annotations

import json
import struct

from .table import Column, DataType, Table

__all__ = ["table_to_columnar_bytes", "columnar_bytes_to_table"]

_MAGIC = b"RCOL1"
#: A column is dictionary-encoded when its distinct-value count is below this
#: fraction of the row count (mirrors Parquet's default dictionary behaviour).
_DICTIONARY_THRESHOLD = 0.5


def table_to_columnar_bytes(table: Table) -> bytes:
    """Serialise ``table`` column-by-column with dictionary encoding."""
    blocks: list[bytes] = []
    schema: list[dict] = []
    for column in table.columns:
        encoded, meta = _encode_column(column)
        schema.append(meta)
        blocks.append(encoded)
    footer = json.dumps(
        {"name": table.name, "rows": table.num_rows, "columns": schema}
    ).encode("utf-8")
    body = b"".join(blocks)
    return _MAGIC + struct.pack("<I", len(footer)) + footer + body


def columnar_bytes_to_table(payload: bytes) -> Table:
    """Parse bytes produced by :func:`table_to_columnar_bytes`."""
    if payload[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a columnar payload (bad magic)")
    offset = len(_MAGIC)
    (footer_length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    footer = json.loads(payload[offset : offset + footer_length].decode("utf-8"))
    offset += footer_length
    columns = []
    for meta in footer["columns"]:
        block = payload[offset : offset + meta["length"]]
        offset += meta["length"]
        columns.append(_decode_column(block, meta))
    return Table(columns, name=footer["name"])


def _encode_column(column: Column) -> tuple[bytes, dict]:
    values = [str(value) for value in column.values]
    distinct = sorted(set(values))
    use_dictionary = (
        len(values) > 0 and len(distinct) <= max(1, int(len(values) * _DICTIONARY_THRESHOLD))
    )
    if use_dictionary:
        index = {value: position for position, value in enumerate(distinct)}
        dictionary_block = "\x00".join(distinct).encode("utf-8")
        codes = b"".join(struct.pack("<I", index[value]) for value in values)
        block = (
            struct.pack("<I", len(dictionary_block)) + dictionary_block + codes
        )
        encoding = "dictionary"
    else:
        block = "\x00".join(values).encode("utf-8")
        encoding = "plain"
    meta = {
        "name": column.name,
        "dtype": column.dtype,
        "encoding": encoding,
        "length": len(block),
        "rows": len(values),
    }
    return block, meta


def _decode_column(block: bytes, meta: dict) -> Column:
    dtype = meta["dtype"]
    rows = meta["rows"]
    if meta["encoding"] == "dictionary":
        (dictionary_length,) = struct.unpack_from("<I", block, 0)
        dictionary_block = block[4 : 4 + dictionary_length].decode("utf-8")
        # A dictionary of a single empty string serialises to zero bytes, so the
        # split must not be skipped when the block is empty but rows exist.
        dictionary = dictionary_block.split("\x00") if rows else []
        codes_block = block[4 + dictionary_length :]
        raw_values = [
            dictionary[struct.unpack_from("<I", codes_block, 4 * position)[0]]
            for position in range(rows)
        ]
    else:
        text = block.decode("utf-8")
        raw_values = text.split("\x00") if rows else []
        if len(raw_values) != rows:
            raise ValueError("corrupt plain column block")
    values = [_parse_value(raw, dtype) for raw in raw_values]
    return Column(meta["name"], dtype, values)


def _parse_value(raw: str, dtype: str):
    if dtype == DataType.INT:
        return int(raw)
    if dtype == DataType.FLOAT:
        return float(raw)
    return raw
