"""Random table generators used by tests and by the synthetic workloads.

All generators accept a ``numpy.random.Generator`` so experiments are
reproducible, and expose knobs that matter for compression behaviour:
cardinality of categorical columns (repetition), numeric ranges, string
lengths and an optional sort column.
"""

from __future__ import annotations

import string
from typing import Sequence

import numpy as np

from .table import Column, DataType, Table

__all__ = [
    "random_strings",
    "categorical_column",
    "integer_column",
    "float_column",
    "string_column",
    "random_table",
]

_ALPHABET = np.array(list(string.ascii_lowercase + string.digits))


def random_strings(
    rng: np.random.Generator, count: int, length: int = 12
) -> list[str]:
    """``count`` random fixed-length lowercase/digit strings."""
    if count < 0 or length < 0:
        raise ValueError("count and length must be non-negative")
    if count == 0:
        return []
    letters = rng.choice(_ALPHABET, size=(count, max(length, 1)))
    return ["".join(row) for row in letters]


def categorical_column(
    rng: np.random.Generator,
    name: str,
    num_rows: int,
    cardinality: int,
    value_length: int = 10,
    zipf_exponent: float | None = None,
) -> Column:
    """A string column drawn from a fixed vocabulary of ``cardinality`` values.

    With ``zipf_exponent`` set, values are drawn with a Zipf-like skew so a
    few values dominate (which raises repetition and compressibility).
    """
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    vocabulary = random_strings(rng, cardinality, value_length)
    if zipf_exponent is None:
        picks = rng.integers(0, cardinality, size=num_rows)
    else:
        weights = 1.0 / np.arange(1, cardinality + 1) ** zipf_exponent
        weights /= weights.sum()
        picks = rng.choice(cardinality, size=num_rows, p=weights)
    return Column(name, DataType.STRING, [vocabulary[i] for i in picks])


def integer_column(
    rng: np.random.Generator, name: str, num_rows: int, low: int = 0, high: int = 10_000
) -> Column:
    """A uniform integer column in ``[low, high)``."""
    if high <= low:
        raise ValueError("high must exceed low")
    values = rng.integers(low, high, size=num_rows)
    return Column(name, DataType.INT, [int(v) for v in values])


def float_column(
    rng: np.random.Generator,
    name: str,
    num_rows: int,
    low: float = 0.0,
    high: float = 1000.0,
    decimals: int = 2,
) -> Column:
    """A uniform float column in ``[low, high)`` rounded to ``decimals`` places."""
    if high <= low:
        raise ValueError("high must exceed low")
    values = rng.uniform(low, high, size=num_rows)
    return Column(name, DataType.FLOAT, [round(float(v), decimals) for v in values])


def string_column(
    rng: np.random.Generator, name: str, num_rows: int, length: int = 24
) -> Column:
    """A high-entropy string column (every value unique with high probability)."""
    return Column(name, DataType.STRING, random_strings(rng, num_rows, length))


def random_table(
    rng: np.random.Generator,
    num_rows: int,
    name: str = "random",
    categorical_cardinality: int = 32,
    num_categorical: int = 2,
    num_int: int = 2,
    num_float: int = 1,
    num_text: int = 1,
    sort_by: str | None = None,
) -> Table:
    """A mixed-type table whose compressibility is controlled by its knobs.

    Lower ``categorical_cardinality`` means more repetition and therefore
    better compression; ``num_text`` high-entropy columns pull the ratio down.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    columns: list[Column] = []
    for index in range(num_categorical):
        columns.append(
            categorical_column(
                rng, f"cat_{index}", num_rows, cardinality=categorical_cardinality
            )
        )
    for index in range(num_int):
        columns.append(integer_column(rng, f"int_{index}", num_rows))
    for index in range(num_float):
        columns.append(float_column(rng, f"float_{index}", num_rows))
    for index in range(num_text):
        columns.append(string_column(rng, f"text_{index}", num_rows))
    table = Table(columns, name=name)
    if sort_by is not None:
        table = table.sort_by(sort_by)
    return table
