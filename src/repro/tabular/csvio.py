"""Row-oriented (CSV) serialisation of :class:`repro.tabular.Table`.

The paper uses CSV files as the representative row-store layout when studying
how storage layout affects compression-ratio prediction.  Serialisation here
is deliberately simple (comma separated, header row, repr-style values) —
compression codecs only care about the byte stream's redundancy structure.
"""

from __future__ import annotations

import csv
import io

from .table import Column, DataType, Table

__all__ = ["table_to_csv_bytes", "csv_bytes_to_table"]


def table_to_csv_bytes(table: Table) -> bytes:
    """Serialise ``table`` to UTF-8 CSV bytes (header + one line per row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow([_format_value(value) for value in row])
    return buffer.getvalue().encode("utf-8")


def csv_bytes_to_table(
    payload: bytes, dtypes: dict[str, str] | None = None, name: str = "table"
) -> Table:
    """Parse CSV bytes produced by :func:`table_to_csv_bytes` back into a table.

    ``dtypes`` maps column name to a :class:`repro.tabular.DataType` value;
    columns without an entry are parsed as strings.
    """
    text = payload.decode("utf-8")
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV payload") from None
    dtypes = dtypes or {}
    columns_data: list[list] = [[] for _ in header]
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(header)}"
            )
        for slot, raw, column_name in zip(columns_data, row, header):
            slot.append(_parse_value(raw, dtypes.get(column_name, DataType.STRING)))
    columns = [
        Column(column_name, dtypes.get(column_name, DataType.STRING), values)
        for column_name, values in zip(header, columns_data)
    ]
    return Table(columns, name=name)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _parse_value(raw: str, dtype: str):
    if dtype == DataType.INT:
        return int(raw)
    if dtype == DataType.FLOAT:
        return float(raw)
    return raw
