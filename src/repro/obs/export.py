"""Exporters: JSONL dumps, Prometheus text format, and summary tables.

Three consumers, three formats, one snapshot:

* :func:`to_jsonl` / :func:`parse_jsonl` — a lossless line-per-record dump
  (``{"type": "span", ...}`` and ``{"type": "metric", ...}`` lines) for
  post-hoc analysis and golden tests.  The pair is a strict round trip:
  ``to_jsonl(parse_jsonl(text)) == text`` for any text this module produced
  (keys are emitted in a canonical order for exactly this reason).
* :func:`to_prometheus` — the Prometheus/OpenMetrics text exposition format
  (``# TYPE`` headers, cumulative ``le`` histogram buckets, ``+Inf``,
  ``_sum``/``_count``), ready for the control plane's ``/metrics`` endpoint.
* :func:`render_summary` / :func:`render_span_tree` / :func:`render_table` —
  human-readable output for examples and run footers.

:func:`phase_totals` aggregates a span list into per-phase-name totals; the
benchmark suite and the CI regression gate share it so bench JSON and live
telemetry report identical phase names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import SpanRecord, Tracer

__all__ = [
    "MetricSample",
    "ObsSnapshot",
    "snapshot",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "phase_totals",
    "span_tree",
    "render_span_tree",
    "render_table",
    "render_summary",
]


@dataclass
class MetricSample:
    """One metric series, decoupled from its live instrument."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: dict[str, str] = field(default_factory=dict)
    value: float | None = None  # counters and gauges
    sum: float | None = None  # histograms
    count: int | None = None
    edges: list[float] | None = None
    counts: list[int] | None = None  # non-cumulative, +Inf bucket last


@dataclass
class ObsSnapshot:
    """Everything one run produced: finished spans plus metric samples."""

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: list[MetricSample] = field(default_factory=list)


def snapshot(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> ObsSnapshot:
    """Freeze a tracer and/or registry into an exportable snapshot."""
    snap = ObsSnapshot()
    if tracer is not None:
        snap.spans = tracer.records()
    if metrics is not None:
        for name, labels, instrument in metrics.collect():
            if isinstance(instrument, Histogram):
                snap.metrics.append(
                    MetricSample(
                        name=name,
                        kind="histogram",
                        labels=labels,
                        sum=instrument.sum,
                        count=instrument.count,
                        edges=list(instrument.edges),
                        counts=list(instrument.counts),
                    )
                )
            elif isinstance(instrument, (Counter, Gauge)):
                snap.metrics.append(
                    MetricSample(
                        name=name,
                        kind=instrument.kind,
                        labels=labels,
                        value=instrument.value,
                    )
                )
    return snap


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def _span_to_obj(record: SpanRecord) -> dict[str, Any]:
    obj: dict[str, Any] = {
        "type": "span",
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "name": record.name,
        "start_s": record.start_s,
        "duration_s": record.duration_s,
        "attrs": record.attrs,
    }
    if record.memory_peak_kb is not None:
        obj["memory_peak_kb"] = record.memory_peak_kb
    if record.error is not None:
        obj["error"] = record.error
    return obj


def _metric_to_obj(sample: MetricSample) -> dict[str, Any]:
    obj: dict[str, Any] = {
        "type": "metric",
        "kind": sample.kind,
        "name": sample.name,
        "labels": sample.labels,
    }
    if sample.kind == "histogram":
        obj["sum"] = sample.sum
        obj["count"] = sample.count
        obj["edges"] = sample.edges
        obj["counts"] = sample.counts
    else:
        obj["value"] = sample.value
    return obj


def to_jsonl(snap: ObsSnapshot) -> str:
    """Serialize a snapshot, one JSON object per line, spans then metrics."""
    lines = [json.dumps(_span_to_obj(record), sort_keys=False) for record in snap.spans]
    lines.extend(
        json.dumps(_metric_to_obj(sample), sort_keys=False) for sample in snap.metrics
    )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> ObsSnapshot:
    """Inverse of :func:`to_jsonl`; raises ValueError on malformed lines."""
    snap = ObsSnapshot()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {lineno}: not JSON: {error}") from error
        record_type = obj.get("type")
        if record_type == "span":
            snap.spans.append(
                SpanRecord(
                    span_id=obj["span_id"],
                    parent_id=obj["parent_id"],
                    name=obj["name"],
                    start_s=obj["start_s"],
                    duration_s=obj["duration_s"],
                    attrs=obj.get("attrs", {}),
                    memory_peak_kb=obj.get("memory_peak_kb"),
                    error=obj.get("error"),
                )
            )
        elif record_type == "metric":
            snap.metrics.append(
                MetricSample(
                    name=obj["name"],
                    kind=obj["kind"],
                    labels=obj.get("labels", {}),
                    value=obj.get("value"),
                    sum=obj.get("sum"),
                    count=obj.get("count"),
                    edges=obj.get("edges"),
                    counts=obj.get("counts"),
                )
            )
        else:
            raise ValueError(f"line {lineno}: unknown record type {record_type!r}")
    return snap


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus name charset ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    sanitized = "".join(
        char if (char.isalnum() and char.isascii()) or char in "_:" else "_"
        for char in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(key)}="{_prom_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    return repr(float(value))


def to_prometheus(snap: ObsSnapshot) -> str:
    """Render metric samples in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in snap.metrics:
        name = _prom_name(sample.name)
        if name not in seen_headers:
            lines.append(f"# TYPE {name} {sample.kind}")
            seen_headers.add(name)
        if sample.kind == "histogram":
            edges = sample.edges or []
            counts = sample.counts or []
            cumulative = 0
            for edge, count in zip(edges, counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_prom_labels(sample.labels, {'le': _format_value(edge)})}"
                    f" {cumulative}"
                )
            total = cumulative + (counts[-1] if len(counts) > len(edges) else 0)
            lines.append(
                f"{name}_bucket{_prom_labels(sample.labels, {'le': '+Inf'})} {total}"
            )
            lines.append(
                f"{name}_sum{_prom_labels(sample.labels)} {_format_value(sample.sum or 0.0)}"
            )
            lines.append(f"{name}_count{_prom_labels(sample.labels)} {total}")
        else:
            lines.append(
                f"{name}{_prom_labels(sample.labels)} {_format_value(sample.value or 0.0)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Aggregation + human-readable rendering
# ---------------------------------------------------------------------------

def phase_totals(spans: Iterable[SpanRecord]) -> dict[str, dict[str, float]]:
    """Aggregate spans by name: call count, total/mean/max duration.

    This is the shared vocabulary between live telemetry and the benchmark
    JSON — ``check_bench_regression.py`` compares these totals per phase.
    """
    totals: dict[str, dict[str, float]] = {}
    for record in spans:
        entry = totals.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += record.duration_s
        entry["max_s"] = max(entry["max_s"], record.duration_s)
    for entry in totals.values():
        entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
    return totals


def span_tree(
    spans: Iterable[SpanRecord],
) -> list[tuple[SpanRecord, list]]:
    """Nest spans into ``(record, children)`` trees, roots in id order.

    A span whose parent never finished (or was recorded by another tracer)
    is promoted to a root rather than dropped.
    """
    records = sorted(spans, key=lambda record: record.span_id)
    nodes: dict[int, tuple[SpanRecord, list]] = {
        record.span_id: (record, []) for record in records
    }
    roots: list[tuple[SpanRecord, list]] = []
    for record in records:
        if record.parent_id is not None and record.parent_id in nodes:
            nodes[record.parent_id][1].append(nodes[record.span_id])
        else:
            roots.append(nodes[record.span_id])
    return roots


def render_span_tree(spans: Iterable[SpanRecord]) -> str:
    """Indented text rendering of the span forest with durations."""
    lines: list[str] = []

    def _walk(node: tuple[SpanRecord, list], depth: int) -> None:
        record, children = node
        indent = "  " * depth
        suffix = ""
        if record.memory_peak_kb is not None:
            suffix += f"  peak={record.memory_peak_kb:,.0f}KiB"
        if record.error is not None:
            suffix += f"  ERROR({record.error})"
        attrs = ""
        if record.attrs:
            inner = ", ".join(
                f"{key}={value}" for key, value in sorted(record.attrs.items())
            )
            attrs = f"  [{inner}]"
        lines.append(
            f"{indent}{record.name:<{max(1, 40 - len(indent))}}"
            f" {record.duration_s * 1e3:10.3f} ms{attrs}{suffix}"
        )
        for child in children:
            _walk(child, depth + 1)

    for root in span_tree(spans):
        _walk(root, 0)
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    align_right: Sequence[bool] | None = None,
) -> str:
    """Plain aligned text table (the examples' shared table renderer).

    Columns with ``align_right[i]`` true are right-aligned; by default every
    column except the first is right-aligned (label left, numbers right).
    """
    if align_right is None:
        align_right = [False] + [True] * (len(headers) - 1)
    cells = [[str(header) for header in headers]]
    cells.extend([str(cell) for cell in row] for row in rows)
    widths = [
        max(len(row[column]) for row in cells) for column in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        rendered = "  ".join(
            cell.rjust(width) if right else cell.ljust(width)
            for cell, width, right in zip(row, widths, align_right)
        )
        lines.append(rendered.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_summary(snap: ObsSnapshot, top: int | None = None) -> str:
    """Per-run summary: phase-timing table plus counter/gauge totals."""
    sections: list[str] = []
    if snap.spans:
        totals = phase_totals(snap.spans)
        ordered = sorted(
            totals.items(), key=lambda item: item[1]["total_s"], reverse=True
        )
        if top is not None:
            ordered = ordered[:top]
        rows = [
            (
                name,
                int(entry["count"]),
                f"{entry['total_s'] * 1e3:.3f}",
                f"{entry['mean_s'] * 1e3:.3f}",
                f"{entry['max_s'] * 1e3:.3f}",
            )
            for name, entry in ordered
        ]
        sections.append(
            "phase timings\n"
            + render_table(("phase", "calls", "total ms", "mean ms", "max ms"), rows)
        )
    scalar_rows = []
    histogram_rows = []
    for sample in snap.metrics:
        label_text = (
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(sample.labels.items())) + "}"
            if sample.labels
            else ""
        )
        if sample.kind == "histogram":
            mean = (sample.sum or 0.0) / sample.count if sample.count else 0.0
            histogram_rows.append(
                (
                    sample.name + label_text,
                    sample.count or 0,
                    f"{sample.sum or 0.0:.6g}",
                    f"{mean:.6g}",
                )
            )
        else:
            scalar_rows.append(
                (sample.name + label_text, sample.kind, f"{sample.value or 0.0:.6g}")
            )
    if scalar_rows:
        sections.append(
            "metrics\n" + render_table(("metric", "kind", "value"), scalar_rows)
        )
    if histogram_rows:
        sections.append(
            "histograms\n"
            + render_table(("metric", "count", "sum", "mean"), histogram_rows)
        )
    return "\n\n".join(sections)
