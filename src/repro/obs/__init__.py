"""Dependency-free observability: tracing spans, metrics, exporters.

The subsystem is off by default and globally switched: instrumented code in
the engine, solver and fleet scheduler asks :func:`get_tracer` /
:func:`get_metrics` at call time and receives shared no-op singletons unless
a run has been explicitly enabled — so the instrumentation costs two
dictionary lookups and a no-op call per site when disabled, and the billed
results are identical either way (telemetry never feeds back into decisions).

Typical use::

    from repro import obs

    with obs.observed() as run:                 # enable for one run
        report = engine.run(stream)
    snap = obs.snapshot(run.tracer, run.metrics)
    print(obs.render_summary(snap))             # human summary table
    path.write_text(obs.to_jsonl(snap))         # lossless JSONL dump
    print(obs.to_prometheus(snap))              # /metrics scrape body

or imperatively with :func:`enable` / :func:`disable`.  ``enable`` while
already enabled returns the live handle unchanged (nested ``observed``
blocks therefore share one tracer, and only the outermost disables).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .clock import monotonic_s
from .export import (
    MetricSample,
    ObsSnapshot,
    parse_jsonl,
    phase_totals,
    render_span_tree,
    render_summary,
    render_table,
    snapshot,
    span_tree,
    to_jsonl,
    to_prometheus,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
    NOOP_METRICS,
    NoopMetricsRegistry,
)
from .trace import NOOP_TRACER, NoopSpan, NoopTracer, Span, SpanRecord, Tracer

__all__ = [
    # clock
    "monotonic_s",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "DEFAULT_TIME_BUCKETS_S",
    # tracing
    "Span",
    "SpanRecord",
    "Tracer",
    "NoopSpan",
    "NoopTracer",
    "NOOP_TRACER",
    # exporters
    "MetricSample",
    "ObsSnapshot",
    "snapshot",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "phase_totals",
    "span_tree",
    "render_span_tree",
    "render_summary",
    "render_table",
    # global switch
    "Observability",
    "enable",
    "disable",
    "observed",
    "is_enabled",
    "get_tracer",
    "get_metrics",
]


@dataclass
class Observability:
    """Handle to one enabled run's live tracer + registry."""

    tracer: Tracer
    metrics: MetricsRegistry

    def snapshot(self) -> ObsSnapshot:
        return snapshot(self.tracer, self.metrics)


_active: Observability | None = None


def enable(
    track_memory: bool = False, max_label_sets: int = 64
) -> Observability:
    """Switch observability on process-wide; idempotent while enabled."""
    global _active
    if _active is None:
        _active = Observability(
            tracer=Tracer(track_memory=track_memory),
            metrics=MetricsRegistry(max_label_sets=max_label_sets),
        )
    return _active


def disable() -> None:
    """Switch back to the no-op singletons (instrumentation goes free)."""
    global _active
    if _active is not None:
        _active.tracer.close()
    _active = None


def is_enabled() -> bool:
    return _active is not None


def get_tracer() -> Tracer | NoopTracer:
    """The live tracer, or the shared no-op when disabled."""
    active = _active
    return active.tracer if active is not None else NOOP_TRACER


def get_metrics() -> MetricsRegistry | NoopMetricsRegistry:
    """The live registry, or the shared no-op when disabled."""
    active = _active
    return active.metrics if active is not None else NOOP_METRICS


@contextmanager
def observed(
    track_memory: bool = False, max_label_sets: int = 64
) -> Iterator[Observability]:
    """Enable for the duration of a block; outermost exit disables."""
    was_enabled = is_enabled()
    handle = enable(track_memory=track_memory, max_label_sets=max_label_sets)
    try:
        yield handle
    finally:
        if not was_enabled:
            disable()
