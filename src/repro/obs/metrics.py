"""A dependency-free metrics registry: counters, gauges and histograms.

Metrics are keyed by *name* plus a *label set* (sorted ``key=value`` pairs),
Prometheus-style: ``registry.counter("migration.moved_gb", tenant="hot")``
returns the counter for that exact (name, labels) series, creating it on
first use.  A name is bound to one metric kind forever (asking for a gauge
under a counter's name raises), and every name enforces a configurable cap on
the number of distinct label sets — an unbounded label (a partition name, a
timestamp) would otherwise grow the registry without limit, which is the
classic production metrics footgun.

Histograms use fixed upper-inclusive bucket edges (``value <= edge``), the
``le`` semantics of the Prometheus text format, plus an implicit ``+Inf``
overflow bucket; per-bucket counts are stored non-cumulative and rendered
cumulative at export time.

The registry is thread-safe (the fleet scheduler settles tenants from a
thread pool); individual ``add``/``set``/``observe`` calls take a lock only
on series creation, not on every update — float updates are atomic enough
under the GIL for telemetry purposes.

When observability is disabled, :data:`NOOP_METRICS` stands in: every method
returns a shared no-op instrument whose updates do nothing, so instrumented
code pays one method call and no allocation.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "DEFAULT_TIME_BUCKETS_S",
]

#: Default histogram edges for wall-clock observations, in seconds:
#: half-decade log spacing from 1 ms to 60 s (plus the +Inf overflow bucket).
DEFAULT_TIME_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Labels canonicalized to a hashable identity: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


class LabelCardinalityError(RuntimeError):
    """A metric name exceeded its registry's cap on distinct label sets."""


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self.value += amount

    inc = add


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket distribution with upper-inclusive (``le``) edges."""

    __slots__ = ("edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        self.edges = tuple(float(edge) for edge in edges)
        # counts[i] covers (edges[i-1], edges[i]]; counts[-1] is the +Inf
        # overflow bucket.  Stored non-cumulative; exporters cumulate.
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        position = len(self.edges)
        for index, edge in enumerate(self.edges):
            if value <= edge:
                position = index
                break
        self.counts[position] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Counts as the Prometheus text format wants them: ``le``-cumulative."""
        total = 0
        cumulative = []
        for count in self.counts:
            total += count
            cumulative.append(total)
        return cumulative


class MetricsRegistry:
    """All live metric series, keyed by name + label set."""

    enabled = True

    def __init__(
        self,
        max_label_sets: int = 64,
        default_buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S,
    ) -> None:
        if max_label_sets <= 0:
            raise ValueError("max_label_sets must be positive")
        self.max_label_sets = max_label_sets
        self.default_buckets = tuple(default_buckets)
        self._series: dict[str, dict[LabelKey, object]] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument accessors ---------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self._instrument(name, "counter", labels, lambda: Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._instrument(name, "gauge", labels, lambda: Gauge())

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        edges = tuple(buckets) if buckets is not None else self.default_buckets
        instrument = self._instrument(
            name, "histogram", labels, lambda: Histogram(edges)
        )
        if instrument.edges != edges and buckets is not None:
            raise ValueError(
                f"histogram {name!r} already exists with edges "
                f"{instrument.edges}, not {edges}"
            )
        return instrument

    def _instrument(self, name: str, kind: str, labels, factory):
        key = _label_key(labels)
        series = self._series.get(name)
        if series is not None:
            existing = series.get(key)
            if existing is not None:
                if self._kinds[name] != kind:
                    raise ValueError(
                        f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                    )
                return existing
        with self._lock:
            bound = self._kinds.setdefault(name, kind)
            if bound != kind:
                raise ValueError(f"metric {name!r} is a {bound}, not a {kind}")
            series = self._series.setdefault(name, {})
            instrument = series.get(key)
            if instrument is None:
                if len(series) >= self.max_label_sets:
                    raise LabelCardinalityError(
                        f"metric {name!r} would exceed {self.max_label_sets} "
                        f"label sets (offending labels: {dict(key)}); an "
                        "unbounded label does not belong on a metric"
                    )
                instrument = series[key] = factory()
            return instrument

    # -- introspection ----------------------------------------------------------
    def collect(self) -> Iterator[tuple[str, dict[str, str], object]]:
        """Every (name, labels, instrument), sorted by name then labels."""
        for name in sorted(self._series):
            for key in sorted(self._series[name]):
                yield name, dict(key), self._series[name][key]

    def kind_of(self, name: str) -> str | None:
        return self._kinds.get(name)

    def __len__(self) -> int:
        return sum(len(series) for series in self._series.values())

    def reset(self) -> None:
        """Drop every series (a fresh run's registry)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()


class _NoopInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def add(self, amount: float = 1.0) -> None:
        pass

    inc = add
    set = add
    observe = add


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetricsRegistry:
    """The disabled-observability stand-in: allocation-free, does nothing."""

    enabled = False

    def counter(self, name: str, **labels: object) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels: object) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def collect(self) -> Iterator:
        return iter(())

    def __len__(self) -> int:
        return 0

    def reset(self) -> None:
        pass


NOOP_METRICS = NoopMetricsRegistry()
