"""Nestable tracing spans with a process-global no-op default.

A :class:`Span` is a context manager that records wall-clock (and, when the
tracer asks for it, the ``tracemalloc`` peak) for one named phase::

    with tracer.span("optassign.solve", solver="greedy") as span:
        ...
        span.set(relaxation_rounds=rounds)

Spans nest through a thread-local stack: a span opened while another is
active becomes its child, so one engine epoch produces a tree —
``engine.epoch`` → ``engine.solve`` → ``optassign.greedy`` — that the
exporters in :mod:`repro.obs.export` can render as a tree or aggregate into
per-phase totals.

Two things keep this honest in this codebase:

* The fleet scheduler dispatches per-tenant work through a thread pool, and
  a worker thread's stack starts empty — its spans would silently become
  roots.  Callers that fan out capture ``tracer.current_span_id`` before
  dispatch and pass it as ``parent_id=`` so the tree survives the hop.
* ``tracemalloc`` exposes a single process-wide peak.  We ``reset_peak()``
  on span entry, which means a parent's recorded peak only covers the tail
  after its last child closed — *innermost* spans are accurate, outer spans
  are best-effort lower bounds.  Memory tracking is therefore opt-in
  (``Tracer(track_memory=True)``) and off in benchmarks.

Span identity is a deterministic per-tracer sequence number (``span_id``),
not a random id: runs with a fixed seed produce byte-identical exports,
which the round-trip tests rely on.
"""

from __future__ import annotations

import threading
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Iterator

from .clock import monotonic_s

__all__ = ["Span", "SpanRecord", "Tracer", "NoopSpan", "NoopTracer", "NOOP_TRACER"]


@dataclass
class SpanRecord:
    """One finished span, as exported/parsed (see :mod:`repro.obs.export`)."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    memory_peak_kb: float | None = None
    error: str | None = None


class Span:
    """A live phase measurement; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_s",
        "duration_s",
        "memory_peak_kb",
        "error",
        "_closed",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.duration_s = 0.0
        self.memory_peak_kb: float | None = None
        self.error: str | None = None
        self._closed = False

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        if self.tracer.track_memory and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        self.start_s = monotonic_s()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = monotonic_s() - self.start_s
        if self.tracer.track_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.memory_peak_kb = peak / 1024.0
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._closed = True
        self.tracer._pop(self)
        return None  # never swallow exceptions


class Tracer:
    """Collects spans for one run; hand it to exporters when done."""

    enabled = True

    def __init__(self, track_memory: bool = False) -> None:
        self.track_memory = track_memory
        self.spans: list[SpanRecord] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self._memory_started_here = False
        if track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._memory_started_here = True

    # -- span lifecycle ---------------------------------------------------------
    def span(
        self, name: str, parent_id: int | None = None, **attrs: Any
    ) -> Span:
        """Open a span; nests under the thread's current span unless
        ``parent_id`` pins it explicitly (needed across thread-pool hops)."""
        if parent_id is None:
            parent_id = self.current_span_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, parent_id, name, dict(attrs))

    @property
    def current_span_id(self) -> int | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        record = SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            start_s=span.start_s,
            duration_s=span.duration_s,
            attrs=span.attrs,
            memory_peak_kb=span.memory_peak_kb,
            error=span.error,
        )
        with self._lock:
            self.spans.append(record)

    # -- cross-process handoff ---------------------------------------------------
    def adopt(
        self,
        records: "list[SpanRecord]",
        parent_id: int | None = None,
    ) -> list[SpanRecord]:
        """Fold spans recorded by *another* tracer into this one's trace.

        The thread-hop pattern (capture ``current_span_id``, pass it as
        ``parent_id=``) cannot cross a process boundary: a worker process has
        its own tracer whose spans — and their ids — die with it.  Instead the
        worker runs a private :class:`Tracer`, ships its (picklable)
        :class:`SpanRecord` list back, and the parent adopts them here:
        every record gets a fresh id from this tracer's sequence (keeping
        exports deterministic), intra-batch parent links are remapped to the
        fresh ids, and records that were roots in the worker are re-parented
        under ``parent_id`` — so the exported tree shows the worker's spans
        exactly where the dispatch happened.

        Records are adopted in the order given; call once per worker, in a
        deterministic worker order, for reproducible exports.  Returns the
        adopted (re-based) records.
        """
        if not records:
            return []
        with self._lock:
            base = self._next_id
            self._next_id += len(records)
        remap = {
            record.span_id: base + offset
            for offset, record in enumerate(records)
        }
        adopted = [
            SpanRecord(
                span_id=remap[record.span_id],
                parent_id=(
                    remap[record.parent_id]
                    if record.parent_id in remap
                    else parent_id
                ),
                name=record.name,
                start_s=record.start_s,
                duration_s=record.duration_s,
                attrs=dict(record.attrs),
                memory_peak_kb=record.memory_peak_kb,
                error=record.error,
            )
            for record in records
        ]
        with self._lock:
            self.spans.extend(adopted)
        return adopted

    # -- introspection ----------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Finished spans, ordered by span_id (creation order)."""
        with self._lock:
            return sorted(self.spans, key=lambda record: record.span_id)

    def __len__(self) -> int:
        return len(self.spans)

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self._next_id = 0

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._memory_started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._memory_started_here = False


class NoopSpan:
    """Shared do-nothing span: two attribute lookups and a call, no alloc."""

    __slots__ = ()
    span_id = None
    parent_id = None
    name = ""
    duration_s = 0.0
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = NoopSpan()


class NoopTracer:
    """The disabled-observability stand-in."""

    enabled = False
    track_memory = False
    current_span_id = None

    def span(self, name: str, parent_id: int | None = None, **attrs: Any) -> NoopSpan:
        return NOOP_SPAN

    def adopt(
        self, records: "list[SpanRecord]", parent_id: int | None = None
    ) -> list[SpanRecord]:
        return []

    def records(self) -> list[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0

    def reset(self) -> None:
        pass

    def close(self) -> None:
        pass


NOOP_TRACER = NoopTracer()
