"""The one sanctioned monotonic clock in :mod:`repro`.

Every wall-clock measurement inside ``src/repro`` flows through either a
:class:`~repro.obs.Tracer` span or :func:`monotonic_s` — never a bare
``time.perf_counter()`` call.  The banned-pattern lint
(``tools/check_banned_patterns.py``) enforces this: with timing centralized
here, per-phase telemetry and report-level timings (``EpochRecord.
wall_clock_s``, the fleet's ``solve_wall_clock_s``) are guaranteed to share
one time base, and a future switch of clock (e.g. to a coarse clock on
platforms where ``perf_counter`` is expensive) is a one-line change.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s"]

#: Seconds on a monotonic high-resolution clock; the zero point is arbitrary,
#: only differences are meaningful.
monotonic_s = time.perf_counter
