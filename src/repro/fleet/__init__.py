"""Fleet-scale multi-tenant tiering over shared capacity pools.

The paper's optimizer is deployed per storage account; the provider operates
it as a *fleet* — thousands of tenant accounts drawing from the same reserved
tier capacities.  This subpackage adds that layer on top of the single-tenant
online engine:

* :mod:`repro.fleet.tenants` — :class:`TenantSpec` (one account: partitions,
  policy, event stream, profiles, SLO constraints) and :class:`FleetConfig`;
* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler`, the epoch-locked
  control loop: one stacked, pool-arbitrated OPTASSIGN solve per epoch for
  every tenant whose policy fired, parallel settling of independent tenants;
* :mod:`repro.fleet.sharding` — :class:`ShardedFleetSolver`, the multiprocess
  map/reduce form of that stacked solve (shared-memory tensors, per-shard
  worker argmin, global pool-arbitration reduce), bit-identical to the
  in-process path and enabled via :attr:`FleetConfig.shards`;
* :mod:`repro.fleet.report` — :class:`FleetReport` /
  :class:`PoolUsageRecord`, per-tenant bills plus pool-utilization series.

The shared budgets themselves live in :class:`repro.cloud.CapacityPool` /
:class:`repro.cloud.PoolSet`; the stacking and arbitration primitives in
:class:`repro.core.optassign.StackedProblem` and
:func:`repro.core.optassign.repair_pools`.  With slack pools a fleet run is
bill-exact against independent per-tenant engine runs; under contention the
water-filling arbitration beats static per-tenant pool slices (see
``examples/fleet_tiering.py``).
"""

from .report import FleetReport, PoolUsageRecord
from .scheduler import FleetScheduler
from .sharding import ShardedFleetSolver, plan_row_shards, plan_tenant_shards
from .tenants import FleetConfig, TenantSpec

__all__ = [
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "PoolUsageRecord",
    "ShardedFleetSolver",
    "TenantSpec",
    "plan_row_shards",
    "plan_tenant_shards",
]
