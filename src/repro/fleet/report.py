"""Fleet run reports: per-tenant engine reports plus pool-utilization series.

A :class:`FleetReport` is the multi-tenant counterpart of
:class:`~repro.engine.EngineReport`: one engine report per tenant (the same
true end-to-end bills the single-tenant engine produces) plus, per epoch, a
:class:`PoolUsageRecord` snapshot of every shared capacity pool — how many GB
the fleet holds in it versus its budget, how many tenants re-optimized and
how long the stacked solve took.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EngineReport

__all__ = ["PoolUsageRecord", "FleetReport"]


@dataclass(frozen=True)
class PoolUsageRecord:
    """One epoch's shared-capacity snapshot."""

    epoch: int
    used_gb: dict[str, float]
    capacity_gb: dict[str, float]
    num_reoptimized: int
    solve_wall_clock_s: float

    def utilization(self) -> dict[str, float]:
        """Per-pool used/capacity fraction."""
        return {
            name: self.used_gb[name] / self.capacity_gb[name]
            for name in self.used_gb
        }


@dataclass
class FleetReport:
    """The outcome of one fleet run."""

    tenant_reports: dict[str, EngineReport]
    pool_usage: list[PoolUsageRecord]

    @property
    def num_tenants(self) -> int:
        return len(self.tenant_reports)

    @property
    def num_epochs(self) -> int:
        if not self.tenant_reports:
            return 0
        return max(report.num_epochs for report in self.tenant_reports.values())

    @property
    def total_bill(self) -> float:
        """Everything every tenant was billed, in cents."""
        return float(
            sum(report.total_bill for report in self.tenant_reports.values())
        )

    @property
    def total_reoptimizations(self) -> int:
        return sum(
            report.num_reoptimizations for report in self.tenant_reports.values()
        )

    @property
    def total_migration_cost(self) -> float:
        return float(
            sum(
                report.total_migration_cost
                for report in self.tenant_reports.values()
            )
        )

    def tenant_bills(self) -> dict[str, float]:
        """Total bill per tenant, in cents."""
        return {
            name: report.total_bill for name, report in self.tenant_reports.items()
        }

    def peak_pool_usage_gb(self) -> dict[str, float]:
        """Highest observed GB usage per pool across the run."""
        peaks: dict[str, float] = {}
        for record in self.pool_usage:
            for name, used in record.used_gb.items():
                peaks[name] = max(peaks.get(name, 0.0), used)
        return peaks

    def peak_pool_utilization(self) -> dict[str, float]:
        """Highest observed used/capacity fraction per pool across the run."""
        peaks: dict[str, float] = {}
        for record in self.pool_usage:
            for name, fraction in record.utilization().items():
                peaks[name] = max(peaks.get(name, 0.0), fraction)
        return peaks

    def summary(self) -> dict[str, object]:
        """Machine-readable totals (used by the benchmark harness)."""
        return {
            "tenants": self.num_tenants,
            "epochs": self.num_epochs,
            "total_bill_cents": self.total_bill,
            "reoptimizations": self.total_reoptimizations,
            "migration_cost_cents": self.total_migration_cost,
            "peak_pool_utilization": self.peak_pool_utilization(),
        }
