"""Sharded multiprocess fleet solve over shared-memory tensors.

The stacked fleet solve is separable per partition — only the shared
:class:`~repro.cloud.CapacityPool` budgets couple rows — so the map step
parallelises perfectly: split the stacked rows into shards, evaluate each
shard's (tier, scheme) argmin in a worker process, and run one global
pool-arbitration *reduce* over the composed placement.  This module is that
orchestration:

* **No cost-tensor pickling.**  The parent packs the stacked problem's
  numeric columns (partition features, codec pins, per-scheme profile
  columns, SLO caps, tier-eligibility masks) into one
  :class:`multiprocessing.shared_memory.SharedMemory` block; workers attach
  by name, build their shard's ``(n, T, K)`` cost tensors locally with the
  same :meth:`~repro.cloud.CostModel.batch_tensors` arithmetic as the
  single-process path, and write their per-row argmin results into a shared
  output block.  Only small control data (the task descriptor, the pickled
  cost model, span records) crosses the pipe.

* **Bit-exact vs the single-process oracle.**  Shards preserve global row
  order, every worker masks against the *stacked* scheme union (identical
  flattened candidate enumeration, identical argmin tie-breaks), latency
  relaxation multiplies the same float thresholds by the same factors, and
  the reduce reuses :func:`~repro.core.optassign.repair_pools`' water-filling
  on a row-order-preserving carve of the rows occupying pooled tiers — the
  only rows arbitration can ever move.  ``tests/fleet/
  test_sharded_equivalence.py`` locks assignments and bills to equality.

* **Spans survive the process hop.**  Workers trace into a private
  :class:`~repro.obs.trace.Tracer` and ship their records home; the parent
  re-bases them under the dispatch span via :meth:`Tracer.adopt`, so the
  exported tree shows ``fleet.shard.solve`` (and its tensor/argmin children)
  exactly where each shard ran.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cloud import CostBreakdown, CostModel, PartitionArrays, PoolSet
from ..core.optassign import InfeasibleError
from ..core.optassign.capacity import (
    SolveReport,
    check_fail_fast_certificates,
    repair_pools,
)
from ..core.optassign.problem import CandidateOption, OptAssignProblem
from ..core.optassign.result import Assignment
from ..obs import get_metrics, get_tracer
from ..obs.trace import SpanRecord, Tracer

__all__ = ["ShardedFleetSolver", "plan_row_shards", "plan_tenant_shards"]

#: Shared-memory block name prefix — recognisable so leak checks (and humans
#: reading /dev/shm) can attribute stray segments to this module.
_SHM_PREFIX = "reproshard"

# Output block columns, one float64 row vector per quantity (int-valued
# columns round-trip exactly through float64 for any realistic index).
(
    _OUT_TIER,
    _OUT_SCHEME,
    _OUT_OBJECTIVE,
    _OUT_STORAGE,
    _OUT_READ,
    _OUT_WRITE,
    _OUT_DECOMP,
    _OUT_LATENCY,
    _OUT_STORED,
) = range(9)
_OUT_COLS = 9

# Input block base columns (float64, shape (7, n)).
(
    _IN_SIZE,
    _IN_ACCESSES,
    _IN_THRESHOLD,
    _IN_READ_FRACTION,
    _IN_PUSHDOWN,
    _IN_TIER,
    _IN_CODEC,
) = range(7)
_IN_COLS = 7


def _attach(name: str):
    """Attach to a named block without the resource tracker adopting it.

    Python < 3.13 registers every attached block with the process-local
    resource tracker, which then "cleans up" (unlinks!) blocks the parent
    still owns when the worker exits; 3.13 grew ``track=False`` for exactly
    this.  On older versions the registration is suppressed at the source.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        # Suppress the tracker's register message for the duration of the
        # attach — unregistering after the fact double-counts when several
        # workers share one tracker process (fork) and spams KeyErrors.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class _ShardTask:
    """Everything a worker needs; small and picklable (no tensors)."""

    input_name: str
    output_name: str
    n: int
    num_schemes: int
    num_tiers: int
    has_slo: bool
    has_mask: bool
    shard: int
    start: int
    stop: int
    rows: np.ndarray | None  # explicit row indices; None = [start, stop)
    schemes: tuple[str, ...]
    cost_model: CostModel
    factor: float
    trace: bool
    fault: str | None


@dataclass
class _ShardResult:
    shard: int
    infeasible: np.ndarray | None  # global row indices, ascending
    spans: list[SpanRecord]


def _input_views(buf, n: int, k: int, t: int, has_slo: bool, has_mask: bool):
    """(base, ratio, decompression, available, slo, mask) views over ``buf``."""
    offset = 0
    base = np.frombuffer(buf, dtype=np.float64, count=_IN_COLS * n, offset=offset)
    base = base.reshape(_IN_COLS, n)
    offset += _IN_COLS * n * 8
    ratio = np.frombuffer(buf, dtype=np.float64, count=n * k, offset=offset)
    ratio = ratio.reshape(n, k)
    offset += n * k * 8
    decompression = np.frombuffer(buf, dtype=np.float64, count=n * k, offset=offset)
    decompression = decompression.reshape(n, k)
    offset += n * k * 8
    available = np.frombuffer(buf, dtype=np.uint8, count=n * k, offset=offset)
    available = available.reshape(n, k)
    offset += n * k
    slo = None
    if has_slo:
        slo = np.frombuffer(buf, dtype=np.float64, count=n, offset=offset)
        offset += n * 8
    mask = None
    if has_mask:
        mask = np.frombuffer(buf, dtype=np.uint8, count=n * t, offset=offset)
        mask = mask.reshape(n, t)
    return base, ratio, decompression, available, slo, mask


def _input_nbytes(n: int, k: int, t: int, has_slo: bool, has_mask: bool) -> int:
    total = _IN_COLS * n * 8 + 2 * n * k * 8 + n * k
    if has_slo:
        total += n * 8
    if has_mask:
        total += n * t
    return total


def _solve_shard(task: _ShardTask) -> _ShardResult:
    """Worker entry point: one shard's masked argmin over local tensors."""
    if task.fault == "raise":
        raise RuntimeError(f"injected shard fault (shard {task.shard})")
    in_shm = _attach(task.input_name)
    out_shm = _attach(task.output_name)
    try:
        return _solve_shard_views(task, in_shm.buf, out_shm.buf)
    finally:
        # All numpy views over the buffers live (and die) in the callee's
        # frame; on the error path a traceback can pin that frame, in which
        # case close() would raise BufferError — the mapping is then freed
        # with the exception object instead.
        for shm in (in_shm, out_shm):
            try:
                shm.close()
            except BufferError:
                pass


def _solve_shard_views(task: _ShardTask, in_buf, out_buf) -> _ShardResult:
    tracer = Tracer() if task.trace else None
    base, ratio, decompression, available, slo, mask = _input_views(
        in_buf, task.n, task.num_schemes, task.num_tiers, task.has_slo, task.has_mask
    )
    out = np.frombuffer(out_buf, dtype=np.float64, count=_OUT_COLS * task.n)
    out = out.reshape(_OUT_COLS, task.n)

    sel: "slice | np.ndarray" = (
        slice(task.start, task.stop) if task.rows is None else task.rows
    )
    n_rows = task.stop - task.start if task.rows is None else len(task.rows)

    root = (
        tracer.span(
            "fleet.shard.solve", shard=task.shard, rows=n_rows, factor=task.factor
        )
        if tracer is not None
        else _NULL_SPAN
    )
    with root:
        codec_idx = base[_IN_CODEC, sel].astype(np.int64)
        schemes = task.schemes
        codecs = tuple(
            None if i < 0 else schemes[i] for i in codec_idx.tolist()
        )
        thresholds = base[_IN_THRESHOLD, sel]
        if task.factor != 1.0:
            # Same float multiply OptAssignProblem.relaxed applies, so the
            # relaxed tensors match the single-process path bit for bit.
            thresholds = thresholds * task.factor
        arrays = PartitionArrays(
            names=("",) * n_rows,  # tensor arithmetic never reads names
            size_gb=base[_IN_SIZE, sel],
            predicted_accesses=base[_IN_ACCESSES, sel],
            latency_threshold_s=thresholds,
            current_tier=base[_IN_TIER, sel].astype(np.int64),
            read_fraction=base[_IN_READ_FRACTION, sel],
            pushdown_fraction=base[_IN_PUSHDOWN, sel],
            current_codec=codecs,
            file_ids=(frozenset(),) * n_rows,
        )
        tensors_cm = (
            tracer.span("fleet.shard.tensors", rows=n_rows)
            if tracer is not None
            else _NULL_SPAN
        )
        with tensors_cm:
            tensors = task.cost_model.batch_tensors(
                arrays,
                schemes,
                ratio[sel],
                decompression[sel],
                available[sel].astype(bool),
                latency_slo_s=None if slo is None else slo[sel],
                tier_allowed=None if mask is None else mask[sel].astype(bool),
            )
        argmin_cm = (
            tracer.span("fleet.shard.argmin", rows=n_rows)
            if tracer is not None
            else _NULL_SPAN
        )
        with argmin_cm:
            # Identical to the single-process masked argmin (greedy.py): C-order
            # flatten enumerates tier-major / sorted-scheme, so ties break the
            # same; masking against the *stacked* scheme union keeps the
            # column set — and therefore the flattened candidate order —
            # the same in every shard.
            flat = tensors.masked_objective().reshape(n_rows, -1)
            best = np.argmin(flat, axis=1)
            picks = np.arange(n_rows)
            best_objective = flat[picks, best]
            bad = ~np.isfinite(best_objective)
            if bad.any():
                local = np.flatnonzero(bad)
                infeasible = (
                    local + task.start if task.rows is None else task.rows[local]
                )
                return _ShardResult(
                    shard=task.shard,
                    infeasible=np.asarray(infeasible, dtype=np.int64),
                    spans=tracer.records() if tracer is not None else [],
                )
            tier_index = best // task.num_schemes
            scheme_index = best % task.num_schemes
            out[_OUT_TIER, sel] = tier_index
            out[_OUT_SCHEME, sel] = scheme_index
            out[_OUT_OBJECTIVE, sel] = best_objective
            out[_OUT_STORAGE, sel] = tensors.storage[picks, tier_index, scheme_index]
            out[_OUT_READ, sel] = tensors.read[picks, tier_index, scheme_index]
            out[_OUT_WRITE, sel] = tensors.write[picks, tier_index, scheme_index]
            out[_OUT_DECOMP, sel] = tensors.decompression[picks, scheme_index]
            out[_OUT_LATENCY, sel] = tensors.latency_s[picks, tier_index, scheme_index]
            out[_OUT_STORED, sel] = tensors.stored_gb[picks, scheme_index]
    return _ShardResult(
        shard=task.shard,
        infeasible=None,
        spans=tracer.records() if tracer is not None else [],
    )


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


# -- shard planning --------------------------------------------------------------
def plan_row_shards(total_rows: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, stop)`` row ranges (empty ranges dropped).

    Contiguity preserves global row order inside every shard, which is one of
    the two ingredients of bit-exactness (the other is the shared scheme
    union); balance is the load-balancing default when nothing is known about
    per-row cost.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    bounds = np.linspace(0, total_rows, num=min(shards, total_rows) + 1)
    bounds = np.round(bounds).astype(np.int64)
    return [
        (int(start), int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]


def plan_tenant_shards(
    tenant_spans: Sequence[tuple[int, int]], shards: int
) -> list[tuple[int, int]]:
    """Contiguous shard ranges aligned to tenant boundaries.

    Greedily packs consecutive tenants into ``shards`` groups balanced by row
    count (a tenant never straddles two shards).  The fleet scheduler feeds
    :attr:`~repro.core.optassign.StackedProblem.tenant_spans` here so each
    worker solves whole tenants — results are identical to any other plan
    (separability), this just keeps shard/tenant attribution clean.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if not tenant_spans:
        return []
    total = tenant_spans[-1][1]
    groups = min(shards, len(tenant_spans))
    plan: list[tuple[int, int]] = []
    start = tenant_spans[0][0]
    for index, (_, span_stop) in enumerate(tenant_spans):
        if len(plan) == groups - 1:
            break  # everything left belongs to the final group
        groups_left = groups - len(plan)
        tenants_left = len(tenant_spans) - index - 1
        # Close the group at this tenant boundary once it holds its even
        # share of the remaining rows — or when the remaining tenants are
        # only just enough to give every later group at least one tenant.
        if (
            span_stop - start >= (total - start) / groups_left
            or tenants_left < groups_left
        ):
            plan.append((start, span_stop))
            start = span_stop
    plan.append((start, total))
    return [(s, e) for s, e in plan if e > s]


def _normalise_plan(
    plan, total_rows: int
) -> list[tuple[int, int] | np.ndarray]:
    """Validate a shard plan: every row exactly once, order preserved inside."""
    covered = np.zeros(total_rows, dtype=bool)
    shards: list[tuple[int, int] | np.ndarray] = []
    for entry in plan:
        if isinstance(entry, tuple) and len(entry) == 2:
            start, stop = int(entry[0]), int(entry[1])
            if not (0 <= start <= stop <= total_rows):
                raise ValueError(f"shard range {entry} out of bounds")
            if covered[start:stop].any():
                raise ValueError("shard plan covers a row twice")
            covered[start:stop] = True
            if stop > start:
                shards.append((start, stop))
            continue
        rows = np.asarray(entry, dtype=np.int64)
        if rows.size == 0:
            continue
        if rows.min() < 0 or rows.max() >= total_rows:
            raise ValueError("shard row indices out of bounds")
        # Ascending order inside a shard preserves global row order — the
        # tie-break and diagnostics-order invariant.
        rows = np.sort(rows)
        if covered[rows].any():
            raise ValueError("shard plan covers a row twice")
        covered[rows] = True
        shards.append(rows)
    if not covered.all():
        missing = int(np.flatnonzero(~covered)[0])
        raise ValueError(f"shard plan misses rows (first missing: {missing})")
    return shards


class ShardedFleetSolver:
    """Multiprocess map/reduce solver for stacked (fleet) OPTASSIGN instances.

    Parameters
    ----------
    shards:
        Default shard count when no explicit plan is passed to :meth:`solve`.
    workers:
        Worker processes in the pool (default: ``min(shards, cpu_count)``).
        Any worker count produces identical results — shards are independent
        until the reduce — so this only trades wall-clock for memory.
    mp_context:
        Multiprocessing start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``); default prefers ``fork`` where available (cheap
        workers), falling back to the platform default.
    max_relaxation_rounds / relaxation_step / tolerance:
        Mirror :func:`~repro.core.optassign.solve_optassign` — the sharded
        relaxation ladder must walk the same factors as the facade's for
        bill-exactness.

    The worker pool is created lazily on first solve and persists across
    epochs (fork cost is paid once); call :meth:`close` (or use the solver as
    a context manager) to release it.  Shared-memory blocks live only within
    one :meth:`solve` call and are unlinked even when a worker fails —
    ``tests/fleet/test_sharded_invariants.py`` injects faults and checks
    ``/dev/shm``.
    """

    def __init__(
        self,
        shards: int,
        workers: int | None = None,
        mp_context: str | None = None,
        max_relaxation_rounds: int = 6,
        relaxation_step: float = 2.0,
        tolerance: float = 1e-9,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if relaxation_step <= 1.0:
            raise ValueError("relaxation_step must be greater than 1")
        self.shards = int(shards)
        self.workers = int(workers) if workers is not None else min(
            self.shards, os.cpu_count() or 1
        )
        self.max_relaxation_rounds = int(max_relaxation_rounds)
        self.relaxation_step = float(relaxation_step)
        self.tolerance = float(tolerance)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp_context = (
            multiprocessing.get_context(mp_context) if mp_context else None
        )
        self._executor: ProcessPoolExecutor | None = None
        self._sequence = 0
        #: Test hook: set to ``"raise"`` to make every worker task fail —
        #: exercises the shared-memory cleanup and pool-recovery paths.
        self._inject_fault: str | None = None

    # -- lifecycle ---------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ShardedFleetSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- the solve ---------------------------------------------------------------
    def solve(
        self,
        problem: OptAssignProblem,
        pool_set: PoolSet | None = None,
        reserved_gb: np.ndarray | None = None,
        plan: Sequence | None = None,
    ) -> SolveReport:
        """Solve one stacked instance: sharded map, pool-arbitrated reduce.

        Matches ``solve_optassign(problem, prefer="greedy", post_repair=
        repair_pools(..., pool_set, reserved_gb))`` choice for choice and
        error for error: same fail-fast certificates, same relaxation ladder,
        same water-filling arbitration (run on a row-order-preserving carve
        of the rows in pooled tiers — the only rows arbitration can move).
        ``plan`` overrides the shard layout (``(start, stop)`` tuples or
        explicit row-index arrays, each row exactly once); results are
        plan-independent.
        """
        if problem.has_finite_capacity():
            raise ValueError(
                "ShardedFleetSolver requires an uncapacitated catalog (the "
                "fleet's capacity story is shared pools); per-tier "
                "capacities would need the repair_capacity reduce"
            )
        tracer = get_tracer()
        metrics = get_metrics()
        arrays = problem.partition_arrays()
        total = len(arrays)
        shard_plan = _normalise_plan(
            plan if plan is not None else plan_row_shards(total, self.shards),
            total,
        )
        with tracer.span(
            "fleet.sharded_solve", shards=len(shard_plan), rows=total
        ) as solve_span:
            check_fail_fast_certificates(problem)
            in_shm, out_shm = self._allocate(problem, arrays)
            try:
                report = self._rounds(
                    problem,
                    arrays,
                    pool_set,
                    reserved_gb,
                    shard_plan,
                    in_shm,
                    out_shm,
                    tracer,
                    metrics,
                )
                solve_span.set(latency_relaxation=report.latency_relaxation)
                return report
            finally:
                for shm in (in_shm, out_shm):
                    try:
                        shm.close()
                    except BufferError:  # pragma: no cover - error paths only
                        pass
                    shm.unlink()

    # -- internals ---------------------------------------------------------------
    def _allocate(self, problem: OptAssignProblem, arrays: PartitionArrays):
        from multiprocessing import shared_memory

        schemes, ratio, decompression, available = problem._profile_columns()
        slo = problem._slo_vector()
        mask = problem._tier_allowed_mask()
        n = len(arrays)
        k = len(schemes)
        t = problem.tier_count
        self._sequence += 1
        stem = f"{_SHM_PREFIX}_{os.getpid()}_{self._sequence}"
        in_shm = shared_memory.SharedMemory(
            create=True,
            name=f"{stem}_in",
            size=_input_nbytes(n, k, t, slo is not None, mask is not None),
        )
        out_shm = shared_memory.SharedMemory(
            create=True, name=f"{stem}_out", size=_OUT_COLS * n * 8
        )
        self._write_inputs(problem, arrays, in_shm.buf, slo, mask)
        return in_shm, out_shm

    def _write_inputs(self, problem, arrays, buf, slo, mask) -> None:
        schemes, ratio, decompression, available = problem._profile_columns()
        n = len(arrays)
        base, ratio_v, decomp_v, avail_v, slo_v, mask_v = _input_views(
            buf, n, len(schemes), problem.tier_count, slo is not None, mask is not None
        )
        scheme_position = {scheme: k for k, scheme in enumerate(schemes)}
        base[_IN_SIZE] = arrays.size_gb
        base[_IN_ACCESSES] = arrays.predicted_accesses
        base[_IN_THRESHOLD] = arrays.latency_threshold_s
        base[_IN_READ_FRACTION] = arrays.read_fraction
        base[_IN_PUSHDOWN] = arrays.pushdown_fraction
        base[_IN_TIER] = arrays.current_tier
        base[_IN_CODEC] = np.fromiter(
            (
                -1 if codec is None else scheme_position[codec]
                for codec in arrays.current_codec
            ),
            dtype=np.float64,
            count=n,
        )
        ratio_v[:] = ratio
        decomp_v[:] = decompression
        avail_v[:] = available
        if slo_v is not None:
            slo_v[:] = slo
        if mask_v is not None:
            mask_v[:] = mask

    def _rounds(
        self,
        problem,
        arrays,
        pool_set,
        reserved_gb,
        shard_plan,
        in_shm,
        out_shm,
        tracer,
        metrics,
    ) -> SolveReport:
        from contextlib import nullcontext

        schemes = problem.scheme_union()
        slo = problem._slo_vector()
        mask = problem._tier_allowed_mask()
        n = len(arrays)
        factor = 1.0
        last_error: Exception | None = None
        for round_index in range(self.max_relaxation_rounds + 1):
            round_context = (
                tracer.span(
                    "optassign.relaxation_round", round=round_index, factor=factor
                )
                if round_index > 0
                else nullcontext()
            )
            try:
                with round_context:
                    infeasible = self._dispatch(
                        shard_plan,
                        in_shm.name,
                        out_shm.name,
                        n,
                        len(schemes),
                        problem.tier_count,
                        slo is not None,
                        mask is not None,
                        schemes,
                        problem.cost_model,
                        factor,
                        tracer,
                    )
                    if infeasible is not None:
                        names = [
                            arrays.names[i] for i in infeasible[:5].tolist()
                        ]
                        raise InfeasibleError(
                            "no feasible (tier, scheme) option exists for "
                            f"partitions: {names}"
                            f"{'...' if len(infeasible) > 5 else ''}; "
                            "relax latency thresholds, loosen SLO/affinity "
                            "constraints or add faster tiers"
                        )
                    return self._reduce(
                        problem,
                        arrays,
                        pool_set,
                        reserved_gb,
                        out_shm,
                        schemes,
                        factor,
                        tracer,
                    )
            except InfeasibleError as error:
                last_error = error
                factor *= self.relaxation_step
                metrics.counter("optassign.relaxations").add()
        raise InfeasibleError(
            f"OPTASSIGN instance remained infeasible after relaxing latency "
            f"thresholds {self.max_relaxation_rounds} times (last error: "
            f"{last_error})"
        )

    def _dispatch(
        self,
        shard_plan,
        input_name,
        output_name,
        n,
        num_schemes,
        num_tiers,
        has_slo,
        has_mask,
        schemes,
        cost_model,
        factor,
        tracer,
    ) -> np.ndarray | None:
        """Fan one round out to the workers; collect infeasible rows if any."""
        with tracer.span(
            "fleet.shard.dispatch", shards=len(shard_plan), factor=factor
        ) as dispatch_span:
            tasks = []
            for shard, entry in enumerate(shard_plan):
                if isinstance(entry, tuple):
                    start, stop = entry
                    rows = None
                else:
                    rows = entry
                    start, stop = 0, 0
                tasks.append(
                    _ShardTask(
                        input_name=input_name,
                        output_name=output_name,
                        n=n,
                        num_schemes=num_schemes,
                        num_tiers=num_tiers,
                        has_slo=has_slo,
                        has_mask=has_mask,
                        shard=shard,
                        start=start,
                        stop=stop,
                        rows=rows,
                        schemes=schemes,
                        cost_model=cost_model,
                        factor=factor,
                        trace=tracer.enabled,
                        fault=self._inject_fault,
                    )
                )
            pool = self._pool()
            try:
                futures = [pool.submit(_solve_shard, task) for task in tasks]
                results = [future.result() for future in futures]
            except BrokenProcessPool:
                # A worker died hard (OOM, signal): the pool is unusable, so
                # drop it — the next solve builds a fresh one.
                self.close()
                raise
            if tracer.enabled:
                parent = dispatch_span.span_id
                for result in results:  # shard order = deterministic ids
                    tracer.adopt(result.spans, parent_id=parent)
            infeasible = [
                result.infeasible
                for result in results
                if result.infeasible is not None
            ]
            if infeasible:
                return np.sort(np.concatenate(infeasible))
            return None

    def _reduce(
        self,
        problem,
        arrays,
        pool_set,
        reserved_gb,
        out_shm,
        schemes,
        factor,
        tracer,
    ) -> SolveReport:
        """Compose the global assignment; arbitrate pool budgets if violated."""
        out = np.frombuffer(out_shm.buf, dtype=np.float64, count=_OUT_COLS * len(arrays))
        out = out.reshape(_OUT_COLS, len(arrays))
        candidate = problem if factor == 1.0 else problem.relaxed(factor)
        with tracer.span("fleet.shard.compose", rows=len(arrays)):
            # The workers' results stay columnar: LazyChoices materializes a
            # CandidateOption only when somebody asks for that row.  At fleet
            # scale this is the difference between a solve bounded by numpy
            # and one bounded by building millions of per-row Python objects
            # most consumers (pool repair, spot checks) never read.  The
            # snapshot copy is what outlives the shared block's unlink below.
            choices = LazyChoices(arrays.names, schemes, np.array(out))
        tier_vec = out[_OUT_TIER].astype(np.int64)
        stored_vec = out[_OUT_STORED].copy()
        del out  # release the buffer view before the caller unlinks
        solver = "greedy+shards"
        assignment = Assignment(problem=candidate, choices=choices, solver=solver)
        if pool_set is not None and self._pools_violated(
            pool_set, tier_vec, stored_vec, reserved_gb
        ):
            with tracer.span("fleet.shard.reduce") as reduce_span:
                # Only rows sitting in pooled tiers can ever become
                # water-filling members (evictions move members; unpooled
                # rows never move), so arbitration over this carve is
                # bit-identical to arbitration over the full instance —
                # global row order is preserved, and each member's candidate
                # schemes are all present in the carve's (smaller) union.
                pooled = np.flatnonzero(pool_set.pool_of_tier[tier_vec] >= 0)
                carved = candidate.carve(pooled)
                sub = Assignment(
                    problem=carved,
                    choices=choices.take(pooled),
                    solver=solver,
                )
                repaired = repair_pools(
                    sub, pool_set, reserved_gb=reserved_gb, tolerance=self.tolerance
                )
                if repaired is not sub:
                    choices = choices.overlaid(repaired.choices)
                    assignment = Assignment(
                        problem=candidate,
                        choices=choices,
                        solver=repaired.solver,
                    )
                reduce_span.set(
                    pooled_rows=int(pooled.size),
                    repaired=repaired is not sub,
                )
        return SolveReport(
            assignment=assignment,
            solver="greedy+shards",
            latency_relaxation=factor,
        )

    def _pools_violated(
        self, pool_set, tier_vec, stored_vec, reserved_gb
    ) -> bool:
        """The vectorized budget precheck (mirrors ``repair_pools``' math)."""
        tier_usage = np.bincount(
            tier_vec, weights=stored_vec, minlength=len(pool_set.catalog)
        )
        budgets = pool_set.capacities
        if reserved_gb is not None:
            reserved_gb = np.asarray(reserved_gb, dtype=np.float64)
            budgets = np.maximum(budgets - reserved_gb, 0.0)
        return bool((pool_set.usage(tier_usage) > budgets + self.tolerance).any())


def _materialize_option(
    name: str, schemes: tuple[str, ...], out: np.ndarray, row: int
) -> CandidateOption:
    """Assemble one choice from the workers' numeric results.

    Identical object assembly to the single-process ``_vectorized_choices``
    (same ``__dict__`` construction, same feasibility flags — a chosen cell
    is feasible by construction), just fed from the columnar output block
    instead of in-process gathers.
    """
    breakdown = CostBreakdown.__new__(CostBreakdown)
    breakdown.__dict__ = {
        "storage": float(out[_OUT_STORAGE, row]),
        "read": float(out[_OUT_READ, row]),
        "write": float(out[_OUT_WRITE, row]),
        "decompression": float(out[_OUT_DECOMP, row]),
    }
    option = CandidateOption.__new__(CandidateOption)
    object.__setattr__(
        option,
        "__dict__",
        {
            "partition": name,
            "tier_index": int(out[_OUT_TIER, row]),
            "scheme": schemes[int(out[_OUT_SCHEME, row])],
            "objective": float(out[_OUT_OBJECTIVE, row]),
            "breakdown": breakdown,
            "latency_s": float(out[_OUT_LATENCY, row]),
            "latency_feasible": True,
            "codec_allowed": True,
            "slo_feasible": True,
            "provider_allowed": True,
        },
    )
    return option


class LazyChoices(Mapping):
    """A choice map that materializes ``CandidateOption``s on demand.

    The sharded solve's results come back columnar (one float64 row per
    output field).  Building a Python object per partition eagerly is the
    single most expensive step of a fleet-scale solve — it costs more than
    all the shard workers' numeric work combined, and it is pure overhead
    for consumers that only touch a few rows (pool arbitration reads only
    pooled rows; bill accounting reads per-tenant slices at apply time).
    This Mapping keeps the columns and builds an option the first time its
    partition is looked up, caching it so repeated reads stay cheap and
    object-identical.

    Materialized options are bit-identical to the eager path: same field
    values, same construction, same iteration order (the stacked problem's
    global row order).  ``overlaid`` layers repaired options on top without
    copying the columns, which is how pool arbitration's rewrites win over
    the workers' unconstrained argmin rows.
    """

    __slots__ = ("_names", "_schemes", "_data", "_index", "_cache")

    def __init__(
        self,
        names: Sequence[str],
        schemes: tuple[str, ...],
        data: np.ndarray,
        cache: dict[str, CandidateOption] | None = None,
    ):
        self._names = tuple(names)
        self._schemes = schemes
        self._data = data
        self._index: dict[str, int] | None = None
        self._cache: dict[str, CandidateOption] = dict(cache) if cache else {}

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self):
        return iter(self._names)

    def __contains__(self, name) -> bool:
        return name in self._cache or name in self._row_index()

    def _row_index(self) -> dict[str, int]:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self._index

    def __getitem__(self, name: str) -> CandidateOption:
        option = self._cache.get(name)
        if option is None:
            row = self._row_index()[name]
            option = _materialize_option(name, self._schemes, self._data, row)
            self._cache[name] = option
        return option

    def take(self, rows: np.ndarray) -> dict[str, CandidateOption]:
        """Eagerly materialize the options at the given global row indices."""
        names = self._names
        return {names[row]: self[names[row]] for row in rows.tolist()}

    def overlaid(self, options: Mapping) -> "LazyChoices":
        """A new map where ``options`` shadow the lazy columnar rows."""
        merged = dict(self._cache)
        merged.update(options)
        clone = LazyChoices(self._names, self._schemes, self._data, cache=merged)
        clone._index = self._index
        return clone
