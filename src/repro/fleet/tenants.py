"""Tenant specifications: everything the fleet scheduler needs per account.

A :class:`TenantSpec` bundles one tenant's placement units, re-optimization
policy, event source and optional compression profiles / SLO constraints —
the exact constructor surface of
:class:`~repro.engine.OnlineTieringEngine`, minus the tier catalog, which the
fleet owns (every tenant prices against the *same* shared catalog; that is
what makes stacked solves and shared capacity pools meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..cloud import DataPartition
from ..core.optassign import ProfileTable, TENANT_SEPARATOR
from ..engine import EngineConfig, EpochBatch, SeriesStream, TieringPolicy

__all__ = ["TenantSpec", "FleetConfig"]


@dataclass
class TenantSpec:
    """One tenant account of the fleet.

    Parameters
    ----------
    name:
        Unique tenant identifier; may not contain ``"::"`` (the stacked
        problem's tenant tag separator).
    partitions:
        The tenant's placement units (see
        :class:`~repro.engine.OnlineTieringEngine`).
    policy:
        The tenant's re-optimization policy.  Policies are stateful, so every
        spec needs its own instance (never share one across tenants).
    series:
        Per-partition monthly read series (the
        :func:`repro.workloads.generate_drifting_reads` output shape), turned
        into a :class:`~repro.engine.SeriesStream` by the scheduler.  Exactly
        one of ``series`` / ``stream`` must be given.
    stream:
        An explicit epoch-batch iterable instead of ``series``.
    profiles, config, latency_slo_s, provider_affinity:
        Forwarded to the tenant's engine; ``config`` falls back to the
        fleet's shared :attr:`FleetConfig.engine` when ``None``.
    """

    name: str
    partitions: Sequence[DataPartition]
    policy: TieringPolicy
    series: Mapping[str, Sequence[float]] | None = None
    stream: Iterable[EpochBatch] | None = None
    profiles: ProfileTable | None = None
    config: EngineConfig | None = None
    latency_slo_s: Mapping[str, float] | None = None
    provider_affinity: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if TENANT_SEPARATOR in self.name:
            raise ValueError(
                f"tenant name may not contain {TENANT_SEPARATOR!r}: {self.name!r}"
            )
        if (self.series is None) == (self.stream is None):
            raise ValueError(
                f"tenant {self.name!r} must provide exactly one of "
                "series= or stream="
            )

    def make_stream(self, num_epochs: int | None = None) -> Iterable[EpochBatch]:
        """The tenant's epoch-batch source."""
        if self.stream is not None:
            return self.stream
        return SeriesStream(self.series, num_epochs=num_epochs)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the fleet control loop.

    ``engine`` is the shared :class:`~repro.engine.EngineConfig` for tenants
    whose spec carries none.  ``max_workers`` sizes the
    :mod:`concurrent.futures` thread pool that builds problems and settles
    independent tenants in parallel (``None`` or ``1`` = serial); tenants
    share no mutable state outside the stacked solve, so any worker count
    produces identical results.

    ``shards`` switches the stacked solve itself to the multiprocess
    :class:`~repro.fleet.sharding.ShardedFleetSolver` with that many shards
    (``None`` = the in-process single-solve path, bit-identical results
    either way — the equivalence tests enforce it).  ``shard_workers`` caps
    the sharded solver's worker processes (``None`` = one per shard, up to
    the machine's cores); like ``max_workers`` it only trades wall-clock.
    """

    engine: EngineConfig = field(default_factory=EngineConfig)
    max_workers: int | None = None
    shards: int | None = None
    shard_workers: int | None = None

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_workers is not None:
            if self.shards is None:
                raise ValueError("shard_workers requires shards")
            if self.shard_workers < 1:
                raise ValueError("shard_workers must be at least 1")
