"""The fleet scheduler: N tenants, one catalog, shared capacity pools.

:class:`FleetScheduler` drives one :class:`~repro.engine.OnlineTieringEngine`
per tenant epoch-locked over the same monthly timeline.  Per epoch it

1. asks every tenant's policy whether to re-optimize
   (:meth:`~repro.engine.OnlineTieringEngine.begin_epoch`);
2. builds the firing tenants' warm-started OPTASSIGN instances, stacks them
   into one tenant-tagged problem
   (:class:`~repro.core.optassign.StackedProblem`) and performs a *single*
   vectorized solve;
3. arbitrates the shared :class:`~repro.cloud.PoolSet` budgets with
   :func:`~repro.core.optassign.repair_pools` — greedy regret-per-GB
   water-filling across every competing tenant, with the standing placements
   of non-firing tenants subtracted from each pool's budget first — then
   splits the placements back and lets each tenant's executor apply and bill
   its own moves;
4. settles every tenant (simulator step, feature store, forecaster) through a
   :mod:`concurrent.futures` thread pool, since settled tenants share no
   mutable state.

With slack pools the arbitration is a no-op and every partition keeps its
individually-cheapest option, so a fleet run is **bill-exact** against N
independent single-tenant engine runs — the scalar per-tenant path stays the
oracle (``tests/fleet/test_fleet_invariants.py``).  Under contention the
shared budget is water-filled across tenants by regret per GB, which strictly
beats carving the pool into static per-tenant slices (see
``examples/fleet_tiering.py``).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import replace
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

import numpy as np
from concurrent.futures import ThreadPoolExecutor

from ..cloud import PoolSet, TierCatalog, TimedEvent
from ..obs import get_metrics, get_tracer
from ..obs.clock import monotonic_s
from ..core.optassign import (
    TENANT_SEPARATOR,
    DeltaSolver,
    InfeasibleError,
    StackedProblem,
    repair_pools,
    solve_optassign,
)
from ..engine import (
    EngineReport,
    EpochBatch,
    OnlineTieringEngine,
    StreamWindow,
    TriggerWindow,
    windowed,
)
from .report import FleetReport, PoolUsageRecord
from .sharding import ShardedFleetSolver, plan_tenant_shards
from .tenants import FleetConfig, TenantSpec

__all__ = ["FleetScheduler"]

_T = TypeVar("_T")


class FleetScheduler:
    """Epoch-locked multi-tenant tiering over shared capacity pools.

    Parameters
    ----------
    tenants:
        The tenant specs.  Names must be unique; policies must not be shared
        between specs (they are stateful).
    tiers:
        The fleet's shared tier catalog.  Its per-tier capacities must be
        unbounded: shared pools *are* the fleet's capacity story — a finite
        ``capacity_gb`` would be enforced across all tenants combined by the
        stacked solve, silently diverging from per-tenant engine semantics.
    pools:
        Optional shared GB budgets spanning tenants, resolved against
        ``tiers``.
    config:
        Fleet knobs; its ``engine`` config is the default for specs without
        their own.  All tenants must price placements identically (same
        horizon, objective weights and compute price) so their problems can
        be stacked into one solve.
    chaos:
        Optional :class:`~repro.chaos.ChaosInjector` applying a
        :class:`~repro.chaos.DisruptionSchedule` at epoch boundaries —
        provider outages (with forced evacuation), price shocks, pool shocks
        and tenant churn.  Without one every chaos code path is inert and
        fleet bills are bit-identical to the pre-chaos code.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        tiers: TierCatalog,
        pools: PoolSet | None = None,
        config: FleetConfig | None = None,
        chaos: object | None = None,
    ):
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        policies = {id(spec.policy) for spec in tenants}
        if len(policies) != len(tenants):
            raise ValueError(
                "tenant specs share a policy instance; policies are stateful "
                "and every tenant needs its own"
            )
        # The fleet's capacity story is shared pools: a per-tier capacity_gb
        # in the catalog would be enforced by the *stacked* solve across all
        # tenants combined — silently different semantics from N independent
        # engine runs, where each account gets the full tier to itself.
        bounded = [tier.name for tier in tiers if tier.capacity_gb != math.inf]
        if bounded:
            raise ValueError(
                "the fleet catalog must be uncapacitated (tier capacities "
                f"{bounded} would be enforced fleet-wide, not per tenant); "
                "model shared budgets as CapacityPools instead"
            )
        if pools is not None and pools.catalog is not tiers:
            raise ValueError(
                "pools were resolved against a different catalog object "
                "than the fleet's tiers"
            )
        self.config = config or FleetConfig()
        self.tenants: tuple[TenantSpec, ...] = tuple(tenants)
        self.tiers = tiers
        self.pools = pools
        self.chaos = chaos

        first = self.tenants[0]
        self._pricing_reference: tuple[str, tuple] = (
            first.name,
            self._pricing_of(first),
        )
        for spec in self.tenants[1:]:
            self._check_pricing(spec)

        self.engines: dict[str, OnlineTieringEngine] = {
            spec.name: self._make_engine(spec) for spec in self.tenants
        }
        self._records: dict[str, list] = {spec.name: [] for spec in self.tenants}
        # Policy names survive tenant departure so report() can still cover
        # the epochs a since-departed tenant was billed for.
        self._policy_names: dict[str, str] = {
            spec.name: spec.policy.name for spec in self.tenants
        }
        # Streams for tenants joined mid-run (chaos TenantJoin): step_epoch
        # pulls their batches itself since run()'s iterators predate them.
        self._chaos_streams: dict[str, object] = {}
        self._pool_records: list[PoolUsageRecord] = []
        # Incremental fleet solves: one DeltaSolver across epochs, keyed by
        # tenant-tagged names so the varying firing subsets merge into a
        # single fleet-wide cache.  Governed by the *shared* engine config —
        # there is only one stacked solve to be incremental about, so
        # per-spec ``reopt_mode`` overrides are not consulted here.
        # The sharded multiprocess solver, when configured; its worker pool
        # persists across epochs (fork once, solve many) and is released by
        # close() / the context-manager exit.
        self._sharded: ShardedFleetSolver | None = (
            ShardedFleetSolver(
                shards=self.config.shards, workers=self.config.shard_workers
            )
            if self.config.shards is not None
            else None
        )
        shared_mode = self.config.engine.reopt_mode
        self._delta: DeltaSolver | None = (
            DeltaSolver(
                drift_threshold=self.config.engine.delta_drift_threshold,
                # Bootstrap/fallback full solves inside the delta solver fan
                # out across the same worker pool as full epochs.
                full_solver=(
                    None
                    if self._sharded is None
                    else lambda problem, pool_set, reserved: self._sharded.solve(
                        problem, pool_set=pool_set, reserved_gb=reserved
                    )
                ),
            )
            if shared_mode == "delta"
            else None
        )
        self.last_delta_report = None
        self.last_solve_report = None

    # -- helpers ---------------------------------------------------------------
    def _pricing_of(self, spec: TenantSpec) -> tuple:
        engine_config = spec.config or self.config.engine
        return (
            engine_config.horizon_months,
            engine_config.compute_cost_per_s,
            engine_config.weights,
        )

    def _check_pricing(self, spec: TenantSpec) -> None:
        first_name, reference = self._pricing_reference
        if self._pricing_of(spec) != reference:
            raise ValueError(
                f"tenants {first_name!r} and {spec.name!r} price placements "
                "differently (horizon, compute price or weights); stacked "
                "fleet solves require identical pricing"
            )

    def _make_engine(self, spec: TenantSpec) -> OnlineTieringEngine:
        return OnlineTieringEngine(
            spec.partitions,
            self.tiers,
            spec.policy,
            config=spec.config or self.config.engine,
            profiles=spec.profiles,
            latency_slo_s=spec.latency_slo_s,
            provider_affinity=spec.provider_affinity,
        )

    # -- tenant churn ----------------------------------------------------------
    def add_tenant(self, spec: TenantSpec, stream=None) -> OnlineTieringEngine:
        """Admit a tenant mid-run (chaos ``TenantJoin`` or manual onboarding).

        The spec is validated exactly as at construction (unique never-used
        name, unshared policy, fleet-identical pricing).  ``stream`` supplies
        the tenant's epoch batches when the fleet is driven through
        :meth:`run` — its batches must continue the fleet's current epoch
        numbering; callers driving :meth:`step_epoch` directly may instead
        include the tenant in their own ``batches`` mapping.
        """
        if spec.name in self._records:
            raise ValueError(
                f"tenant name {spec.name!r} is (or was) already in the fleet"
            )
        if any(spec.policy is existing.policy for existing in self.tenants):
            raise ValueError(
                f"tenant {spec.name!r} shares a policy instance with an "
                "existing tenant; policies are stateful"
            )
        self._check_pricing(spec)
        engine = self._make_engine(spec)
        self.tenants = self.tenants + (spec,)
        self.engines[spec.name] = engine
        self._records[spec.name] = []
        self._policy_names[spec.name] = spec.policy.name
        if stream is not None:
            self._chaos_streams[spec.name] = iter(stream)
        return engine

    def remove_tenant(self, name: str) -> None:
        """Retire a tenant mid-run (chaos ``TenantLeave``).

        The engine is dropped, which releases its pool reservations on the
        spot: shared-budget accounting (:meth:`_fleet_tier_usage`) always
        iterates the live engines.  Billed history stays in the fleet report,
        and the fleet delta cache forgets the tenant's rows so a later solve
        never pins against departed state.
        """
        if name not in self.engines:
            raise KeyError(f"unknown tenant {name!r}")
        engine = self.engines.pop(name)
        self.tenants = tuple(spec for spec in self.tenants if spec.name != name)
        self._chaos_streams.pop(name, None)
        if self._delta is not None:
            prefix = f"{name}{TENANT_SEPARATOR}"
            self._delta.forget(
                {f"{prefix}{partition.name}" for partition in engine._partitions}
            )

    def _map(self, function: Callable[[str], _T], names: Sequence[str]) -> list[_T]:
        """Apply ``function`` per tenant, threaded when configured.

        Tenant engines share no mutable state with each other, so the results
        are identical for any worker count; the pool only buys wall-clock.
        """
        workers = self.config.max_workers
        if workers is None or workers <= 1 or len(names) <= 1:
            return [function(name) for name in names]
        with ThreadPoolExecutor(max_workers=min(workers, len(names))) as pool:
            return list(pool.map(function, names))

    def _fleet_tier_usage(self, names: Sequence[str]) -> np.ndarray:
        """Summed stored GB per tier across the named tenants' placements."""
        usage = np.zeros(len(self.tiers), dtype=np.float64)
        for name in names:
            usage += self.engines[name].tier_usage_gb()
        return usage

    def _solve_arbitrated(self, stacked: StackedProblem, reserved_gb):
        """One stacked solve with pool arbitration inside the facade's loop.

        Pool arbitration rides ``solve_optassign``'s own latency-relaxation
        loop via its ``post_repair`` hook: an unfixable pool relaxes latency
        exactly as tier-capacity infeasibility does (the paper's
        prescription), while the facade's up-front fail-fast certificates
        (hard SLO/affinity masks latency relaxation can never fix) still run
        once and surface their pointed diagnostics immediately.

        With ``config.shards`` set the same solve (same certificates, same
        relaxation ladder, same arbitration — bit-identical by the
        equivalence tests) runs on the multiprocess sharded solver instead,
        with shards aligned to tenant boundaries.
        """
        if self._sharded is not None:
            report = self._sharded.solve(
                stacked.problem,
                pool_set=self.pools,
                reserved_gb=reserved_gb,
                plan=plan_tenant_shards(
                    stacked.tenant_spans, self._sharded.shards
                ),
            )
        else:
            post_repair = None
            if self.pools is not None:
                post_repair = lambda assignment: repair_pools(  # noqa: E731
                    assignment, self.pools, reserved_gb=reserved_gb
                )
            report = solve_optassign(
                stacked.problem, prefer="greedy", post_repair=post_repair
            )
        # Kept for the chaos injector's DegradationReport: how far the
        # facade's relaxation ladder had to widen the latency SLAs.
        self.last_solve_report = report
        return report.assignment

    def solve_unpooled(self, problem):
        """A stacked solve with pool budgets suspended (degradation rung 1).

        The chaos injector's fleet-degradation ladder retries a failed epoch
        solve without the shared pools; routing the retry through here keeps
        it on the sharded solver when one is configured, so degraded epochs
        stay bill-identical to the single-process path too.  Returns the
        :class:`~repro.core.optassign.SolveReport`.
        """
        if self._sharded is not None:
            return self._sharded.solve(problem)
        return solve_optassign(problem, prefer="greedy")

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release the sharded solver's worker processes (idempotent)."""
        if self._sharded is not None:
            self._sharded.close()

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _solve_delta(self, stacked: StackedProblem, firing, reserved_gb):
        """One incremental stacked solve: only drifted rows re-optimize.

        The firing tenants' policies contribute per-partition drift hints
        (tenant-tagged to match the stacked name space); the delta solver's
        own feature detector widens the set with structural changes it spots
        itself.  Pool budgets are checked against the composed placement and
        repaired only on violation — bootstrap epochs and unfixable
        violations fall back to the full arbitrated solve inside the solver.
        """
        threshold = self.config.engine.delta_drift_threshold
        changed: set[str] = set()
        for name in firing:
            hint = self.engines[name].policy.drifted_partitions(threshold)
            if hint:
                changed.update(
                    f"{name}{TENANT_SEPARATOR}{partition}" for partition in hint
                )
        if changed:
            changed &= set(stacked.problem.partition_names)
        report = self._delta.solve(
            stacked.problem,
            changed=changed or None,
            pool_set=self.pools,
            reserved_gb=reserved_gb,
        )
        self.last_delta_report = report
        return report.assignment

    def _last_relaxation(self) -> float:
        """Latency-relaxation factor of the epoch's stacked solve (1.0 = none)."""
        if self._delta is not None:
            report = self.last_delta_report
            full = report.full_report if report is not None else None
            return full.latency_relaxation if full is not None else 1.0
        report = self.last_solve_report
        return report.latency_relaxation if report is not None else 1.0

    def _reoptimize(
        self,
        epoch: int,
        firing: Sequence[str],
        order: Sequence[str],
        tracer,
        epoch_span_id,
    ) -> dict[str, object]:
        """Build → stack → solve → apply for the firing tenants.

        The shared middle of both timelines (dense :meth:`step_epoch` and
        windowed :meth:`step_window`): identical stacking, pool arbitration,
        delta/sharded routing and chaos degradation either way.  ``epoch`` is
        the dense month or the window ordinal — the engines' hooks take
        whichever their timeline uses.  Returns the per-tenant migration
        reports of an applied solve (empty when placements froze).
        """
        migrations: dict[str, object] = {}

        def build(name: str):
            with tracer.span(
                "fleet.build_problem", parent_id=epoch_span_id, tenant=name
            ):
                return self.engines[name].build_problem(epoch)

        problems = dict(zip(firing, self._map(build, firing)))
        with tracer.span("fleet.stack", tenants=len(firing)):
            stacked = StackedProblem.stack(problems)
        reserved = None
        if self.pools is not None:
            firing_set = set(firing)
            standing = [name for name in order if name not in firing_set]
            reserved = self.pools.usage(self._fleet_tier_usage(standing))
        with tracer.span("fleet.solve", tenants=len(firing)):
            try:
                if self._delta is not None:
                    assignment = self._solve_delta(stacked, firing, reserved)
                else:
                    assignment = self._solve_arbitrated(stacked, reserved)
            except InfeasibleError as error:
                # Chaos runs degrade instead of crashing: retry with
                # pool budgets suspended, then freeze the standing
                # placements — either way a structured
                # DegradationReport records what gave.  Calm runs
                # keep their loud fail-fast certificates.
                if self.chaos is None:
                    raise
                assignment = self.chaos.degrade_fleet_solve(
                    self, stacked, reserved, error
                )
        if assignment is not None:
            placements = stacked.split_placements(assignment)
            for name in firing:
                with tracer.span("fleet.apply", tenant=name):
                    migrations[name] = self.engines[name].apply_assignment(
                        epoch, placements[name]
                    )
            if self.chaos is not None:
                for name in firing:
                    self.chaos.note_migration(
                        epoch,
                        migrations[name],
                        self.engines[name].banned_tiers,
                        tenant=name,
                    )
                self.chaos.note_relaxation(epoch, self._last_relaxation())
        # else: frozen placements — nothing applied, the firing engines'
        # pending forecasts are dropped by settle.
        return migrations

    # -- one epoch -------------------------------------------------------------
    def step_epoch(self, batches: Mapping[str, EpochBatch]) -> None:
        """Advance every tenant one epoch (all batches must share the epoch)."""
        if not batches:
            raise ValueError("at least one tenant batch is required")
        epochs = {batch.epoch for batch in batches.values()}
        if len(epochs) != 1:
            raise ValueError(
                f"fleet epochs are locked: got mixed epochs {sorted(epochs)}"
            )
        epoch = epochs.pop()
        if self.chaos is not None:
            # Disruptions land at the epoch boundary, before any policy
            # decision or billing: churn changes the roster below, outages
            # mask tiers and mark evacuating tenants for forced firing.
            self.chaos.before_fleet_epoch(self, epoch)
        order = [spec.name for spec in self.tenants]
        batches = dict(batches)
        # Tenants joined mid-run feed from their own chaos streams; tenants
        # that departed may still appear in the caller's mapping (run()'s
        # original iterators keep yielding) and are simply ignored.
        for name, iterator in list(self._chaos_streams.items()):
            if name not in batches:
                batch = next(iterator, None)
                batches[name] = (
                    batch if batch is not None else EpochBatch(epoch=epoch, events=())
                )
        missing = [name for name in order if name not in batches]
        if missing:
            raise KeyError(f"batches missing tenants: {missing}")

        tracer = get_tracer()
        with tracer.span("fleet.epoch", epoch=epoch) as epoch_span:
            # Per-tenant work below may run on thread-pool workers, whose
            # span stacks start empty — pin their parentage explicitly so the
            # epoch's span tree survives the thread hop.
            epoch_span_id = tracer.current_span_id

            firing = [
                name for name in order if self.engines[name].begin_epoch(epoch)
            ]
            if self.chaos is not None:
                # Tenants with residents on a just-dead provider's tiers must
                # re-solve this epoch regardless of what their policy said:
                # forced evacuation cannot wait for drift.
                forced = self.chaos.take_forced_tenants() & set(order)
                if forced - set(firing):
                    firing_set = set(firing) | forced
                    firing = [name for name in order if name in firing_set]
            solve_started = monotonic_s()
            migrations: dict[str, object] = {}
            if firing:
                migrations = self._reoptimize(
                    epoch, firing, order, tracer, epoch_span_id
                )
            solve_seconds = monotonic_s() - solve_started

            def settle(name: str):
                started = monotonic_s()
                with tracer.span(
                    "fleet.settle", parent_id=epoch_span_id, tenant=name
                ):
                    return self.engines[name].settle(
                        batches[name],
                        migration=migrations.get(name),
                        reoptimized=name in migrations,
                        started=started,
                    )

            for name, record in zip(order, self._map(settle, order)):
                self._records[name].append(record)

            self._note_pool_usage(
                epoch, order, len(firing), solve_seconds, tracer, epoch_span
            )

    def _note_pool_usage(
        self, epoch, order, num_fired, solve_seconds, tracer, epoch_span
    ) -> None:
        """Record the epoch's stacked-solve + pool telemetry (both timelines).

        The per-epoch record always carries the stacked-solve telemetry
        (solve wall clock is invisible to per-tenant settle timings); the
        pool columns are empty for a pool-less fleet.
        """
        used = (
            self.pools.usage_by_name(self._fleet_tier_usage(order))
            if self.pools is not None
            else {}
        )
        capacity = (
            {pool.name: pool.capacity_gb for pool in self.pools}
            if self.pools is not None
            else {}
        )
        if tracer.enabled:
            epoch_span.set(num_reoptimized=num_fired)
            metrics = get_metrics()
            for pool_name, used_gb in used.items():
                metrics.gauge("fleet.pool.used_gb", pool=pool_name).set(
                    used_gb
                )
                budget = capacity[pool_name]
                if math.isfinite(budget) and budget > 0:
                    metrics.gauge(
                        "fleet.pool.utilization", pool=pool_name
                    ).set(used_gb / budget)
        self._pool_records.append(
            PoolUsageRecord(
                epoch=epoch,
                used_gb=used,
                capacity_gb=capacity,
                num_reoptimized=num_fired,
                solve_wall_clock_s=solve_seconds,
            )
        )

    # -- one epoch-free window ---------------------------------------------------
    def step_window(self, windows: Mapping[str, StreamWindow]) -> None:
        """Advance every tenant one trigger window (window-locked fleet).

        The epoch-free twin of :meth:`step_epoch`: all provided windows must
        share the same ``(index, start, end)`` span — the fleet closes its
        windows on one shared trigger over the *merged* tenant stream (see
        :meth:`run_streams`), so tenants stay lock-stepped exactly as on the
        monthly grid.  Live tenants missing from ``windows`` (e.g. just
        admitted by a chaos ``TenantJoin``, whose dense spec streams have no
        place on the windowed timeline) settle an empty window: storage
        accrues, no reads.

        A window closed by a drift trigger (``cause == "drift"``) forces
        every tenant to re-optimize: the shared trigger detected fleet-level
        drift, and the stacked solve re-arbitrates the pools for everyone.
        """
        if not windows:
            raise ValueError("at least one tenant window is required")
        spans = {
            (window.index, window.start_month, window.end_month)
            for window in windows.values()
        }
        if len(spans) != 1:
            raise ValueError(
                f"fleet windows are locked: got mixed spans {sorted(spans)}"
            )
        index, start, end = spans.pop()
        cause = next(iter(windows.values())).cause
        if self.chaos is not None:
            # Disruptions whose month marks fall inside this window land at
            # its boundary, before any policy decision or billing.
            self.chaos.before_fleet_window(self, index, start, end)
        order = [spec.name for spec in self.tenants]
        windows = dict(windows)
        for name in order:
            if name not in windows:
                windows[name] = StreamWindow(
                    index=index,
                    start_month=start,
                    end_month=end,
                    events=(),
                    cause=cause,
                )

        tracer = get_tracer()
        with tracer.span(
            "fleet.window", index=index, cause=cause
        ) as epoch_span:
            epoch_span_id = tracer.current_span_id
            force_all = cause == "drift"
            firing = [
                name
                for name in order
                # begin_window runs for every tenant (timeline validation +
                # policy bookkeeping) even when a drift close forces firing.
                if self.engines[name].begin_window(index) or force_all
            ]
            if self.chaos is not None:
                forced = self.chaos.take_forced_tenants() & set(order)
                if forced - set(firing):
                    firing_set = set(firing) | forced
                    firing = [name for name in order if name in firing_set]
            solve_started = monotonic_s()
            migrations: dict[str, object] = {}
            if firing:
                migrations = self._reoptimize(
                    index, firing, order, tracer, epoch_span_id
                )
            solve_seconds = monotonic_s() - solve_started

            def settle(name: str):
                started = monotonic_s()
                with tracer.span(
                    "fleet.settle", parent_id=epoch_span_id, tenant=name
                ):
                    return self.engines[name].settle_window(
                        windows[name],
                        migration=migrations.get(name),
                        reoptimized=name in migrations,
                        started=started,
                    )

            for name, record in zip(order, self._map(settle, order)):
                self._records[name].append(record)

            self._note_pool_usage(
                index, order, len(firing), solve_seconds, tracer, epoch_span
            )

    def run_streams(
        self,
        streams: Mapping[str, Iterable[TimedEvent]],
        trigger: TriggerWindow,
        *,
        start_month: float = 0.0,
        horizon_months: float | None = None,
    ) -> FleetReport:
        """Drive the fleet over continuous per-tenant event streams.

        ``streams`` maps every current tenant to a time-ordered iterable of
        :class:`repro.cloud.TimedEvent` (e.g. per-tenant
        :class:`~repro.workloads.PoissonZipfStream`\\ s with
        :func:`~repro.workloads.tenant_rate_skew` rates).  The streams are
        merged into one fleet-wide time-ordered stream (each event tagged
        with its tenant), cut by the *shared* ``trigger``, and every closed
        window is split back into per-tenant windows for
        :meth:`step_window` — so a count trigger counts fleet-wide events
        and a time trigger keeps the familiar lock-step grid.  Memory stays
        O(open window), never O(stream).

        A :class:`~repro.engine.DriftTrigger` used here needs an explicit
        ``baseline_provider``: the merged stream spans tenants, and which
        tenant's forecast to drift against is not the scheduler's call.
        """
        missing = [spec.name for spec in self.tenants if spec.name not in streams]
        if missing:
            raise ValueError(f"streams missing tenants: {missing}")

        def tagged(name: str, stream: Iterable[TimedEvent]):
            for event in stream:
                yield event if event.tenant == name else replace(event, tenant=name)

        merged = heapq.merge(
            *(tagged(name, streams[name]) for name in streams),
            key=lambda event: event.t,
        )
        for window in windowed(
            merged, trigger, start_month=start_month, horizon_months=horizon_months
        ):
            per_tenant: dict[str, list[TimedEvent]] = {}
            for event in window.events:
                per_tenant.setdefault(event.tenant, []).append(event)
            self.step_window(
                {
                    name: StreamWindow(
                        index=window.index,
                        start_month=window.start_month,
                        end_month=window.end_month,
                        events=tuple(per_tenant.get(name, ())),
                        cause=window.cause,
                    )
                    # Live roster at window close: join/leave may have changed
                    # it mid-run, and step_window fills any later joiners.
                    for name in (spec.name for spec in self.tenants)
                }
            )
        return self.report()

    # -- the run loop ------------------------------------------------------------
    def run(self, num_epochs: int | None = None) -> FleetReport:
        """Drive every tenant's stream to exhaustion, epoch-locked.

        All tenant streams must cover the same epochs (quiet months are empty
        batches, exactly as for the single-tenant engine); ``num_epochs``
        caps or extends series-backed streams.  Returns the accumulated
        report.  ``run`` may be called again only when every tenant was given
        an explicit ``stream=`` whose later batches continue the timeline —
        series-backed tenants rebuild their stream from epoch 0 on each call,
        which the engines reject (alternatively, drive continuing epochs
        through :meth:`step_epoch` directly).
        """
        iterators = {
            spec.name: iter(spec.make_stream(num_epochs)) for spec in self.tenants
        }
        while True:
            batches: dict[str, EpochBatch] = {}
            exhausted: list[str] = []
            for name, iterator in iterators.items():
                batch = next(iterator, None)
                if batch is None:
                    exhausted.append(name)
                else:
                    batches[name] = batch
            if len(exhausted) == len(iterators):
                break
            if exhausted:
                raise ValueError(
                    "fleet tenant streams must cover the same epochs, but "
                    f"{exhausted} ended before {sorted(batches)}"
                )
            self.step_epoch(batches)
        return self.report()

    def report(self) -> FleetReport:
        """The fleet report over everything consumed so far.

        Covers departed tenants too: their billed epochs (and policy names)
        are retained when :meth:`remove_tenant` drops the live engine.
        """
        return FleetReport(
            tenant_reports={
                name: EngineReport(
                    policy=self._policy_names[name],
                    records=list(records),
                )
                for name, records in self._records.items()
            },
            pool_usage=list(self._pool_records),
        )
