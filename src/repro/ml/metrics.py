"""Regression and classification metrics used throughout the paper's tables.

The compression-prediction tables report MAE, MAPE and R²; the tier-prediction
experiment reports a confusion matrix and an F1 score above 0.96.  All metrics
accept array-likes and return plain floats (or an ndarray for the confusion
matrix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "regression_report",
]


def _as_1d(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        array = array.reshape(-1)
    return array


def _check_lengths(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"y_true and y_pred have different lengths: {len(y_true)} vs {len(y_pred)}"
        )
    if len(y_true) == 0:
        raise ValueError("metrics are undefined for empty inputs")


def mean_absolute_error(y_true, y_pred) -> float:
    """MAE: mean of |y_true - y_pred|."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true, y_pred, epsilon: float = 1e-12) -> float:
    """MAPE in percent: 100 * mean(|y_true - y_pred| / |y_true|).

    Targets with magnitude below ``epsilon`` are clamped to ``epsilon`` to
    avoid division by zero (compression ratios and decompression speeds are
    strictly positive in practice).
    """
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    denominator = np.maximum(np.abs(y_true), epsilon)
    return float(100.0 * np.mean(np.abs(y_true - y_pred) / denominator))


def mean_squared_error(y_true, y_pred) -> float:
    """MSE: mean of squared errors."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """RMSE: square root of the MSE."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R².

    Returns 0.0 when the targets are constant and predictions are perfect,
    and a large negative value when they are constant but mispredicted, which
    matches scikit-learn's convention closely enough for reporting.
    """
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_lengths(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if total == 0.0:
        return 0.0 if residual == 0.0 else -float("inf")
    return 1.0 - residual / total


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have different lengths")
    if len(y_true) == 0:
        raise ValueError("accuracy is undefined for empty inputs")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix with rows = true labels, columns = predicted labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have different lengths")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    labels = list(labels)
    index = {label: position for position, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true_label, predicted_label in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[true_label], index[predicted_label]] += 1
    return matrix


def precision_recall_f1(
    y_true, y_pred, positive_label=1
) -> tuple[float, float, float]:
    """Binary precision, recall and F1 for ``positive_label``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have different lengths")
    true_positive = int(np.sum((y_true == positive_label) & (y_pred == positive_label)))
    false_positive = int(np.sum((y_true != positive_label) & (y_pred == positive_label)))
    false_negative = int(np.sum((y_true == positive_label) & (y_pred != positive_label)))
    precision = (
        true_positive / (true_positive + false_positive)
        if (true_positive + false_positive)
        else 0.0
    )
    recall = (
        true_positive / (true_positive + false_negative)
        if (true_positive + false_negative)
        else 0.0
    )
    f1 = (
        2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    )
    return float(precision), float(recall), float(f1)


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """F1 score, macro-averaged over classes by default."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    if average == "macro":
        scores = [
            precision_recall_f1(y_true, y_pred, positive_label=label)[2]
            for label in labels
        ]
        return float(np.mean(scores)) if scores else 0.0
    if average == "binary":
        if len(labels) > 2:
            raise ValueError("binary F1 requested but more than two labels present")
        positive = labels[-1]
        return precision_recall_f1(y_true, y_pred, positive_label=positive)[2]
    raise ValueError(f"unknown average {average!r}; expected 'macro' or 'binary'")


def regression_report(y_true, y_pred) -> dict[str, float]:
    """The (MAE, MAPE, R²) triple reported in the paper's prediction tables."""
    return {
        "mae": mean_absolute_error(y_true, y_pred),
        "mape": mean_absolute_percentage_error(y_true, y_pred),
        "r2": r2_score(y_true, y_pred),
    }
