"""Linear models: ridge regression, support-vector regression, and averaging.

The paper's model comparison tables include SVR and a naive "Averaging"
baseline next to the tree ensembles.  ``SupportVectorRegressor`` optimises the
epsilon-insensitive primal (with an L2 penalty) by L-BFGS over a smooth
soft-plus approximation of the hinge, optionally after a random-Fourier-feature
lift that approximates an RBF kernel; this keeps the implementation compact
while reproducing SVR's characteristic behaviour (decent but below the tree
ensembles on these tabular prediction tasks).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["AveragingRegressor", "RidgeRegressor", "SupportVectorRegressor"]


class AveragingRegressor:
    """Predicts the training-set mean for every input (the paper's naive baseline)."""

    def __init__(self):
        self._mean: float | None = None

    def fit(self, X, y) -> "AveragingRegressor":
        y = np.asarray(y, dtype=float)
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._mean = float(np.mean(y))
        return self

    def predict(self, X) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        return np.full(len(X), self._mean)


class RidgeRegressor:
    """Closed-form L2-regularised linear regression."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y have different lengths")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            X_centered, y_centered = X, y
        gram = X_centered.T @ X_centered + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, X_centered.T @ y_centered)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_


class SupportVectorRegressor:
    """Epsilon-insensitive SVR with an optional RBF random-feature lift.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = fit harder).
    epsilon:
        Half-width of the insensitive tube around the targets.
    kernel:
        ``"linear"`` or ``"rbf"``.  The RBF kernel is approximated with
        random Fourier features so training stays a smooth convex problem.
    gamma:
        RBF bandwidth; ``"scale"`` uses 1 / (n_features * Var(X)).
    n_components:
        Number of random Fourier features when ``kernel="rbf"``.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.05,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        n_components: int = 100,
        random_state: int | None = None,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if kernel not in ("linear", "rbf"):
            raise ValueError("kernel must be 'linear' or 'rbf'")
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.n_components = n_components
        self.random_state = random_state
        self._weights: np.ndarray | None = None
        self._feature_state: tuple[np.ndarray, np.ndarray] | None = None
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None

    # -- feature maps ----------------------------------------------------------
    def _standardize(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._x_mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale == 0] = 1.0
            self._x_scale = scale
        return (X - self._x_mean) / self._x_scale

    def _lift(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if self.kernel == "linear":
            return np.hstack([X, np.ones((len(X), 1))])
        if fit:
            rng = np.random.default_rng(self.random_state)
            if self.gamma == "scale":
                variance = float(X.var()) or 1.0
                gamma = 1.0 / (X.shape[1] * variance)
            else:
                gamma = float(self.gamma)
            frequencies = rng.normal(
                scale=np.sqrt(2.0 * gamma), size=(X.shape[1], self.n_components)
            )
            phases = rng.uniform(0, 2 * np.pi, size=self.n_components)
            self._feature_state = (frequencies, phases)
        frequencies, phases = self._feature_state
        projected = X @ frequencies + phases
        features = np.sqrt(2.0 / self.n_components) * np.cos(projected)
        return np.hstack([features, np.ones((len(X), 1))])

    # -- fitting -----------------------------------------------------------------
    def fit(self, X, y) -> "SupportVectorRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y have different lengths")
        X = self._standardize(X, fit=True)
        features = self._lift(X, fit=True)
        n_weights = features.shape[1]
        epsilon = self.epsilon
        C = self.C

        def objective(weights: np.ndarray) -> tuple[float, np.ndarray]:
            predictions = features @ weights
            errors = predictions - y
            # Squared epsilon-insensitive loss (smooth, convex).
            excess = np.maximum(np.abs(errors) - epsilon, 0.0)
            loss = C * np.sum(excess ** 2) + 0.5 * np.sum(weights[:-1] ** 2)
            gradient_errors = 2.0 * C * excess * np.sign(errors)
            gradient = features.T @ gradient_errors
            gradient[:-1] += weights[:-1]
            return float(loss), gradient

        initial = np.zeros(n_weights)
        result = optimize.minimize(
            objective, initial, jac=True, method="L-BFGS-B", options={"maxiter": 500}
        )
        self._weights = result.x
        return self

    def predict(self, X) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        X = self._standardize(X, fit=False)
        features = self._lift(X, fit=False)
        return features @ self._weights
