"""Gradient-boosted regression trees (the paper's "XGBoost" stand-in).

Least-squares boosting: each stage fits a shallow CART regression tree to the
residuals of the current ensemble and is added with a learning-rate shrinkage.
Optional stochastic subsampling of rows per stage mirrors XGBoost's
``subsample`` parameter.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting over shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] = []
        self._initial_prediction = 0.0

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y have different lengths")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        self._initial_prediction = float(np.mean(y))
        current = np.full(len(y), self._initial_prediction)
        n_samples = len(y)
        sample_size = max(1, int(round(self.subsample * n_samples)))
        for _ in range(self.n_estimators):
            residuals = y - current
            if self.subsample < 1.0:
                indices = rng.choice(n_samples, size=sample_size, replace=False)
            else:
                indices = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            tree.fit(X[indices], residuals[indices])
            self.estimators_.append(tree)
            current = current + self.learning_rate * tree.predict(X)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        prediction = np.full(len(X), self._initial_prediction)
        for tree in self.estimators_:
            prediction = prediction + self.learning_rate * tree.predict(X)
        return prediction
