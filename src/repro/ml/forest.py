"""Random forests (bagged CART trees) for regression and classification.

The paper's best-performing predictor for both compression behaviour and
optimal-tier prediction is a Random Forest; these implementations bootstrap
the training set and restrict each split to a random feature subset, then
average (regression) or majority-vote via averaged class probabilities
(classification).
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "RandomForestClassifier"]


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list = []

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_samples = len(X)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2 ** 31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError("model must be fitted before calling predict")


class RandomForestRegressor(_BaseForest):
    """Bagging ensemble of :class:`DecisionTreeRegressor`, averaged."""

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._fit_forest(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        predictions = np.vstack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )


class RandomForestClassifier(_BaseForest):
    """Bagging ensemble of :class:`DecisionTreeClassifier`; soft voting."""

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        # Trees may have seen different bootstrap label subsets; align their
        # probability columns onto the forest-wide class list.
        aggregated = np.zeros((len(X), len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            for column, label in enumerate(tree.classes_.tolist()):
                aggregated[:, class_index[label]] += probabilities[:, column]
        aggregated /= len(self.estimators_)
        return aggregated

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )
