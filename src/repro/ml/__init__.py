"""Machine-learning substrate: from-scratch models standing in for scikit-learn/XGBoost.

The paper compares Random Forest, XGBoost, SVR, an MLP and a naive averaging
baseline for compression-performance prediction, and uses a Random Forest for
optimal-tier prediction.  These are all provided here on top of numpy so the
reproduction has no unavailable dependencies.
"""

from .boosting import GradientBoostingRegressor
from .forest import RandomForestClassifier, RandomForestRegressor
from .linear import AveragingRegressor, RidgeRegressor, SupportVectorRegressor
from .metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    regression_report,
    root_mean_squared_error,
)
from .mlp import MLPRegressor
from .model_selection import KFold, out_of_time_split, train_test_split
from .preprocessing import MinMaxScaler, StandardScaler
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "RandomForestClassifier",
    "GradientBoostingRegressor",
    "AveragingRegressor",
    "RidgeRegressor",
    "SupportVectorRegressor",
    "MLPRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "KFold",
    "out_of_time_split",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "regression_report",
]
