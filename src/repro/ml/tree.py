"""CART decision trees (regression and classification) on numpy arrays.

scikit-learn is not available offline, so the forest/boosting models the paper
uses are built on these trees.  Splits are axis-aligned thresholds chosen to
minimise the squared error (regression) or Gini impurity (classification);
split search is vectorised per feature using prefix sums over the sorted
targets, which keeps training fast enough for the few-thousand-sample
training sets COMPREDICT and the tier predictor use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeRegressor", "DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node: either a split (feature, threshold) or a leaf (value)."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float | np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _validate_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError(f"X and y have different lengths: {len(X)} vs {len(y)}")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


class _BaseTree:
    """Shared fitting machinery for the regression and classification trees."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self._n_features: int = 0

    # -- subclass hooks -------------------------------------------------------
    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _impurity_gain(
        self, y_sorted: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Per-split-position impurity decrease for one sorted feature."""
        raise NotImplementedError

    # -- fitting ---------------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        max_features = self.max_features
        if max_features is None:
            return n_features
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features)) or 1)
        if isinstance(max_features, float):
            return max(1, int(round(max_features * n_features)))
        if isinstance(max_features, int):
            return max(1, min(max_features, n_features))
        raise ValueError(f"unsupported max_features {max_features!r}")

    def _fit_arrays(self, X: np.ndarray, y: np.ndarray) -> None:
        self._n_features = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._max_features_resolved = self._resolve_max_features(self._n_features)
        self._root = self._build(X, y, depth=0)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n_samples = len(y)
        if (
            depth >= self.max_depth
            or n_samples < self.min_samples_split
            or self._is_pure(y)
        ):
            return _Node(value=self._leaf_value(y))

        split = self._find_best_split(X, y)
        if split is None:
            return _Node(value=self._leaf_value(y))
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _is_pure(self, y: np.ndarray) -> bool:
        return len(np.unique(y)) <= 1

    def _find_best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n_samples, n_features = X.shape
        if self._max_features_resolved < n_features:
            features = self._rng.choice(
                n_features, size=self._max_features_resolved, replace=False
            )
        else:
            features = np.arange(n_features)

        best_gain = 0.0
        best: tuple[int, float] | None = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            x_sorted = X[order, feature]
            y_sorted = y[order]
            gains, baseline = self._impurity_gain(y_sorted)
            if gains.size == 0:
                continue
            # Candidate split after position i puts i+1 samples on the left.
            positions = np.arange(1, n_samples)
            valid = (
                (positions >= min_leaf)
                & (positions <= n_samples - min_leaf)
                & (x_sorted[1:] > x_sorted[:-1])
            )
            if not np.any(valid):
                continue
            gains = np.where(valid, gains, -np.inf)
            best_position = int(np.argmax(gains))
            gain = gains[best_position]
            if gain > best_gain + 1e-12:
                best_gain = float(gain)
                threshold = 0.5 * (
                    x_sorted[best_position] + x_sorted[best_position + 1]
                )
                best = (int(feature), float(threshold))
        return best

    # -- prediction -------------------------------------------------------------
    def _predict_row_value(self, row: np.ndarray):
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        if node is None:
            raise RuntimeError("tree has not been fitted")
        return node.value

    def _check_fitted_and_shape(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(
                f"X must have shape (n, {self._n_features}), got {X.shape}"
            )
        return X

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model must be fitted first")
        return walk(self._root)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimising within-leaf squared error."""

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = _validate_xy(X, y)
        y = np.asarray(y, dtype=float)
        self._fit_arrays(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        X = self._check_fitted_and_shape(X)
        return np.array([self._predict_row_value(row) for row in X], dtype=float)

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _impurity_gain(self, y_sorted: np.ndarray) -> tuple[np.ndarray, float]:
        n = len(y_sorted)
        if n < 2:
            return np.empty(0), 0.0
        prefix_sum = np.cumsum(y_sorted)
        prefix_sq = np.cumsum(y_sorted ** 2)
        total_sum = prefix_sum[-1]
        total_sq = prefix_sq[-1]
        left_counts = np.arange(1, n)
        right_counts = n - left_counts
        left_sum = prefix_sum[:-1]
        right_sum = total_sum - left_sum
        left_sq = prefix_sq[:-1]
        right_sq = total_sq - left_sq
        # Sum of squared errors of each side equals sum(y^2) - (sum y)^2 / count.
        sse_left = left_sq - left_sum ** 2 / left_counts
        sse_right = right_sq - right_sum ** 2 / right_counts
        sse_total = total_sq - total_sum ** 2 / n
        gains = sse_total - (sse_left + sse_right)
        return gains, float(sse_total)


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimising Gini impurity."""

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = _validate_xy(X, y)
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self._n_classes = len(self.classes_)
        self._fit_arrays(X, y_encoded)
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = self._check_fitted_and_shape(X)
        return np.vstack([self._predict_row_value(row) for row in X])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(int), minlength=self._n_classes)
        return counts / counts.sum()

    def _impurity_gain(self, y_sorted: np.ndarray) -> tuple[np.ndarray, float]:
        n = len(y_sorted)
        if n < 2:
            return np.empty(0), 0.0
        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), y_sorted.astype(int)] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        total = prefix[-1]
        left_counts = np.arange(1, n, dtype=float)
        right_counts = n - left_counts
        left = prefix[:-1]
        right = total - left
        gini_left = 1.0 - np.sum((left / left_counts[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right / right_counts[:, None]) ** 2, axis=1)
        gini_total = 1.0 - np.sum((total / n) ** 2)
        weighted = (left_counts * gini_left + right_counts * gini_right) / n
        gains = gini_total - weighted
        return gains, float(gini_total)
