"""A small fully-connected neural network regressor (the paper's "MLP"/"Neural Network").

Two ReLU hidden layers trained with Adam on mean squared error, with feature
standardisation folded in.  This is intentionally modest: the paper's point is
that an MLP is competitive with, but not better than, the tree ensembles on
these small tabular prediction problems.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MLPRegressor"]


class MLPRegressor:
    """Feed-forward ReLU network trained with Adam on MSE loss."""

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (64, 32),
        learning_rate: float = 0.01,
        epochs: int = 300,
        batch_size: int = 32,
        l2: float = 1e-4,
        random_state: int | None = None,
    ):
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if any(size < 1 for size in hidden_sizes):
            raise ValueError("hidden layer sizes must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None

    def fit(self, X, y) -> "MLPRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y have different lengths")
        rng = np.random.default_rng(self.random_state)

        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0] = 1.0
        self._x_scale = x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        X = (X - self._x_mean) / self._x_scale
        y = (y - self._y_mean) / self._y_scale

        sizes = [X.shape[1], *self.hidden_sizes, 1]
        self._weights = [
            rng.normal(scale=np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        ]
        self._biases = [np.zeros(fan_out) for fan_out in sizes[1:]]

        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n_samples = len(X)
        batch_size = min(self.batch_size, n_samples)
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch_size):
                batch = order[start : start + batch_size]
                grads_w, grads_b = self._gradients(X[batch], y[batch])
                step += 1
                for layer in range(len(self._weights)):
                    grads_w[layer] += self.l2 * self._weights[layer]
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_w_hat = m_w[layer] / (1 - beta1 ** step)
                    v_w_hat = v_w[layer] / (1 - beta2 ** step)
                    m_b_hat = m_b[layer] / (1 - beta1 ** step)
                    v_b_hat = v_b[layer] / (1 - beta2 ** step)
                    self._weights[layer] -= (
                        self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    )
                    self._biases[layer] -= (
                        self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
                    )
        return self

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations = [X]
        pre_activations = []
        current = X
        for layer, (weights, biases) in enumerate(zip(self._weights, self._biases)):
            z = current @ weights + biases
            pre_activations.append(z)
            if layer < len(self._weights) - 1:
                current = np.maximum(z, 0.0)
            else:
                current = z
            activations.append(current)
        return activations, pre_activations

    def _gradients(self, X: np.ndarray, y: np.ndarray):
        activations, pre_activations = self._forward(X)
        batch = len(X)
        delta = 2.0 * (activations[-1] - y) / batch
        grads_w = [np.zeros_like(w) for w in self._weights]
        grads_b = [np.zeros_like(b) for b in self._biases]
        for layer in reversed(range(len(self._weights))):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * (
                    pre_activations[layer - 1] > 0
                )
        return grads_w, grads_b

    def predict(self, X) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("model must be fitted before calling predict")
        X = np.asarray(X, dtype=float)
        X = (X - self._x_mean) / self._x_scale
        activations, _ = self._forward(X)
        return activations[-1].reshape(-1) * self._y_scale + self._y_mean
