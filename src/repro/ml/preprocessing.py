"""Feature scaling helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Standardise features to zero mean and unit variance."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fitted before calling transform")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fitted before calling inverse_transform")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the [0, 1] range."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler must be fitted before calling transform")
        X = np.asarray(X, dtype=float)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
