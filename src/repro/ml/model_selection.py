"""Dataset splitting utilities: random split, K-fold, and out-of-time split.

The paper emphasises *out-of-time* validation for the tier predictor (train on
earlier months, test on later ones); :func:`out_of_time_split` implements that
protocol, while :func:`train_test_split` / :class:`KFold` cover the compression
prediction experiments.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["train_test_split", "KFold", "out_of_time_split"]


def train_test_split(
    X,
    y,
    test_fraction: float = 0.25,
    random_state: int | None = None,
    shuffle: bool = True,
):
    """Split (X, y) into train and test subsets.

    Returns ``(X_train, X_test, y_train, y_test)``.  At least one sample is
    always kept on each side (requires at least two samples).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y have different lengths")
    n_samples = len(X)
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    n_test = int(round(test_fraction * n_samples))
    n_test = min(max(n_test, 1), n_samples - 1)
    indices = np.arange(n_samples)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(indices)
    test_indices = indices[:n_test]
    train_indices = indices[n_test:]
    return X[train_indices], X[test_indices], y[train_indices], y[test_indices]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        n_samples = len(X)
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_indices = indices[start : start + size]
            train_indices = np.concatenate(
                [indices[:start], indices[start + size :]]
            )
            yield train_indices, test_indices
            start += size


def out_of_time_split(
    timestamps: Sequence[float], test_fraction: float = 0.25
) -> tuple[np.ndarray, np.ndarray]:
    """Chronological split: the latest ``test_fraction`` of samples form the test set.

    Returns ``(train_indices, test_indices)``; ties on the cut timestamp go to
    the test side so the train set never contains data newer than the test set.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    timestamps = np.asarray(timestamps, dtype=float)
    n_samples = len(timestamps)
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    order = np.argsort(timestamps, kind="stable")
    n_test = int(round(test_fraction * n_samples))
    n_test = min(max(n_test, 1), n_samples - 1)
    test_indices = order[-n_test:]
    train_indices = order[:-n_test]
    return train_indices, test_indices
