"""repro — a reproduction of "Towards Optimizing Storage Costs on the Cloud" (ICDE 2023).

The package implements SCOPe (Storage Cost Optimizer with Performance
guarantees) and every substrate it needs to run on a laptop:

* :mod:`repro.cloud` — tiered cloud storage cost model and simulator;
* :mod:`repro.tabular` — a typed in-memory table with row/column layouts;
* :mod:`repro.compression` — codecs (stdlib + pure-Python snappy/lz4 substitutes);
* :mod:`repro.ml` — from-scratch forests, boosting, SVR, MLP and metrics;
* :mod:`repro.workloads` — synthetic TPC-H-like data, query workloads and
  enterprise access logs;
* :mod:`repro.core` — the paper's contribution: OPTASSIGN, COMPREDICT,
  DATAPART/G-PART, the tier predictor and the SCOPe pipeline;
* :mod:`repro.engine` — the online tiering engine: continuous SCOPe over
  streaming access logs with pluggable re-optimization policies;
* :mod:`repro.fleet` — fleet-scale multi-tenant tiering: many engines
  epoch-locked over shared capacity pools with stacked, arbitrated solves;
* :mod:`repro.chaos` — deterministic fault injection (provider outages,
  price/pool shocks, tenant churn) with graceful degradation reporting.

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

from . import (
    chaos,
    cloud,
    compression,
    core,
    engine,
    fleet,
    ml,
    obs,
    tabular,
    workloads,
)

__version__ = "1.4.0"

__all__ = [
    "chaos",
    "cloud",
    "compression",
    "core",
    "engine",
    "obs",
    "fleet",
    "ml",
    "tabular",
    "workloads",
    "__version__",
]
