"""The chaos injector: applies a disruption schedule to a live run.

:class:`ChaosInjector` is the stateful bridge between a pure-data
:class:`~repro.chaos.DisruptionSchedule` and the hosts that honour it — an
:class:`~repro.engine.OnlineTieringEngine` or a
:class:`~repro.fleet.FleetScheduler`.  The hosts call a small fixed hook
surface at their epoch boundaries (``before_engine_epoch`` /
``before_fleet_epoch``, ``take_forced_tenants``, ``degrade_fleet_solve``,
``record_frozen_placement``, ``note_migration``, ``note_relaxation``);
everything else — outage bookkeeping, affinity lifting, catalog re-pricing,
pool resizing, tenant churn, DegradationReport accumulation and ``chaos.*``
observability — lives here.

Disruption semantics, in host terms:

* **Outage** — the dead provider's tier indices are banned on every engine
  (masked infeasible in the next problem build), residency pins stranded
  without a live tier are suspended (recorded as SLO violations), and any
  tenant with residents on the dead tiers is marked for *forced firing* this
  epoch: the evacuation cannot wait for policy drift.  The executor waives
  early-deletion penalties on moves off banned tiers, so evacuation traffic
  is billed exactly once (move + egress).
* **Recovery** — tiers are un-banned and suspended pins re-armed, but *no*
  solve is forced: the restored pins make evacuated placements violate
  affinity again, so the next policy-driven re-optimization moves data home
  (re-admission at reopt time, never mid-epoch).
* **Price shock** — the shared catalog is re-priced in place; engines drop
  their compiled (price-snapshotting) placements so the very next settle
  bills post-shock prices, and delta caches are invalidated selectively:
  only rows whose standing choice sits on a re-priced tier must re-solve
  when prices only went up, everything when any price dropped.
* **Pool shock** — the shared pool's budget changes in place; the next
  stacked solve arbitrates against it.
* **Churn** — ``TenantJoin`` admits a spec mid-run (its epoch stream
  re-tagged to start at the join epoch) and ``TenantLeave`` retires one,
  releasing its pool reservations and delta-cache rows.

An injector instance is single-run state (outage bookkeeping, forced-tenant
marks, accumulated reports): attach a fresh one per run.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Iterator

from ..core.optassign import InfeasibleError
from ..core.optassign.stacked import TENANT_SEPARATOR
from ..engine.events import EpochBatch
from ..obs import get_metrics, get_tracer
from .events import (
    DisruptionEvent,
    DisruptionSchedule,
    PoolShock,
    PriceShock,
    ProviderOutage,
    ProviderRecovery,
    TenantJoin,
    TenantLeave,
)
from .report import DegradationAction, DegradationReport

__all__ = ["ChaosInjector"]

_FLEET_ONLY = (PoolShock, TenantJoin, TenantLeave)


class ChaosInjector:
    """Applies a :class:`DisruptionSchedule` to one engine- or fleet-run."""

    def __init__(self, schedule: DisruptionSchedule):
        if not isinstance(schedule, DisruptionSchedule):
            raise TypeError(
                f"ChaosInjector needs a DisruptionSchedule, got {schedule!r}"
            )
        self.schedule = schedule
        #: One :class:`DegradationReport` per epoch that saw any chaos
        #: activity, in epoch order.
        self.reports: list[DegradationReport] = []
        self._reports_by_epoch: dict[int, DegradationReport] = {}
        # provider -> the tier indices its outage banned (unban set at
        # recovery); the union across active outages is the banned set.
        self._outages: dict[str, tuple[int, ...]] = {}
        self._forced_tenants: set[str] = set()
        self._epoch = -1

    # -- shared bookkeeping ------------------------------------------------------
    @property
    def banned_tiers(self) -> frozenset[int]:
        """Tier indices dead under the currently active outages."""
        return frozenset(
            index for dead in self._outages.values() for index in dead
        )

    def report_for(self, epoch: int) -> DegradationReport:
        """The epoch's report, created on first use."""
        report = self._reports_by_epoch.get(epoch)
        if report is None:
            report = DegradationReport(epoch=epoch)
            self._reports_by_epoch[epoch] = report
            self.reports.append(report)
        return report

    def _record_action(self, epoch: int, action: DegradationAction) -> None:
        self.report_for(epoch).actions.append(action)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("chaos.degradations", action=action.kind).add(1)

    def _dead_tiers(self, catalog, provider: str) -> list[int]:
        """The catalog tier indices an outage of ``provider`` takes down.

        Validated here — not in the problem constructor — so a bad schedule
        raises at the epoch boundary with an outage-shaped message instead
        of surfacing later as a constructor error mid-solve.
        """
        tier_indices_of = getattr(catalog, "tier_indices_of", None)
        if tier_indices_of is None:
            raise ValueError(
                "provider outages need a MultiProviderCatalog; a "
                "single-provider catalog has no other provider to fail over to"
            )
        if provider not in catalog.provider_names:
            raise ValueError(
                f"unknown provider {provider!r}; the catalog has "
                f"{list(catalog.provider_names)}"
            )
        dead = tier_indices_of(provider)
        if len(self.banned_tiers | set(dead)) >= len(catalog):
            raise ValueError(
                f"outage of provider {provider!r} would take down every tier "
                "in the catalog; nothing could host the evacuated data"
            )
        return dead

    @staticmethod
    def _allowed_providers(entry) -> set[str]:
        return {entry} if isinstance(entry, str) else set(entry)

    def _lift_stranded(self, engine, catalog) -> list[str]:
        """Suspend residency pins with no live tier left; returns them."""
        affinity = engine._provider_affinity
        if not affinity:
            return []
        banned = self.banned_tiers
        live = {
            catalog.provider_of(index)
            for index in range(len(catalog))
            if index not in banned
        }
        stranded = [
            name
            for name, entry in affinity.items()
            if not (self._allowed_providers(entry) & live)
        ]
        return engine.lift_provider_affinity(stranded)

    def _apply_outage(self, engines: dict, catalog, epoch: int, event) -> None:
        """Ban the provider's tiers on every engine; mark evacuating tenants.

        ``engines`` maps tenant name -> engine; the single-engine host
        passes ``{"": engine}`` and the empty tenant tag is stripped from
        recorded partition names.
        """
        dead = self._dead_tiers(catalog, event.provider)
        self._outages[event.provider] = tuple(dead)
        report = self.report_for(epoch)
        banned = self.banned_tiers
        evacuating: list[str] = []
        stranded_all: list[str] = []
        for tenant, engine in engines.items():
            tag = f"{tenant}{TENANT_SEPARATOR}" if tenant else ""
            residents = engine.partitions_on_tiers(dead)
            engine.set_banned_tiers(banned)
            stranded = self._lift_stranded(engine, catalog)
            stranded_all.extend(f"{tag}{name}" for name in stranded)
            if residents:
                if tenant:
                    self._forced_tenants.add(tenant)
                evacuating.extend(f"{tag}{name}" for name in residents)
        if stranded_all:
            report.slo_violations.extend(stranded_all)
            self._record_action(
                epoch,
                DegradationAction(
                    kind="affinity_lifted",
                    detail=(
                        f"outage of provider {event.provider!r} stranded "
                        f"{len(stranded_all)} residency pin(s)"
                    ),
                    partitions=tuple(stranded_all),
                ),
            )
        if evacuating:
            self._record_action(
                epoch,
                DegradationAction(
                    kind="forced_evacuation",
                    detail=(
                        f"{len(evacuating)} partition(s) evacuated off "
                        f"provider {event.provider!r}"
                    ),
                    partitions=tuple(evacuating),
                ),
            )
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("chaos.evacuated_partitions").add(
                    len(evacuating)
                )
        self._evacuating = bool(evacuating)

    def _apply_recovery(self, engines: dict, catalog, epoch: int, event) -> None:
        if event.provider not in self._outages:
            raise ValueError(
                f"provider {event.provider!r} is not down at epoch {epoch}"
            )
        del self._outages[event.provider]
        banned = self.banned_tiers
        for engine in engines.values():
            engine.set_banned_tiers(banned)
            engine.restore_provider_affinity()
            # Pins stranded by a *different*, still-active outage stay lifted.
            self._lift_stranded(engine, catalog)

    def _apply_price_shock(
        self, engines: Iterable, catalog, fleet_delta, epoch: int, event
    ) -> None:
        if event.tier_names is not None:
            names = event.tier_names
        elif event.provider is not None:
            tier_indices_of = getattr(catalog, "tier_indices_of", None)
            if tier_indices_of is None:
                raise ValueError(
                    "provider-scoped price shocks need a MultiProviderCatalog"
                )
            names = tuple(
                catalog[index].name for index in tier_indices_of(event.provider)
            )
        else:
            names = None
        affected = catalog.reprice(
            names,
            storage_factor=event.storage_factor,
            read_factor=event.read_factor,
            write_factor=event.write_factor,
        )
        for engine in engines:
            # The compiled placement snapshots prices; dropping it makes the
            # very next settle bill at post-shock rates.
            engine.invalidate_pricing()
            delta = engine.delta_solver
            if delta is not None:
                delta.note_repricing(
                    catalog, affected, decreased=event.decreased
                )
        if fleet_delta is not None:
            fleet_delta.note_repricing(
                catalog, affected, decreased=event.decreased
            )

    # -- engine host -------------------------------------------------------------
    def before_engine_epoch(self, engine, epoch: int) -> bool:
        """Apply the epoch's events to a single engine.

        Returns True when the engine must re-optimize this epoch regardless
        of its policy (a forced evacuation is pending).
        """
        self._epoch = epoch
        events = self.schedule.at(epoch)
        if not events:
            return False
        force = False
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span("chaos.apply", epoch=epoch, events=len(events)):
            for event in events:
                if isinstance(event, _FLEET_ONLY):
                    raise ValueError(
                        f"{event.kind} events are fleet-level; attach the "
                        "injector to a FleetScheduler instead of a bare engine"
                    )
                with tracer.span("chaos.event", kind=event.kind, epoch=epoch):
                    self.report_for(epoch).events.append(event.describe())
                    if isinstance(event, ProviderOutage):
                        self._apply_outage({"": engine}, engine.tiers, epoch, event)
                        force = force or self._evacuating
                    elif isinstance(event, ProviderRecovery):
                        self._apply_recovery({"": engine}, engine.tiers, epoch, event)
                    elif isinstance(event, PriceShock):
                        self._apply_price_shock(
                            [engine], engine.tiers, None, epoch, event
                        )
                    else:  # pragma: no cover - closed taxonomy
                        raise TypeError(f"unhandled event {event!r}")
                if metrics.enabled:
                    metrics.counter("chaos.events", kind=event.kind).add(1)
        return force

    @staticmethod
    def _epochs_in_window(start_month: float, end_month: float) -> range:
        """Integer schedule epochs falling inside ``[start_month, end_month)``.

        Disruption schedules stay keyed by integer (month) epochs; on the
        epoch-free timeline a disruption fires in whichever window's span
        covers its month mark.  Half-open windows apply each mark exactly
        once, and month-aligned windows recover the dense ordering exactly.
        """
        return range(math.ceil(start_month), math.ceil(end_month))

    def before_engine_window(
        self, engine, index: int, start_month: float, end_month: float
    ) -> bool:
        """Event-time disruption triggering: the windowed twin of
        :meth:`before_engine_epoch`.

        Applies every scheduled disruption whose integer epoch mark lies
        inside the window's ``[start_month, end_month)`` span, in mark order.
        Returns True when any of them forces a re-optimization (a pending
        evacuation cannot wait for policy drift).
        """
        force = False
        for epoch in self._epochs_in_window(start_month, end_month):
            force = self.before_engine_epoch(engine, epoch) or force
        return force

    def record_frozen_placement(self, engine, epoch: int, error) -> None:
        """The engine's solve failed; the epoch bills at the frozen layout."""
        self._record_action(
            epoch,
            DegradationAction(
                kind="placement_frozen",
                detail=f"re-optimization infeasible, placement frozen: {error}",
            ),
        )

    # -- fleet host --------------------------------------------------------------
    def before_fleet_epoch(self, scheduler, epoch: int) -> None:
        """Apply the epoch's events to the whole fleet (roster may change)."""
        self._epoch = epoch
        events = self.schedule.at(epoch)
        if not events:
            return
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span("chaos.apply", epoch=epoch, events=len(events)):
            for event in events:
                with tracer.span("chaos.event", kind=event.kind, epoch=epoch):
                    self.report_for(epoch).events.append(event.describe())
                    self._apply_fleet_event(scheduler, epoch, event)
                if metrics.enabled:
                    metrics.counter("chaos.events", kind=event.kind).add(1)

    def before_fleet_window(
        self, scheduler, index: int, start_month: float, end_month: float
    ) -> None:
        """Event-time disruption triggering for the fleet host.

        Applies every scheduled disruption whose integer epoch mark lies in
        ``[start_month, end_month)``, in mark order — the windowed twin of
        :meth:`before_fleet_epoch`.  ``TenantJoin`` specs carry dense epoch
        streams; on the windowed timeline the joiner is admitted with no
        stream and settles empty windows until its own events arrive (the
        scheduler's windowed path documents this contract).
        """
        for epoch in self._epochs_in_window(start_month, end_month):
            self.before_fleet_epoch(scheduler, epoch)

    def _apply_fleet_event(
        self, scheduler, epoch: int, event: DisruptionEvent
    ) -> None:
        catalog = scheduler.tiers
        if isinstance(event, ProviderOutage):
            self._apply_outage(scheduler.engines, catalog, epoch, event)
        elif isinstance(event, ProviderRecovery):
            self._apply_recovery(scheduler.engines, catalog, epoch, event)
        elif isinstance(event, PriceShock):
            self._apply_price_shock(
                scheduler.engines.values(),
                catalog,
                scheduler._delta,
                epoch,
                event,
            )
        elif isinstance(event, PoolShock):
            pools = scheduler.pools
            if pools is None:
                raise ValueError(
                    f"pool shock on {event.pool!r} but the fleet has no "
                    "shared capacity pools"
                )
            if event.capacity_gb is not None:
                new_capacity = event.capacity_gb
            else:
                by_name = {pool.name: pool.capacity_gb for pool in pools}
                if event.pool not in by_name:
                    raise KeyError(
                        f"unknown pool {event.pool!r}; have {sorted(by_name)}"
                    )
                new_capacity = by_name[event.pool] * event.capacity_factor
            pools.set_capacity(event.pool, new_capacity)
        elif isinstance(event, TenantJoin):
            engine = scheduler.add_tenant(
                event.spec, stream=self._join_stream(event.spec, epoch)
            )
            # The joiner enters the current world: active outages apply.
            if self._outages:
                engine.set_banned_tiers(self.banned_tiers)
                self._lift_stranded(engine, catalog)
        elif isinstance(event, TenantLeave):
            scheduler.remove_tenant(event.tenant)  # raises KeyError if unknown
            self._forced_tenants.discard(event.tenant)
        else:  # pragma: no cover - closed taxonomy
            raise TypeError(f"unhandled event {event!r}")

    @staticmethod
    def _join_stream(spec, start_epoch: int) -> Iterator[EpochBatch]:
        """The joiner's stream, re-tagged to the fleet's current timeline.

        A spec's own stream starts at epoch 0 (:class:`SeriesStream`
        semantics); the fleet is already at ``start_epoch``, so both the
        batch epochs and the events' month stamps are shifted to line up.
        """
        for offset, batch in enumerate(spec.make_stream(None)):
            epoch = start_epoch + offset
            yield EpochBatch(
                epoch=epoch,
                events=tuple(
                    replace(access, month=epoch) for access in batch.events
                ),
            )

    def take_forced_tenants(self) -> set[str]:
        """Tenants that must re-solve this epoch (evacuations); clears them."""
        forced = self._forced_tenants
        self._forced_tenants = set()
        return forced

    def degrade_fleet_solve(self, scheduler, stacked, reserved, error):
        """The stacked solve failed: walk the fleet's degradation ladder.

        Rung 1 — when shared pool budgets are in play, retry the solve with
        them suspended (tier feasibility, SLOs and the relaxation ladder
        still apply).  Rung 2 — freeze: return None so the scheduler applies
        nothing and every tenant bills at its standing placement.
        """
        epoch = self._epoch
        with get_tracer().span("chaos.degradation", epoch=epoch):
            if scheduler.pools is not None:
                try:
                    # Routed through the scheduler so a sharded fleet retries
                    # on its worker pool (bill-identical either way).
                    retry = scheduler.solve_unpooled(stacked.problem)
                except InfeasibleError as second_error:
                    error = second_error
                else:
                    self._record_action(
                        epoch,
                        DegradationAction(
                            kind="pool_budget_suspended",
                            detail=(
                                "stacked solve infeasible under shared pool "
                                f"budgets; re-solved without them: {error}"
                            ),
                        ),
                    )
                    self.note_relaxation(epoch, retry.latency_relaxation)
                    return retry.assignment
            self._record_action(
                epoch,
                DegradationAction(
                    kind="placement_frozen",
                    detail=(
                        "stacked solve infeasible even without pool budgets; "
                        f"standing placements frozen: {error}"
                    ),
                ),
            )
            return None

    # -- billing / telemetry hooks ----------------------------------------------
    def note_migration(
        self, epoch: int, migration, banned_tiers, tenant: str | None = None
    ) -> None:
        """Attribute evacuation traffic (moves off banned tiers) to chaos."""
        if migration is None or not banned_tiers:
            return
        evacuations = [
            move for move in migration.moves if move.from_tier in banned_tiers
        ]
        if not evacuations:
            return
        cost = float(
            sum(move.cost + move.egress_cost for move in evacuations)
        )
        self.report_for(epoch).bill_impact_cents += cost
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("chaos.evacuation_cost_cents").add(cost)

    def note_relaxation(self, epoch: int, factor: float) -> None:
        """Record that the epoch's solve needed latency relaxation."""
        if factor <= 1.0:
            return
        report = self.report_for(epoch)
        if any(
            action.kind == "latency_relaxed" and action.amount == factor
            for action in report.actions
        ):
            return
        self._record_action(
            epoch,
            DegradationAction(
                kind="latency_relaxed",
                detail=(
                    f"latency SLAs widened ×{factor:g} to restore feasibility"
                ),
                amount=factor,
            ),
        )

    # -- summaries ---------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view over the whole run, for exporters and examples."""
        kinds: dict[str, int] = {}
        for report in self.reports:
            for action in report.actions:
                kinds[action.kind] = kinds.get(action.kind, 0) + 1
        return {
            "epochs_affected": len(self.reports),
            "events_applied": sum(len(report.events) for report in self.reports),
            "actions_by_kind": kinds,
            "slo_violations": sum(
                len(report.slo_violations) for report in self.reports
            ),
            "bill_impact_cents": float(
                sum(report.bill_impact_cents for report in self.reports)
            ),
            "degraded_epochs": sum(
                1 for report in self.reports if report.degraded
            ),
        }
