"""Structured degradation reporting: what gave, and what it cost.

When a disruption makes the current instance unsolvable as-specified, the
engine and fleet never crash mid-run (that is the calm-run contract, kept
loud and fail-fast); instead the injector walks a graceful-degradation
ladder and records every rung it had to take in a :class:`DegradationReport`
— one per affected epoch, accumulated on
:attr:`repro.chaos.ChaosInjector.reports`.

Each rung is a :class:`DegradationAction` with a closed ``kind`` vocabulary:

* ``forced_evacuation`` — residents of a dead provider's tiers were moved
  off at the outage epoch (egress billed once, early-deletion waived);
* ``affinity_lifted`` — residency pins whose allowed providers lost every
  live tier were suspended (each is an SLO violation until recovery);
* ``latency_relaxed`` — the solve only became feasible after the facade's
  relaxation ladder widened the latency SLAs by ``amount``;
* ``pool_budget_suspended`` — the stacked fleet solve was infeasible under
  shared pool budgets and was retried without them;
* ``placement_frozen`` — even the relaxed/unpooled solve was infeasible, so
  the epoch was billed at the standing placement and nothing moved.

``bill_impact_cents`` totals the evacuation traffic (move + egress) charged
by disruptions at that epoch, so a chaos run's excess bill is attributable
event by event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ACTION_KINDS", "DegradationAction", "DegradationReport"]

#: Closed vocabulary of degradation-ladder rungs.
ACTION_KINDS: frozenset[str] = frozenset(
    {
        "forced_evacuation",
        "affinity_lifted",
        "latency_relaxed",
        "pool_budget_suspended",
        "placement_frozen",
    }
)

#: Kinds that mean the epoch ran outside its calm-run contract (a lifted pin,
#: a widened SLA, a suspended budget or a frozen placement); an evacuation
#: alone is disruptive but the resulting placement honours every constraint.
_DEGRADED_KINDS: frozenset[str] = ACTION_KINDS - {"forced_evacuation"}


@dataclass(frozen=True)
class DegradationAction:
    """One rung of the graceful-degradation ladder, taken at one epoch."""

    kind: str
    detail: str
    partitions: tuple[str, ...] = ()
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown degradation kind {self.kind!r}; "
                f"expected one of {sorted(ACTION_KINDS)}"
            )
        object.__setattr__(self, "partitions", tuple(self.partitions))


@dataclass
class DegradationReport:
    """Everything chaos did to (and cost) one epoch.

    ``events`` are the human-readable descriptions of the disruption events
    applied at the epoch; ``actions`` the degradation rungs taken;
    ``slo_violations`` the partitions whose hard constraints (residency
    pins) were suspended; ``bill_impact_cents`` the evacuation traffic the
    epoch's disruptions charged.
    """

    epoch: int
    events: list[str] = field(default_factory=list)
    actions: list[DegradationAction] = field(default_factory=list)
    slo_violations: list[str] = field(default_factory=list)
    bill_impact_cents: float = 0.0

    @property
    def degraded(self) -> bool:
        """True when the epoch ran outside its calm-run contract."""
        return any(action.kind in _DEGRADED_KINDS for action in self.actions)

    @property
    def action_kinds(self) -> tuple[str, ...]:
        """The kinds taken this epoch, in order (duplicates preserved)."""
        return tuple(action.kind for action in self.actions)

    def summary(self) -> str:
        """One line: epoch, event count, action kinds, bill impact."""
        kinds = ",".join(self.action_kinds) or "none"
        return (
            f"epoch {self.epoch}: {len(self.events)} event(s), "
            f"actions=[{kinds}], {len(self.slo_violations)} SLO violation(s), "
            f"bill impact {self.bill_impact_cents:.2f}c"
        )

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [self.summary()]
        for description in self.events:
            lines.append(f"  event: {description}")
        for action in self.actions:
            line = f"  action[{action.kind}]: {action.detail}"
            if action.amount:
                line += f" (amount={action.amount:g})"
            lines.append(line)
            if action.partitions:
                lines.append(f"    partitions: {', '.join(action.partitions)}")
        if self.slo_violations:
            lines.append(f"  SLO violations: {', '.join(self.slo_violations)}")
        return "\n".join(lines)
