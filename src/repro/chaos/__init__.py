"""Deterministic fault injection and graceful degradation.

The chaos subsystem answers one question about the tiering optimizer: *what
happens when the cloud misbehaves mid-run?*  A
:class:`DisruptionSchedule` — a validated, epoch-sorted list of typed events
(provider outages and recoveries, price shocks, pool shocks, tenant churn)
— is applied at epoch boundaries by a :class:`ChaosInjector` attached to an
:class:`~repro.engine.OnlineTieringEngine` or
:class:`~repro.fleet.FleetScheduler` via their ``chaos=`` parameter.

Guarantees, pinned by tests:

* a run with no injector (or an empty schedule) is bit-identical to the
  pre-chaos code on every bill — all chaos paths are inert when unused;
* an outage masks the dead provider's tiers infeasible and force-evacuates
  residents exactly once (egress billed, early-deletion waived); recovered
  providers are re-admitted only at the next policy-driven re-optimization;
* a disruption the optimizer cannot absorb degrades gracefully through the
  existing relaxation ladder instead of crashing, recording a structured
  :class:`DegradationReport` (what was relaxed, which SLOs were violated,
  what the disruption cost) — no unhandled
  :class:`~repro.core.optassign.InfeasibleError` escapes the engine or the
  fleet scheduler;
* every disruption emits ``chaos.*`` spans and counters through
  :mod:`repro.obs`.
"""

from .events import (
    DisruptionEvent,
    DisruptionSchedule,
    PoolShock,
    PriceShock,
    ProviderOutage,
    ProviderRecovery,
    TenantJoin,
    TenantLeave,
)
from .injector import ChaosInjector
from .report import ACTION_KINDS, DegradationAction, DegradationReport

__all__ = [
    "ACTION_KINDS",
    "ChaosInjector",
    "DegradationAction",
    "DegradationReport",
    "DisruptionEvent",
    "DisruptionSchedule",
    "PoolShock",
    "PriceShock",
    "ProviderOutage",
    "ProviderRecovery",
    "TenantJoin",
    "TenantLeave",
]
