"""Typed disruption events and the schedule that sequences them.

A :class:`DisruptionSchedule` is the chaos subsystem's *entire* input: a
validated, epoch-sorted list of frozen event records describing what goes
wrong and when.  The schedule itself is pure data — applying it to a live
engine or fleet is the :class:`~repro.chaos.ChaosInjector`'s job — so the
same schedule can be replayed against different policies, solver modes or
fleet rosters and the runs stay deterministic and comparable.

Six event types cover the disruption taxonomy:

* :class:`ProviderOutage` / :class:`ProviderRecovery` — a cloud provider's
  tiers go dark (masked infeasible, residents force-evacuated) and later
  come back (re-admitted at the next policy-driven re-optimization, never
  mid-epoch);
* :class:`PriceShock` — a live catalog is re-priced in place (per provider,
  per named tier, or across the board), so both the optimizer's candidate
  costs and the simulator's bills change mid-run;
* :class:`PoolShock` — a shared capacity pool shrinks (or grows) mid-run;
* :class:`TenantJoin` / :class:`TenantLeave` — fleet roster churn.

All events land at an *epoch boundary*: before the epoch's policy decisions,
solves and billing.  Pairing rules (no recovery without a preceding outage,
no double outage) are validated at schedule construction so a typo'd
schedule fails loudly before any simulation runs.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "DisruptionEvent",
    "ProviderOutage",
    "ProviderRecovery",
    "PriceShock",
    "PoolShock",
    "TenantJoin",
    "TenantLeave",
    "DisruptionSchedule",
]


@dataclass(frozen=True)
class DisruptionEvent:
    """Base record: something happens at the start of ``epoch``."""

    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"event epoch must be non-negative, got {self.epoch}")

    @property
    def kind(self) -> str:
        """Snake-case event-type tag (``provider_outage``, ``price_shock``…)."""
        name = type(self).__name__
        return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()

    def describe(self) -> str:
        """Human-readable one-liner for DegradationReports and logs."""
        return f"{self.kind}@{self.epoch}"


@dataclass(frozen=True)
class ProviderOutage(DisruptionEvent):
    """Every tier of ``provider`` becomes infeasible until recovery.

    Residents of the dead tiers are force-evacuated at this epoch's solve
    (their re-optimization cannot wait for policy drift), with egress billed
    once and early-deletion penalties waived — an outage is not a voluntary
    early deletion.
    """

    provider: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.provider:
            raise ValueError("outage needs a provider name")

    def describe(self) -> str:
        return f"provider {self.provider!r} outage at epoch {self.epoch}"


@dataclass(frozen=True)
class ProviderRecovery(DisruptionEvent):
    """``provider``'s tiers become feasible again.

    Recovery un-bans the tiers and re-arms suspended residency pins but
    never fires a solve itself: evacuated data moves home only when the
    next policy-driven re-optimization decides to.
    """

    provider: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.provider:
            raise ValueError("recovery needs a provider name")

    def describe(self) -> str:
        return f"provider {self.provider!r} recovery at epoch {self.epoch}"


@dataclass(frozen=True)
class PriceShock(DisruptionEvent):
    """In-place catalog re-pricing: factors multiply the current rates.

    Scope the shock with ``provider`` (that provider's tiers) or
    ``tier_names`` (explicit catalog tier names), or neither for the whole
    catalog; naming both is ambiguous and rejected.  Factors of 1.0 leave a
    rate untouched; at least one factor must differ from 1.0.
    """

    storage_factor: float = 1.0
    read_factor: float = 1.0
    write_factor: float = 1.0
    provider: str | None = None
    tier_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        for label, factor in (
            ("storage_factor", self.storage_factor),
            ("read_factor", self.read_factor),
            ("write_factor", self.write_factor),
        ):
            if not math.isfinite(factor) or factor <= 0:
                raise ValueError(f"{label} must be positive and finite, got {factor}")
        if self.storage_factor == self.read_factor == self.write_factor == 1.0:
            raise ValueError("a price shock must change at least one rate")
        if self.provider is not None and self.tier_names is not None:
            raise ValueError(
                "scope a price shock by provider OR tier_names, not both"
            )
        if self.tier_names is not None:
            object.__setattr__(self, "tier_names", tuple(self.tier_names))
            if not self.tier_names:
                raise ValueError("tier_names must name at least one tier")

    @property
    def decreased(self) -> bool:
        """True when any rate goes *down* (delta caches must widen fully)."""
        return min(self.storage_factor, self.read_factor, self.write_factor) < 1.0

    def describe(self) -> str:
        scope = (
            f"provider {self.provider!r}"
            if self.provider is not None
            else f"tiers {list(self.tier_names)}"
            if self.tier_names is not None
            else "all tiers"
        )
        return (
            f"price shock on {scope} at epoch {self.epoch} "
            f"(storage ×{self.storage_factor:g}, read ×{self.read_factor:g}, "
            f"write ×{self.write_factor:g})"
        )


@dataclass(frozen=True)
class PoolShock(DisruptionEvent):
    """A shared capacity pool is resized mid-run.

    Give ``capacity_factor`` (multiplies the pool's current budget) or
    ``capacity_gb`` (absolute new budget), exactly one.  Fleet-level only.
    """

    pool: str = ""
    capacity_factor: float | None = None
    capacity_gb: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.pool:
            raise ValueError("pool shock needs a pool name")
        if (self.capacity_factor is None) == (self.capacity_gb is None):
            raise ValueError(
                "give exactly one of capacity_factor or capacity_gb"
            )
        value = (
            self.capacity_factor
            if self.capacity_factor is not None
            else self.capacity_gb
        )
        if not math.isfinite(value) or value <= 0:
            raise ValueError(f"pool shock size must be positive and finite: {value}")

    def describe(self) -> str:
        change = (
            f"×{self.capacity_factor:g}"
            if self.capacity_factor is not None
            else f"to {self.capacity_gb:g} GB"
        )
        return f"pool {self.pool!r} resized {change} at epoch {self.epoch}"


@dataclass(frozen=True)
class TenantJoin(DisruptionEvent):
    """A tenant joins the fleet mid-run.  Fleet-level only.

    ``spec`` is a :class:`repro.fleet.TenantSpec` (duck-typed here so the
    chaos package imports without the fleet layer).  The injector builds the
    tenant's epoch stream from the spec's series, re-tagged to start at the
    join epoch.
    """

    spec: object = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.spec is None or not getattr(self.spec, "name", ""):
            raise ValueError("tenant join needs a TenantSpec with a name")

    def describe(self) -> str:
        return f"tenant {self.spec.name!r} joins at epoch {self.epoch}"


@dataclass(frozen=True)
class TenantLeave(DisruptionEvent):
    """A tenant leaves the fleet, releasing its pool reservations.
    Fleet-level only."""

    tenant: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tenant:
            raise ValueError("tenant leave needs a tenant name")

    def describe(self) -> str:
        return f"tenant {self.tenant!r} leaves at epoch {self.epoch}"


def _check_pairing(events: Sequence[DisruptionEvent]) -> None:
    """Outage/recovery must alternate per provider, recovery strictly later."""
    down_since: dict[str, int] = {}
    for event in events:  # already epoch-sorted
        if isinstance(event, ProviderOutage):
            if event.provider in down_since:
                raise ValueError(
                    f"provider {event.provider!r} is already down at epoch "
                    f"{event.epoch} (outage at epoch "
                    f"{down_since[event.provider]} was never recovered)"
                )
            down_since[event.provider] = event.epoch
        elif isinstance(event, ProviderRecovery):
            started = down_since.pop(event.provider, None)
            if started is None:
                raise ValueError(
                    f"recovery of provider {event.provider!r} at epoch "
                    f"{event.epoch} has no preceding outage"
                )
            if event.epoch <= started:
                raise ValueError(
                    f"provider {event.provider!r} cannot recover at epoch "
                    f"{event.epoch}, the same epoch as (or before) its outage"
                )


@dataclass(frozen=True)
class DisruptionSchedule:
    """A validated, epoch-sorted sequence of disruption events.

    Events sharing an epoch keep their given order (stable sort), so e.g. a
    price shock and an outage at the same epoch apply in the order written.
    An empty schedule is valid — attaching one to an engine or fleet is the
    calm run, bit-identical to running with no chaos at all (pinned by
    test).
    """

    events: tuple[DisruptionEvent, ...] = ()
    _by_epoch: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __init__(self, events: Iterable[DisruptionEvent] = ()):
        events = tuple(events)
        for event in events:
            if not isinstance(event, DisruptionEvent):
                raise TypeError(
                    f"schedule entries must be DisruptionEvents, got {event!r}"
                )
        ordered = tuple(sorted(events, key=lambda event: event.epoch))
        _check_pairing(ordered)
        by_epoch: dict[int, tuple[DisruptionEvent, ...]] = {}
        for event in ordered:
            by_epoch[event.epoch] = by_epoch.get(event.epoch, ()) + (event,)
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "_by_epoch", by_epoch)

    @classmethod
    def empty(cls) -> "DisruptionSchedule":
        """The calm schedule: no events, every chaos path inert."""
        return cls()

    def at(self, epoch: int) -> tuple[DisruptionEvent, ...]:
        """Events landing at the start of ``epoch`` (possibly empty)."""
        return self._by_epoch.get(epoch, ())

    @property
    def final_epoch(self) -> int:
        """Epoch of the last event, or -1 for an empty schedule."""
        return self.events[-1].epoch if self.events else -1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DisruptionEvent]:
        return iter(self.events)
