"""Fleet workload generation: many tenants, mixed SLO classes, mixed drift.

One tenant is a :func:`repro.workloads.generate_slo_workload` account (the
interactive/analytics/batch/archive service-class mix) plus a monthly read
series per partition built from :func:`repro.workloads.generate_drifting_reads`
— some partitions hold their pattern for the whole horizon, others cool off,
heat up or decay at a drift point, so fleet policies face the same pattern
flips the single-tenant engine is tested on, but staggered across tenants.

Everything is deterministic in ``seed``: tenant ``i`` draws from
``default_rng(seed + i)``, so perturbing one tenant's inputs (the isolation
invariant) or regenerating a subset reproduces the others bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cloud import CompressionProfile
from .access_logs import DriftSegment, generate_drifting_reads
from .slo import DEFAULT_SLO_CLASSES, SloClass, SloWorkload, generate_slo_workload

__all__ = ["TenantWorkload", "FLEET_DRIFT_MIXES", "generate_fleet_workload"]


#: Named drift behaviours a partition's series can follow over the horizon.
#: ``stable`` holds the constant pattern; ``cooling`` goes quiet halfway;
#: ``heating`` starts silent and turns hot halfway; ``decaying`` declines
#: throughout; ``seasonal`` peaks on a twelve-month cycle.
FLEET_DRIFT_MIXES: tuple[str, ...] = (
    "stable",
    "cooling",
    "heating",
    "decaying",
    "seasonal",
)


def _segments(mix: str, months: int) -> list[DriftSegment]:
    half = max(months // 2, 1)
    rest = max(months - half, 1)
    if mix == "stable":
        return [DriftSegment("constant", months)]
    if mix == "cooling":
        return [DriftSegment("constant", half), DriftSegment("inactive", rest)]
    if mix == "heating":
        return [DriftSegment("inactive", half), DriftSegment("constant", rest)]
    if mix == "decaying":
        return [DriftSegment("decaying", months)]
    if mix == "seasonal":
        return [DriftSegment("periodic", months)]
    raise ValueError(
        f"unknown drift mix {mix!r}; expected one of {FLEET_DRIFT_MIXES}"
    )


@dataclass
class TenantWorkload:
    """One generated tenant: account, read series, compression profiles."""

    name: str
    workload: SloWorkload
    series: dict[str, list[float]]
    profiles: dict[str, dict[str, CompressionProfile]]
    drift_mix_of: dict[str, str] = field(default_factory=dict)

    @property
    def partitions(self):
        return self.workload.partitions

    @property
    def total_gb(self) -> float:
        return self.workload.total_gb


def generate_fleet_workload(
    num_tenants: int,
    partitions_per_tenant: int,
    months: int,
    seed: int = 0,
    classes: Sequence[SloClass] = DEFAULT_SLO_CLASSES,
    drift_mixes: Sequence[str] = FLEET_DRIFT_MIXES,
    drift_weights: Sequence[float] | None = None,
    residency_providers: Sequence[str] | None = None,
    residency_fraction: float = 0.0,
    compression_schemes: bool = True,
    name_offset: int = 0,
) -> list[TenantWorkload]:
    """Sample ``num_tenants`` independent tenant accounts.

    Parameters
    ----------
    num_tenants, partitions_per_tenant, months:
        Fleet shape: accounts, placement units per account, horizon length.
    seed:
        Deterministic base seed; tenant ``i`` uses ``seed + i`` for both its
        account and its series, independently of every other tenant.
    name_offset:
        First tenant index; names and seeds run from ``name_offset``.  Lets
        a later call mint *new* tenants (chaos ``TenantJoin`` joiners) that
        neither collide with nor perturb an existing roster generated from
        the same seed — tenant ``i`` is bit-identical whichever call range
        produced it.
    classes:
        The SLO service-class mix (see :func:`generate_slo_workload`).
    drift_mixes, drift_weights:
        Which :data:`FLEET_DRIFT_MIXES` behaviours partitions may follow and
        with what sampling weights (uniform by default).
    residency_providers, residency_fraction:
        Data-residency pinning forwarded to :func:`generate_slo_workload`.
    compression_schemes:
        When True each partition gets sampled gzip/snappy
        :class:`~repro.cloud.CompressionProfile` entries; False leaves the
        profile tables empty (tier assignment only).
    """
    if num_tenants <= 0:
        raise ValueError("num_tenants must be positive")
    if name_offset < 0:
        raise ValueError("name_offset must be non-negative")
    if months <= 0:
        raise ValueError("months must be positive")
    if not drift_mixes:
        raise ValueError("at least one drift mix is required")
    for mix in drift_mixes:
        if mix not in FLEET_DRIFT_MIXES:
            raise ValueError(
                f"unknown drift mix {mix!r}; expected one of {FLEET_DRIFT_MIXES}"
            )
    if drift_weights is not None:
        if len(drift_weights) != len(drift_mixes):
            raise ValueError("drift_weights must match drift_mixes in length")
        weights = np.asarray(drift_weights, dtype=np.float64)
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("drift_weights must be non-negative and sum > 0")
        weights = weights / weights.sum()
    else:
        weights = np.full(len(drift_mixes), 1.0 / len(drift_mixes))

    tenants: list[TenantWorkload] = []
    for index in range(name_offset, name_offset + num_tenants):
        tenant_seed = seed + index
        account = generate_slo_workload(
            partitions_per_tenant,
            seed=tenant_seed,
            classes=classes,
            residency_providers=residency_providers,
            residency_fraction=residency_fraction,
        )
        rng = np.random.default_rng((tenant_seed, 0xF1EE7))
        series: dict[str, list[float]] = {}
        profiles: dict[str, dict[str, CompressionProfile]] = {}
        drift_mix_of: dict[str, str] = {}
        for partition in account.partitions:
            mix = drift_mixes[int(rng.choice(len(drift_mixes), p=weights))]
            drift_mix_of[partition.name] = mix
            series[partition.name] = generate_drifting_reads(
                rng,
                _segments(mix, months),
                base_level=max(partition.predicted_accesses, 1.0),
            )
            if compression_schemes:
                profiles[partition.name] = {
                    "gzip": CompressionProfile(
                        "gzip",
                        ratio=float(rng.uniform(2.5, 5.0)),
                        decompression_s_per_gb=float(rng.uniform(0.8, 1.5)),
                    ),
                    "snappy": CompressionProfile(
                        "snappy",
                        ratio=float(rng.uniform(1.5, 2.5)),
                        decompression_s_per_gb=float(rng.uniform(0.05, 0.2)),
                    ),
                }
        tenants.append(
            TenantWorkload(
                name=f"tenant_{index:03d}",
                workload=account,
                series=series,
                profiles=profiles,
                drift_mix_of=drift_mix_of,
            )
        )
    return tenants
