"""Workload substrate: synthetic TPC-H-like data, query workloads and enterprise logs.

Stands in for the paper's TPC-H dbgen data and the proprietary Adobe
Experience Platform access logs (see DESIGN.md, substitution table).
"""

from .access_logs import (
    AccessPattern,
    DriftSegment,
    PATTERN_NAMES,
    generate_drifting_reads,
    generate_monthly_reads,
    generate_monthly_writes,
    zipf_dataset_weights,
)
from .fleet import (
    FLEET_DRIFT_MIXES,
    TenantWorkload,
    generate_fleet_workload,
)
from .enterprise import (
    CUSTOMER_ACCOUNT_PRESETS,
    EnterpriseCatalogConfig,
    generate_enterprise_catalog,
    generate_enterprise_tables,
)
from .queries import (
    QueryFamily,
    QueryWorkload,
    TableFiles,
    build_query_families,
    generate_tpch_queries,
    query_footprint,
    split_table_into_files,
    zipf_frequencies,
)
from .streams import (
    PoissonZipfStream,
    RateModulation,
    TRACE_COLUMNS,
    TraceStream,
    compose_modulations,
    diurnal_modulation,
    flash_crowd,
    merge_streams,
    tenant_rate_skew,
    write_trace_csv,
)
from .slo import (
    DEFAULT_SLO_CLASSES,
    SloClass,
    SloWorkload,
    generate_slo_workload,
)
from .tpch import TPCH_TABLE_NAMES, TpchConfig, TpchDatabase, generate_tpch

__all__ = [
    "AccessPattern",
    "DriftSegment",
    "PATTERN_NAMES",
    "generate_drifting_reads",
    "generate_monthly_reads",
    "generate_monthly_writes",
    "zipf_dataset_weights",
    "EnterpriseCatalogConfig",
    "generate_enterprise_catalog",
    "generate_enterprise_tables",
    "CUSTOMER_ACCOUNT_PRESETS",
    "QueryFamily",
    "QueryWorkload",
    "TableFiles",
    "build_query_families",
    "generate_tpch_queries",
    "query_footprint",
    "split_table_into_files",
    "zipf_frequencies",
    "DEFAULT_SLO_CLASSES",
    "SloClass",
    "SloWorkload",
    "generate_slo_workload",
    "FLEET_DRIFT_MIXES",
    "TenantWorkload",
    "generate_fleet_workload",
    "PoissonZipfStream",
    "RateModulation",
    "TRACE_COLUMNS",
    "TraceStream",
    "compose_modulations",
    "diurnal_modulation",
    "flash_crowd",
    "merge_streams",
    "tenant_rate_skew",
    "write_trace_csv",
    "TPCH_TABLE_NAMES",
    "TpchConfig",
    "TpchDatabase",
    "generate_tpch",
]
