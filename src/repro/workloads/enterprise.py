"""Synthetic enterprise data-lake catalogs (Enterprise Data I and II analogues).

Enterprise Data I in the paper is a set of customer accounts on the Adobe
Experience Platform data lake, each holding hundreds of datasets from GB to PB
in size with historical dataset-level access logs.  Enterprise Data II is a
small collection of three tables (~1.5 GB) with full data access but no logs,
for which the authors generate Zipf-skewed query workloads.

Neither dataset is public; these generators produce catalogs with the same
structural properties the optimizer and predictor depend on (size
distributions, age distributions, access-pattern mix, skew across datasets),
parameterised so that the Table II customer accounts (0.05 - 0.6 PB) can be
mimicked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloud import Dataset, DatasetCatalog
from ..tabular import Table, random_table
from .access_logs import (
    AccessPattern,
    PATTERN_NAMES,
    generate_monthly_reads,
    generate_monthly_writes,
    zipf_dataset_weights,
)

__all__ = [
    "EnterpriseCatalogConfig",
    "generate_enterprise_catalog",
    "generate_enterprise_tables",
    "CUSTOMER_ACCOUNT_PRESETS",
]


@dataclass(frozen=True)
class EnterpriseCatalogConfig:
    """Knobs for the Enterprise-Data-I-style catalog generator.

    ``total_size_gb`` is the target total volume of the account; individual
    dataset sizes follow a log-normal distribution rescaled to hit the target
    (data lakes show exactly this long-tailed size distribution).  The access
    pattern mix defaults to the qualitative proportions described in the
    paper: most datasets are cold or decaying, a minority is hot.
    """

    num_datasets: int = 400
    total_size_gb: float = 500_000.0
    history_months: int = 12
    seed: int = 23
    pattern_mix: tuple[tuple[str, float], ...] = (
        (AccessPattern.INACTIVE, 0.35),
        (AccessPattern.DECAYING, 0.25),
        (AccessPattern.CONSTANT, 0.15),
        (AccessPattern.PERIODIC, 0.15),
        (AccessPattern.SPIKE, 0.10),
    )
    access_skew_exponent: float = 1.1
    total_monthly_accesses: float = 50_000.0
    latency_threshold_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.num_datasets <= 0:
            raise ValueError("num_datasets must be positive")
        if self.total_size_gb <= 0:
            raise ValueError("total_size_gb must be positive")
        if self.history_months <= 0:
            raise ValueError("history_months must be positive")
        weights = [weight for _, weight in self.pattern_mix]
        if abs(sum(weights) - 1.0) > 1e-6:
            raise ValueError("pattern_mix weights must sum to 1")
        unknown = {name for name, _ in self.pattern_mix} - set(PATTERN_NAMES)
        if unknown:
            raise ValueError(f"unknown access patterns in mix: {sorted(unknown)}")


#: Approximate Table II customer accounts: (name, total PB, number of datasets).
CUSTOMER_ACCOUNT_PRESETS: tuple[tuple[str, float, int], ...] = (
    ("customer_a", 0.56, 700),
    ("customer_b", 0.45, 463),
    ("customer_c", 0.053, 250),
    ("customer_d", 0.085, 300),
)


def generate_enterprise_catalog(
    config: EnterpriseCatalogConfig | None = None,
) -> tuple[DatasetCatalog, dict[str, str]]:
    """Generate a dataset catalog with access logs.

    Returns the catalog and a mapping from dataset name to the access-pattern
    class it was generated with (useful for stratified analysis and tests).
    """
    config = config or EnterpriseCatalogConfig()
    rng = np.random.default_rng(config.seed)

    # Long-tailed dataset sizes rescaled to the account's total volume.
    raw_sizes = rng.lognormal(mean=0.0, sigma=1.6, size=config.num_datasets)
    sizes = raw_sizes / raw_sizes.sum() * config.total_size_gb

    # Access weights across datasets are Zipf-skewed (Fig. 1a).
    weights = zipf_dataset_weights(
        rng, config.num_datasets, exponent=config.access_skew_exponent
    )

    # Assign qualitative patterns according to the mix.
    pattern_names = [name for name, _ in config.pattern_mix]
    pattern_probabilities = [weight for _, weight in config.pattern_mix]
    assigned = rng.choice(
        pattern_names, size=config.num_datasets, p=pattern_probabilities
    )

    datasets = []
    pattern_of: dict[str, str] = {}
    for index in range(config.num_datasets):
        name = f"dataset_{index:05d}"
        pattern = str(assigned[index])
        age = int(rng.integers(1, config.history_months + 1))
        base_level = float(weights[index] * config.total_monthly_accesses)
        reads = generate_monthly_reads(rng, pattern, months=age, base_level=base_level)
        writes = generate_monthly_writes(rng, months=age)
        datasets.append(
            Dataset(
                name=name,
                size_gb=float(sizes[index]),
                created_month=config.history_months - age,
                monthly_reads=reads,
                monthly_writes=writes,
                current_tier=0,
                latency_threshold_s=config.latency_threshold_s,
            )
        )
        pattern_of[name] = pattern
    return DatasetCatalog(datasets), pattern_of


def generate_enterprise_tables(
    seed: int = 31,
    num_rows: tuple[int, int, int] = (4_000, 2_500, 1_500),
) -> dict[str, Table]:
    """Three concrete tables standing in for Enterprise Data II (~1.5 GB, 3 tables).

    The three tables differ in repetitiveness (categorical cardinality) so that
    compression behaves differently on each, as it would across real customer
    event, profile and lookup tables.
    """
    if len(num_rows) != 3:
        raise ValueError("exactly three row counts are required")
    rng = np.random.default_rng(seed)
    events = random_table(
        rng,
        num_rows[0],
        name="events",
        categorical_cardinality=16,
        num_categorical=3,
        num_int=2,
        num_float=1,
        num_text=1,
    )
    profiles = random_table(
        rng,
        num_rows[1],
        name="profiles",
        categorical_cardinality=64,
        num_categorical=2,
        num_int=2,
        num_float=2,
        num_text=2,
    )
    lookups = random_table(
        rng,
        num_rows[2],
        name="lookups",
        categorical_cardinality=8,
        num_categorical=4,
        num_int=1,
        num_float=0,
        num_text=0,
    )
    return {table.name: table for table in (events, profiles, lookups)}
