"""Query workload generation: templates, frequencies, and file footprints.

SCOPe is driven by *access logs*, i.e. which files each query touches and how
often it runs.  This module provides:

* :class:`TableFiles` — a dataset split into fixed-size files (row ranges),
  which is how data lands in a data lake as ingestion batches;
* template-based query generation over the TPC-H-like tables (a small library
  of parameterised predicates mirroring the paper's "20 queries from each of
  the 22 templates" protocol, shrunk to the synthetic schema);
* :func:`query_footprint` — the minimal set of files a query must scan, in an
  attribute-agnostic way (a file is touched if any of its rows satisfies the
  query), exactly the granularity DATAPART works at;
* :class:`QueryFamily` — queries that map to the same file set, with an
  aggregate access frequency, which are DATAPART's *initial partitions*;
* uniform or Zipf-skewed frequency assignment across queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..cloud import FileBlock
from ..tabular import Predicate, Query, Table, run_query
from .tpch import TpchDatabase

__all__ = [
    "TableFiles",
    "split_table_into_files",
    "query_footprint",
    "QueryFamily",
    "QueryWorkload",
    "generate_tpch_queries",
    "zipf_frequencies",
    "build_query_families",
]

_GB = 1024.0 ** 3


@dataclass
class TableFiles:
    """A table split into contiguous row-range files (ingestion batches)."""

    table: Table
    files: list[FileBlock]
    row_ranges: list[tuple[int, int]]

    def __post_init__(self) -> None:
        if len(self.files) != len(self.row_ranges):
            raise ValueError("files and row_ranges must align")

    @property
    def file_ids(self) -> list[str]:
        return [block.file_id for block in self.files]

    @property
    def total_size_gb(self) -> float:
        return float(sum(block.size_gb for block in self.files))

    def file_for_row(self, row_index: int) -> str:
        """File id containing ``row_index``."""
        for block, (start, stop) in zip(self.files, self.row_ranges):
            if start <= row_index < stop:
                return block.file_id
        raise IndexError(f"row {row_index} outside table of {self.table.num_rows} rows")

    def block_by_id(self, file_id: str) -> FileBlock:
        for block in self.files:
            if block.file_id == file_id:
                return block
        raise KeyError(f"unknown file id {file_id!r}")


def split_table_into_files(
    table: Table, rows_per_file: int, size_scale: float = 1.0
) -> TableFiles:
    """Split ``table`` into files of ``rows_per_file`` consecutive rows.

    ``size_scale`` inflates the per-file GB size so a laptop-scale synthetic
    table can stand in for a 100 GB or 1 TB dataset: the row *counts* stay
    small but the cost model sees paper-scale volumes.
    """
    if rows_per_file <= 0:
        raise ValueError("rows_per_file must be positive")
    if size_scale <= 0:
        raise ValueError("size_scale must be positive")
    bytes_per_row = max(table.approx_row_bytes(), 1.0)
    files: list[FileBlock] = []
    row_ranges: list[tuple[int, int]] = []
    index = 0
    for start in range(0, table.num_rows, rows_per_file):
        stop = min(start + rows_per_file, table.num_rows)
        rows = stop - start
        files.append(
            FileBlock(
                file_id=f"{table.name}.f{index:04d}",
                num_records=rows,
                size_gb=rows * bytes_per_row * size_scale / _GB,
            )
        )
        row_ranges.append((start, stop))
        index += 1
    return TableFiles(table=table, files=files, row_ranges=row_ranges)


def query_footprint(table_files: TableFiles, query: Query) -> frozenset[str]:
    """The set of file ids containing at least one row matched by ``query``.

    This is the attribute-agnostic "minimal set of records to scan" notion
    the paper uses: the partitioner never looks at which attributes a query
    reads, only at which files it must open.
    """
    table = table_files.table
    if not query.predicates:
        return frozenset(table_files.file_ids)
    columns = {p.column: table[p.column] for p in query.predicates}
    touched: set[str] = set()
    for (start, stop), block in zip(table_files.row_ranges, table_files.files):
        for row in range(start, stop):
            if all(p.matches(columns[p.column][row]) for p in query.predicates):
                touched.add(block.file_id)
                break
    return frozenset(touched)


@dataclass
class QueryFamily:
    """All queries that touch the same set of files, with aggregate frequency."""

    name: str
    file_ids: frozenset[str]
    frequency: float
    num_records: int
    size_gb: float
    queries: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.frequency < 0:
            raise ValueError("frequency must be non-negative")
        if not isinstance(self.file_ids, frozenset):
            self.file_ids = frozenset(self.file_ids)


@dataclass
class QueryWorkload:
    """A set of queries with access frequencies over one or more tables."""

    queries: list[Query]
    frequencies: list[float]

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.frequencies):
            raise ValueError("queries and frequencies must have the same length")
        if any(f < 0 for f in self.frequencies):
            raise ValueError("frequencies must be non-negative")

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def total_accesses(self) -> float:
        return float(sum(self.frequencies))


def zipf_frequencies(
    rng: np.random.Generator,
    num_queries: int,
    total_accesses: float,
    exponent: float = 1.2,
) -> list[float]:
    """Zipf-distributed access frequencies summing to ``total_accesses``.

    ``exponent == 0`` degenerates to a uniform workload.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if total_accesses < 0:
        raise ValueError("total_accesses must be non-negative")
    ranks = np.arange(1, num_queries + 1, dtype=float)
    weights = 1.0 / ranks ** exponent if exponent > 0 else np.ones(num_queries)
    weights /= weights.sum()
    rng.shuffle(weights)
    return [float(w * total_accesses) for w in weights]


# ---------------------------------------------------------------------------
# Query templates over the TPC-H-like schema
# ---------------------------------------------------------------------------

def _date_range(rng: np.random.Generator, months: int = 6) -> tuple[str, str]:
    year = int(rng.integers(1992, 1999))
    month = int(rng.integers(1, 13))
    end_month = month + months
    end_year = year + (end_month - 1) // 12
    end_month = (end_month - 1) % 12 + 1
    return f"{year:04d}-{month:02d}-01", f"{end_year:04d}-{end_month:02d}-28"


def _template_library() -> list[Callable[[np.random.Generator, TpchDatabase], Query]]:
    """22 parameterised templates echoing the flavour of the TPC-H query set."""

    def lineitem_shipdate(rng, db):
        low, high = _date_range(rng, months=int(rng.integers(3, 13)))
        return Query("lineitem", (Predicate("l_shipdate", "between", (low, high)),), name="q_shipdate")

    def lineitem_quantity(rng, db):
        low = int(rng.integers(1, 40))
        return Query("lineitem", (Predicate("l_quantity", ">=", low),), name="q_quantity")

    def lineitem_discount(rng, db):
        low = round(float(rng.uniform(0.0, 0.06)), 2)
        return Query("lineitem", (Predicate("l_discount", "between", (low, low + 0.02)),), name="q_discount")

    def lineitem_returnflag(rng, db):
        flag = ["A", "N", "R"][int(rng.integers(0, 3))]
        return Query("lineitem", (Predicate("l_returnflag", "==", flag),), name="q_returnflag")

    def lineitem_shipmode(rng, db):
        modes = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
        mode = modes[int(rng.integers(0, len(modes)))]
        return Query("lineitem", (Predicate("l_shipmode", "==", mode),), name="q_shipmode")

    def lineitem_recent(rng, db):
        low, _ = _date_range(rng, months=1)
        return Query("lineitem", (Predicate("l_shipdate", ">=", low),), name="q_recent_lineitem")

    def lineitem_order_range(rng, db):
        n_orders = db["orders"].num_rows
        start = int(rng.integers(1, max(2, n_orders // 2)))
        return Query("lineitem", (Predicate("l_orderkey", "between", (start, start + max(1, n_orders // 10))),), name="q_orderkey_range")

    def orders_date(rng, db):
        low, high = _date_range(rng, months=int(rng.integers(3, 13)))
        return Query("orders", (Predicate("o_orderdate", "between", (low, high)),), name="q_orderdate")

    def orders_priority(rng, db):
        priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
        priority = priorities[int(rng.integers(0, len(priorities)))]
        return Query("orders", (Predicate("o_orderpriority", "==", priority),), name="q_priority")

    def orders_status(rng, db):
        status = ["F", "O", "P"][int(rng.integers(0, 3))]
        return Query("orders", (Predicate("o_orderstatus", "==", status),), name="q_status")

    def orders_price(rng, db):
        low = float(rng.uniform(1_000, 300_000))
        return Query("orders", (Predicate("o_totalprice", ">=", low),), name="q_totalprice")

    def orders_customer(rng, db):
        n_customer = db["customer"].num_rows
        start = int(rng.integers(1, max(2, n_customer // 2)))
        return Query("orders", (Predicate("o_custkey", "between", (start, start + max(1, n_customer // 20))),), name="q_custrange")

    def customer_segment(rng, db):
        segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
        segment = segments[int(rng.integers(0, len(segments)))]
        return Query("customer", (Predicate("c_mktsegment", "==", segment),), name="q_segment")

    def customer_balance(rng, db):
        low = float(rng.uniform(0, 5_000))
        return Query("customer", (Predicate("c_acctbal", ">=", low),), name="q_balance")

    def customer_nation(rng, db):
        n_nation = db["nation"].num_rows
        nation = int(rng.integers(0, n_nation))
        return Query("customer", (Predicate("c_nationkey", "==", nation),), name="q_cust_nation")

    def part_size(rng, db):
        low = int(rng.integers(1, 40))
        return Query("part", (Predicate("p_size", "between", (low, low + 10)),), name="q_partsize")

    def part_brand(rng, db):
        brand = f"Brand#{int(rng.integers(1, 6))}{int(rng.integers(1, 6))}"
        return Query("part", (Predicate("p_brand", "==", brand),), name="q_brand")

    def part_container(rng, db):
        containers = ["JUMBO BOX", "LG CASE", "MED BAG", "SM PACK", "WRAP DRUM"]
        container = containers[int(rng.integers(0, len(containers)))]
        return Query("part", (Predicate("p_container", "==", container),), name="q_container")

    def partsupp_cost(rng, db):
        low = float(rng.uniform(1, 800))
        return Query("partsupp", (Predicate("ps_supplycost", "<=", low),), name="q_supplycost")

    def partsupp_qty(rng, db):
        low = int(rng.integers(1, 8_000))
        return Query("partsupp", (Predicate("ps_availqty", ">=", low),), name="q_availqty")

    def supplier_balance(rng, db):
        low = float(rng.uniform(0, 5_000))
        return Query("supplier", (Predicate("s_acctbal", ">=", low),), name="q_supp_balance")

    def supplier_nation(rng, db):
        n_nation = db["nation"].num_rows
        nation = int(rng.integers(0, n_nation))
        return Query("supplier", (Predicate("s_nationkey", "==", nation),), name="q_supp_nation")

    return [
        lineitem_shipdate, lineitem_quantity, lineitem_discount, lineitem_returnflag,
        lineitem_shipmode, lineitem_recent, lineitem_order_range,
        orders_date, orders_priority, orders_status, orders_price, orders_customer,
        customer_segment, customer_balance, customer_nation,
        part_size, part_brand, part_container,
        partsupp_cost, partsupp_qty,
        supplier_balance, supplier_nation,
    ]


def generate_tpch_queries(
    database: TpchDatabase,
    queries_per_template: int = 20,
    total_accesses: float = 1_000.0,
    skew_exponent: float = 0.0,
    seed: int = 11,
) -> QueryWorkload:
    """Generate a workload from the 22 templates (paper: 20 queries per template)."""
    if queries_per_template <= 0:
        raise ValueError("queries_per_template must be positive")
    rng = np.random.default_rng(seed)
    templates = _template_library()
    queries: list[Query] = []
    for template_index, template in enumerate(templates):
        for instance in range(queries_per_template):
            query = template(rng, database)
            queries.append(
                Query(
                    table=query.table,
                    predicates=query.predicates,
                    projection=query.projection,
                    name=f"{query.name}_{template_index:02d}_{instance:02d}",
                )
            )
    if skew_exponent > 0:
        # The enterprise logs show a recency pattern: most accesses go to
        # queries over recent time windows.  We therefore hand the largest
        # Zipf weights to the date-range queries (most recent range first) and
        # the tail to the non-temporal queries, instead of assigning ranks at
        # random.  This mirrors how skewed analytical workloads concentrate on
        # fresh data and is what makes access-aware partitioning worthwhile.
        ranks = np.arange(1, len(queries) + 1, dtype=float)
        weights = 1.0 / ranks ** skew_exponent
        weights /= weights.sum()
        order = sorted(
            range(len(queries)),
            key=lambda index: (_recency_rank(queries[index]), rng.uniform()),
        )
        frequencies = [0.0] * len(queries)
        for rank, query_index in enumerate(order):
            frequencies[query_index] = float(weights[rank] * total_accesses)
    else:
        frequencies = [total_accesses / len(queries)] * len(queries)
    return QueryWorkload(queries=queries, frequencies=frequencies)


def _recency_rank(query: Query) -> tuple[int, str]:
    """Sort key giving date-range queries (most recent first) the lowest ranks."""
    latest_date = ""
    for predicate in query.predicates:
        values = []
        if isinstance(predicate.value, (tuple, list)):
            values = [str(v) for v in predicate.value]
        else:
            values = [str(predicate.value)]
        for value in values:
            if len(value) == 10 and value[4] == "-" and value[7] == "-":
                latest_date = max(latest_date, value)
    if latest_date:
        # Negative ordering on the date string: newer dates sort first.
        return (0, "".join(chr(255 - ord(c)) for c in latest_date))
    return (1, "")


def build_query_families(
    table_files: dict[str, TableFiles], workload: QueryWorkload
) -> list[QueryFamily]:
    """Group the workload's queries into query families (DATAPART's initial partitions).

    Two queries belong to the same family when they touch exactly the same
    files.  Queries with an empty footprint (no matching rows) are dropped —
    they never cause any scan cost.
    """
    grouped: dict[tuple[str, frozenset[str]], dict] = {}
    for query, frequency in zip(workload.queries, workload.frequencies):
        files = table_files.get(query.table)
        if files is None:
            raise KeyError(f"no file split provided for table {query.table!r}")
        footprint = query_footprint(files, query)
        if not footprint:
            continue
        key = (query.table, footprint)
        if key not in grouped:
            blocks = [files.block_by_id(file_id) for file_id in footprint]
            grouped[key] = {
                "frequency": 0.0,
                "queries": [],
                "num_records": sum(block.num_records for block in blocks),
                "size_gb": sum(block.size_gb for block in blocks),
            }
        grouped[key]["frequency"] += frequency
        grouped[key]["queries"].append(query.name)

    families = []
    for index, ((table_name, footprint), info) in enumerate(sorted(
        grouped.items(), key=lambda item: (item[0][0], sorted(item[0][1]))
    )):
        families.append(
            QueryFamily(
                name=f"{table_name}.family{index:04d}",
                file_ids=footprint,
                frequency=info["frequency"],
                num_records=info["num_records"],
                size_gb=info["size_gb"],
                queries=tuple(info["queries"]),
            )
        )
    return families
