"""SLO-annotated placement workloads for the multi-cloud OPTASSIGN scenarios.

The paper's workloads carry a single latency SLA per partition.  Production
tiering requests are richer: a partition belongs to a *service class*
("interactive" dashboards, "analytics" scans, "batch" pipelines, "archive"
retention) that fixes both its expected-latency SLA and — for the classes
that demand one — a cap on the *tier's published read-latency SLO*
(:attr:`repro.cloud.StorageTier.effective_slo_s`), plus possibly a
data-residency pin to a subset of cloud providers.

:func:`generate_slo_workload` samples such a mixed account deterministically
from a seed, returning the partitions together with the ``latency_slo_s`` and
``provider_affinity`` mappings :class:`~repro.core.optassign.OptAssignProblem`
and :class:`~repro.engine.OnlineTieringEngine` accept directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cloud import DataPartition

__all__ = ["SloClass", "SloWorkload", "DEFAULT_SLO_CLASSES", "generate_slo_workload"]


@dataclass(frozen=True)
class SloClass:
    """One service class: sampling weight, SLA/SLO bounds, size and heat ranges.

    ``slo_cap_s`` is the cap on the destination tier's published read-latency
    SLO (``None`` = the class does not constrain tier SLOs), while
    ``latency_threshold_s`` is the usual expected-access-latency SLA that also
    accounts for decompression.  Sizes are GB, reads are monthly.
    """

    name: str
    weight: float
    latency_threshold_s: float
    slo_cap_s: float | None
    size_gb_range: tuple[float, float]
    monthly_reads_range: tuple[float, float]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        if self.slo_cap_s is not None and self.slo_cap_s <= 0:
            raise ValueError("slo_cap_s must be positive when set")
        for label, (low, high) in (
            ("size_gb_range", self.size_gb_range),
            ("monthly_reads_range", self.monthly_reads_range),
        ):
            if low < 0 or high < low:
                raise ValueError(f"{label} must satisfy 0 <= low <= high")


#: A realistic mixed account: a hot interactive sliver, warm analytics, big
#: batch datasets and a cold archival tail.  The interactive/analytics caps
#: are chosen so that only genuinely fast tiers qualify (e.g. the 50 ms cap
#: admits S3 standard and Azure premium but not Azure hot's 100 ms SLO).
DEFAULT_SLO_CLASSES: tuple[SloClass, ...] = (
    SloClass(
        name="interactive",
        weight=0.2,
        latency_threshold_s=1.0,
        slo_cap_s=0.05,
        size_gb_range=(1.0, 50.0),
        monthly_reads_range=(200.0, 2000.0),
    ),
    SloClass(
        name="analytics",
        weight=0.3,
        latency_threshold_s=300.0,
        slo_cap_s=0.2,
        size_gb_range=(50.0, 500.0),
        monthly_reads_range=(5.0, 100.0),
    ),
    SloClass(
        name="batch",
        weight=0.3,
        latency_threshold_s=7200.0,
        slo_cap_s=None,
        size_gb_range=(100.0, 1000.0),
        monthly_reads_range=(0.2, 5.0),
    ),
    SloClass(
        name="archive",
        weight=0.2,
        latency_threshold_s=math.inf,
        slo_cap_s=None,
        size_gb_range=(500.0, 5000.0),
        monthly_reads_range=(0.0, 0.2),
    ),
)


@dataclass
class SloWorkload:
    """The generated account, in the exact shape the solvers consume."""

    partitions: list[DataPartition]
    latency_slo_s: dict[str, float]
    provider_affinity: dict[str, frozenset[str]]
    class_of: dict[str, str] = field(default_factory=dict)

    @property
    def total_gb(self) -> float:
        return float(sum(partition.size_gb for partition in self.partitions))

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in self.class_of.values():
            counts[name] = counts.get(name, 0) + 1
        return counts


def generate_slo_workload(
    num_partitions: int,
    seed: int = 0,
    classes: Sequence[SloClass] = DEFAULT_SLO_CLASSES,
    residency_providers: Sequence[str] | None = None,
    residency_fraction: float = 0.0,
) -> SloWorkload:
    """Sample a mixed SLO-annotated account.

    Parameters
    ----------
    num_partitions:
        How many placement units to generate.
    seed:
        Deterministic RNG seed.
    classes:
        The service-class mix (weights are normalised).
    residency_providers, residency_fraction:
        When both are given, roughly ``residency_fraction`` of the partitions
        are pinned to one provider drawn uniformly from
        ``residency_providers`` (data-residency / compliance pinning).  Leave
        the defaults for an affinity-free workload that any single-provider
        baseline can also serve.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if not classes:
        raise ValueError("at least one SLO class is required")
    if not 0.0 <= residency_fraction <= 1.0:
        raise ValueError("residency_fraction must be in [0, 1]")
    if residency_fraction > 0.0 and not residency_providers:
        raise ValueError(
            "residency_fraction > 0 requires residency_providers to draw from"
        )

    rng = np.random.default_rng(seed)
    weights = np.array([cls.weight for cls in classes], dtype=np.float64)
    weights = weights / weights.sum()

    partitions: list[DataPartition] = []
    latency_slo_s: dict[str, float] = {}
    provider_affinity: dict[str, frozenset[str]] = {}
    class_of: dict[str, str] = {}
    for index in range(num_partitions):
        cls = classes[int(rng.choice(len(classes), p=weights))]
        name = f"{cls.name}_{index:04d}"
        low, high = cls.size_gb_range
        size_gb = float(rng.uniform(low, high))
        low, high = cls.monthly_reads_range
        monthly_reads = float(rng.uniform(low, high))
        partitions.append(
            DataPartition(
                name=name,
                size_gb=size_gb,
                predicted_accesses=monthly_reads,
                latency_threshold_s=cls.latency_threshold_s,
            )
        )
        class_of[name] = cls.name
        if cls.slo_cap_s is not None:
            latency_slo_s[name] = cls.slo_cap_s
        if residency_providers and rng.random() < residency_fraction:
            pinned = str(residency_providers[int(rng.integers(len(residency_providers)))])
            provider_affinity[name] = frozenset({pinned})
    return SloWorkload(
        partitions=partitions,
        latency_slo_s=latency_slo_s,
        provider_affinity=provider_affinity,
        class_of=class_of,
    )
