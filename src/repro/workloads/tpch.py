"""A scaled-down, synthetic TPC-H-like database generator.

The paper evaluates COMPREDICT and the full SCOPe pipeline on TPC-H data at
1 GB, 100 GB and 1 TB scale (plus a Zipf-skewed variant).  The official dbgen
tool and the full data volumes are not available here, so this module
generates the same *schema shape* — the eight TPC-H tables with their
characteristic mix of keys, low-cardinality flags, dates, numeric measures and
free-text comments — at a laptop-friendly row count controlled by a scale
factor.  The quantities SCOPe consumes (bytes per layout, per-column value
distributions, query footprints) have the same structure as the real thing.

Row counts follow TPC-H's relative proportions (lineitem is by far the
largest, orders next, and so on); a ``scale`` of 1.0 corresponds to roughly
sixty thousand synthetic rows across all tables, and the ``skew`` parameter
switches value generation from uniform to Zipf-like (the paper's "TPC-H Skew"
variant with skew factor z ≈ 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tabular import Column, DataType, Table
from ..tabular.generators import random_strings

__all__ = ["TpchConfig", "TpchDatabase", "generate_tpch", "TPCH_TABLE_NAMES"]

#: The eight TPC-H tables, smallest to largest.
TPCH_TABLE_NAMES: tuple[str, ...] = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: Base row counts at scale 1.0 (proportions follow TPC-H; absolute values are
#: shrunk so the 8 tables total ~60k rows and fit comfortably in memory).
_BASE_ROWS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 200,
    "customer": 3_000,
    "part": 4_000,
    "partsupp": 8_000,
    "orders": 15_000,
    "lineitem": 30_000,
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_ORDER_STATUS = ["F", "O", "P"]
_RETURN_FLAGS = ["A", "N", "R"]
_LINE_STATUS = ["F", "O"]
_CONTAINERS = ["JUMBO BOX", "LG CASE", "MED BAG", "SM PACK", "WRAP DRUM"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]


@dataclass(frozen=True)
class TpchConfig:
    """Generation parameters for the synthetic TPC-H-like database."""

    scale: float = 1.0
    skew: float = 0.0
    seed: int = 7
    comment_length: int = 24

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")

    def rows_for(self, table_name: str) -> int:
        base = _BASE_ROWS[table_name]
        return max(1, int(round(base * self.scale)))


@dataclass
class TpchDatabase:
    """The generated tables plus the configuration that produced them."""

    config: TpchConfig
    tables: dict[str, Table] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Table:
        return self.tables[name]

    def __contains__(self, name: object) -> bool:
        return name in self.tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self.tables)

    @property
    def total_rows(self) -> int:
        return sum(table.num_rows for table in self.tables.values())


def _skewed_integers(
    rng: np.random.Generator, count: int, high: int, skew: float
) -> np.ndarray:
    """Integers in [1, high], uniform when skew == 0 and Zipf-like otherwise."""
    if high < 1:
        raise ValueError("high must be at least 1")
    if skew <= 0:
        return rng.integers(1, high + 1, size=count)
    ranks = np.arange(1, high + 1, dtype=float)
    weights = 1.0 / ranks ** skew
    weights /= weights.sum()
    return rng.choice(np.arange(1, high + 1), size=count, p=weights)


def _dates(rng: np.random.Generator, count: int, skew: float) -> list[str]:
    """ISO dates in the TPC-H 1992-1998 range (recent dates favoured under skew)."""
    days_range = 7 * 365
    if skew <= 0:
        offsets = rng.integers(0, days_range, size=count)
    else:
        # Zipf over "days ago" so recent dates dominate, echoing the recency
        # pattern of the enterprise logs.
        offsets = days_range - _skewed_integers(rng, count, days_range, skew)
    dates = []
    for offset in offsets:
        year = 1992 + int(offset) // 365
        day_of_year = int(offset) % 365
        month = min(12, day_of_year // 30 + 1)
        day = min(28, day_of_year % 30 + 1)
        dates.append(f"{year:04d}-{month:02d}-{day:02d}")
    return dates


def _choice(
    rng: np.random.Generator, values: list[str], count: int, skew: float
) -> list[str]:
    indices = _skewed_integers(rng, count, len(values), skew) - 1
    return [values[i] for i in indices]


def generate_tpch(config: TpchConfig | None = None) -> TpchDatabase:
    """Generate all eight TPC-H-like tables according to ``config``."""
    config = config or TpchConfig()
    rng = np.random.default_rng(config.seed)
    skew = config.skew
    comment_length = config.comment_length
    tables: dict[str, Table] = {}

    n_region = config.rows_for("region")
    tables["region"] = Table(
        [
            Column("r_regionkey", DataType.INT, list(range(n_region))),
            Column("r_name", DataType.STRING, [_REGIONS[i % len(_REGIONS)] for i in range(n_region)]),
            Column("r_comment", DataType.STRING, random_strings(rng, n_region, comment_length)),
        ],
        name="region",
    )

    n_nation = config.rows_for("nation")
    tables["nation"] = Table(
        [
            Column("n_nationkey", DataType.INT, list(range(n_nation))),
            Column("n_name", DataType.STRING, random_strings(rng, n_nation, 10)),
            Column("n_regionkey", DataType.INT, [int(v) for v in rng.integers(0, n_region, size=n_nation)]),
            Column("n_comment", DataType.STRING, random_strings(rng, n_nation, comment_length)),
        ],
        name="nation",
    )

    n_supplier = config.rows_for("supplier")
    tables["supplier"] = Table(
        [
            Column("s_suppkey", DataType.INT, list(range(1, n_supplier + 1))),
            Column("s_name", DataType.STRING, [f"Supplier#{i:09d}" for i in range(1, n_supplier + 1)]),
            Column("s_nationkey", DataType.INT, [int(v) for v in rng.integers(0, n_nation, size=n_supplier)]),
            Column("s_acctbal", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(-999, 9999, size=n_supplier)]),
            Column("s_comment", DataType.STRING, random_strings(rng, n_supplier, comment_length)),
        ],
        name="supplier",
    )

    n_customer = config.rows_for("customer")
    tables["customer"] = Table(
        [
            Column("c_custkey", DataType.INT, list(range(1, n_customer + 1))),
            Column("c_name", DataType.STRING, [f"Customer#{i:09d}" for i in range(1, n_customer + 1)]),
            Column("c_nationkey", DataType.INT, [int(v) for v in rng.integers(0, n_nation, size=n_customer)]),
            Column("c_mktsegment", DataType.STRING, _choice(rng, _SEGMENTS, n_customer, skew)),
            Column("c_acctbal", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(-999, 9999, size=n_customer)]),
            Column("c_comment", DataType.STRING, random_strings(rng, n_customer, comment_length)),
        ],
        name="customer",
    )

    n_part = config.rows_for("part")
    tables["part"] = Table(
        [
            Column("p_partkey", DataType.INT, list(range(1, n_part + 1))),
            Column("p_name", DataType.STRING, random_strings(rng, n_part, 18)),
            Column("p_brand", DataType.STRING, _choice(rng, _BRANDS, n_part, skew)),
            Column("p_container", DataType.STRING, _choice(rng, _CONTAINERS, n_part, skew)),
            Column("p_size", DataType.INT, [int(v) for v in _skewed_integers(rng, n_part, 50, skew)]),
            Column("p_retailprice", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(900, 2100, size=n_part)]),
            Column("p_comment", DataType.STRING, random_strings(rng, n_part, comment_length // 2)),
        ],
        name="part",
    )

    n_partsupp = config.rows_for("partsupp")
    tables["partsupp"] = Table(
        [
            Column("ps_partkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_partsupp, n_part, skew)]),
            Column("ps_suppkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_partsupp, n_supplier, skew)]),
            Column("ps_availqty", DataType.INT, [int(v) for v in rng.integers(1, 10_000, size=n_partsupp)]),
            Column("ps_supplycost", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(1, 1000, size=n_partsupp)]),
            Column("ps_comment", DataType.STRING, random_strings(rng, n_partsupp, comment_length)),
        ],
        name="partsupp",
    )

    # The two fact tables are stored ordered by their date column, the way
    # event data lands in a data lake (ingestion batches are time-ordered).
    # This is what makes date-range query footprints map to contiguous subsets
    # of files, which DATAPART exploits.
    n_orders = config.rows_for("orders")
    order_keys = list(range(1, n_orders + 1))
    tables["orders"] = Table(
        [
            Column("o_orderkey", DataType.INT, order_keys),
            Column("o_custkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_orders, n_customer, skew)]),
            Column("o_orderstatus", DataType.STRING, _choice(rng, _ORDER_STATUS, n_orders, skew)),
            Column("o_totalprice", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(850, 480_000, size=n_orders)]),
            Column("o_orderdate", DataType.STRING, _dates(rng, n_orders, skew)),
            Column("o_orderpriority", DataType.STRING, _choice(rng, _PRIORITIES, n_orders, skew)),
            Column("o_comment", DataType.STRING, random_strings(rng, n_orders, comment_length)),
        ],
        name="orders",
    ).sort_by("o_orderdate")

    n_lineitem = config.rows_for("lineitem")
    tables["lineitem"] = Table(
        [
            Column("l_orderkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_lineitem, n_orders, skew)]),
            Column("l_partkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_lineitem, n_part, skew)]),
            Column("l_suppkey", DataType.INT, [int(v) for v in _skewed_integers(rng, n_lineitem, n_supplier, skew)]),
            Column("l_quantity", DataType.INT, [int(v) for v in rng.integers(1, 51, size=n_lineitem)]),
            Column("l_extendedprice", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(900, 105_000, size=n_lineitem)]),
            Column("l_discount", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(0.0, 0.1, size=n_lineitem)]),
            Column("l_tax", DataType.FLOAT, [round(float(v), 2) for v in rng.uniform(0.0, 0.08, size=n_lineitem)]),
            Column("l_returnflag", DataType.STRING, _choice(rng, _RETURN_FLAGS, n_lineitem, skew)),
            Column("l_linestatus", DataType.STRING, _choice(rng, _LINE_STATUS, n_lineitem, skew)),
            Column("l_shipdate", DataType.STRING, _dates(rng, n_lineitem, skew)),
            Column("l_shipmode", DataType.STRING, _choice(rng, _SHIP_MODES, n_lineitem, skew)),
            Column("l_comment", DataType.STRING, random_strings(rng, n_lineitem, comment_length // 2)),
        ],
        name="lineitem",
    ).sort_by("l_shipdate")

    return TpchDatabase(config=config, tables=tables)
