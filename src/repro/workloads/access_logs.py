"""Synthetic enterprise access-log generation (the patterns of Figs. 1 and 2).

The paper's Enterprise Data I experiments rely on historical dataset-level
access logs with a handful of characteristic shapes:

* **skew** — a few datasets receive most accesses (Fig. 1a);
* **recency** — access frequency falls with dataset age (Fig. 1b);
* **decaying** — reads that decline month over month (Fig. 2 top-left);
* **constant** — a steady trickle of reads (Fig. 2 top-right);
* **periodic / seasonal** — regular peaks, e.g. year-on-year analysis
  (Fig. 2 bottom-left);
* **spike** — a one-time activation burst followed by silence (the marketing
  use case described in the introduction);
* **inactive** — ingested once and essentially never read again.

Each generator produces a monthly read-count series; the catalog generator in
:mod:`repro.workloads.enterprise` combines them with sizes and ages to build
full :class:`repro.cloud.Dataset` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AccessPattern",
    "DriftSegment",
    "generate_monthly_reads",
    "generate_drifting_reads",
    "generate_monthly_writes",
    "zipf_dataset_weights",
    "PATTERN_NAMES",
]


class AccessPattern:
    """Names of the qualitative access-trend classes shown in Fig. 2."""

    DECAYING = "decaying"
    CONSTANT = "constant"
    PERIODIC = "periodic"
    SPIKE = "spike"
    INACTIVE = "inactive"


PATTERN_NAMES: tuple[str, ...] = (
    AccessPattern.DECAYING,
    AccessPattern.CONSTANT,
    AccessPattern.PERIODIC,
    AccessPattern.SPIKE,
    AccessPattern.INACTIVE,
)


def generate_monthly_reads(
    rng: np.random.Generator,
    pattern: str,
    months: int,
    base_level: float = 100.0,
    noise: float = 0.15,
) -> list[float]:
    """A monthly read-count series of the requested qualitative shape.

    ``base_level`` sets the overall magnitude (it interacts with the Zipf
    weights across datasets), ``noise`` adds multiplicative jitter so the
    series are not perfectly clean.
    """
    if months <= 0:
        raise ValueError("months must be positive")
    if base_level < 0:
        raise ValueError("base_level must be non-negative")
    timeline = np.arange(months, dtype=float)

    if pattern == AccessPattern.DECAYING:
        # Exponential decay with a half-life of about a quarter of the history.
        half_life = max(months / 4.0, 1.0)
        series = base_level * 0.5 ** (timeline / half_life)
    elif pattern == AccessPattern.CONSTANT:
        series = np.full(months, base_level)
    elif pattern == AccessPattern.PERIODIC:
        # Twelve-month seasonality with a small baseline between peaks.
        period = 12.0
        phase = rng.uniform(0, 2 * np.pi)
        series = base_level * (
            0.15 + 0.85 * np.maximum(0.0, np.sin(2 * np.pi * timeline / period + phase)) ** 4
        )
    elif pattern == AccessPattern.SPIKE:
        series = np.zeros(months)
        spike_month = int(rng.integers(0, months))
        series[spike_month] = base_level * months / 3.0
        if spike_month + 1 < months:
            series[spike_month + 1] = base_level
    elif pattern == AccessPattern.INACTIVE:
        series = np.zeros(months)
        if months > 1 and rng.uniform() < 0.3:
            series[int(rng.integers(0, months))] = rng.uniform(0, 2)
    else:
        raise ValueError(
            f"unknown access pattern {pattern!r}; expected one of {PATTERN_NAMES}"
        )

    jitter = rng.normal(1.0, noise, size=months)
    series = np.maximum(series * np.clip(jitter, 0.0, None), 0.0)
    return [float(round(value, 3)) for value in series]


@dataclass(frozen=True)
class DriftSegment:
    """One phase of a drifting access series: a pattern held for some months.

    ``level_scale`` multiplies the series' base level during the segment, so a
    dataset can go from a cold trickle to a hot burst (or back) at a drift
    point without changing its qualitative shape parameters.
    """

    pattern: str
    months: int
    level_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.months <= 0:
            raise ValueError("segment months must be positive")
        if self.level_scale < 0:
            raise ValueError("level_scale must be non-negative")
        if self.pattern not in PATTERN_NAMES:
            raise ValueError(
                f"unknown access pattern {self.pattern!r}; expected one of {PATTERN_NAMES}"
            )


def generate_drifting_reads(
    rng: np.random.Generator,
    segments: "list[DriftSegment] | tuple[DriftSegment, ...]",
    base_level: float = 100.0,
    noise: float = 0.15,
) -> list[float]:
    """A monthly read series whose qualitative pattern *changes* over time.

    Real access logs drift: a dataset ingested for a marketing campaign sits
    inactive for a year and then spikes, a hot events table decays once its
    product is retired.  Batch SCOPe sees a single aggregate history; the
    online tiering engine (:mod:`repro.engine`) is driven by exactly these
    piecewise series, so its policies can be compared on how fast they react
    at the drift points.

    Each :class:`DriftSegment` is generated independently with
    :func:`generate_monthly_reads` and the phases are concatenated.
    """
    if not segments:
        raise ValueError("at least one drift segment is required")
    series: list[float] = []
    for segment in segments:
        series.extend(
            generate_monthly_reads(
                rng,
                segment.pattern,
                months=segment.months,
                base_level=base_level * segment.level_scale,
                noise=noise,
            )
        )
    return series


def generate_monthly_writes(
    rng: np.random.Generator,
    months: int,
    ingest_heavy: bool = True,
    base_level: float = 10.0,
) -> list[float]:
    """Monthly write counts: a big ingestion burst followed by incremental updates.

    This mirrors the paper's Fig. 2 bottom-right: writes concentrate around
    ingestion with a long, low tail of incremental appends.
    """
    if months <= 0:
        raise ValueError("months must be positive")
    series = np.full(months, base_level * 0.1)
    if ingest_heavy:
        series[0] = base_level * 10.0
    series *= np.clip(rng.normal(1.0, 0.2, size=months), 0.0, None)
    return [float(round(value, 3)) for value in series]


def zipf_dataset_weights(
    rng: np.random.Generator, num_datasets: int, exponent: float = 1.1
) -> np.ndarray:
    """Normalised access weights across datasets (Fig. 1a skew).

    The heaviest datasets get a weight orders of magnitude above the tail;
    shuffling decorrelates weight from dataset index.
    """
    if num_datasets <= 0:
        raise ValueError("num_datasets must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_datasets + 1, dtype=float)
    weights = 1.0 / ranks ** exponent if exponent > 0 else np.ones(num_datasets)
    weights /= weights.sum()
    rng.shuffle(weights)
    return weights
