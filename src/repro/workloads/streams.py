"""Continuous high-volume event streams (ROADMAP item 2, Icarus workload idiom).

The monthly generators in :mod:`repro.workloads.access_logs` materialize a
full read-count series up front; fine at a 6–24 month horizon, hopeless at
"millions of users".  This module instead produces **iterables of timestamped
events** (:class:`repro.cloud.TimedEvent`) that are generated on the fly, so
memory stays flat no matter how many events the horizon holds:

* :class:`PoissonZipfStream` — Poisson arrivals at a configurable rate with
  Zipf popularity over partitions, optionally modulated by a time-varying
  rate profile (diurnal cycles, flash crowds) via Lewis–Shedler thinning;
* :class:`TraceStream` — a trace-driven adapter replaying an external CSV
  access log (schema in ``schemas/access_trace.schema.json``) one row at a
  time;
* :func:`merge_streams` — a heap merge of several streams into one
  time-ordered stream (e.g. one stream per tenant with
  :func:`tenant_rate_skew` rates).

Every stream is **re-iterable**: each ``__iter__`` call re-derives its RNG
from the stored seed, so two passes over the same stream object yield the
identical sequence (the property the engine's oracle-equivalence tests and
the benchmark's dense-replay comparison rely on).

Virtual time is measured in fractional **months** — the billing unit every
catalog price is quoted against.  A "day" is ``1/30`` month; the default
diurnal period below follows that convention.
"""

from __future__ import annotations

import csv
import heapq
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..cloud import TimedEvent

__all__ = [
    "RateModulation",
    "diurnal_modulation",
    "flash_crowd",
    "compose_modulations",
    "PoissonZipfStream",
    "TraceStream",
    "write_trace_csv",
    "merge_streams",
    "tenant_rate_skew",
    "TRACE_COLUMNS",
]

DAYS_PER_MONTH = 30.0
"""Virtual-calendar convention: a month is exactly 30 days."""

TRACE_COLUMNS: tuple[str, ...] = ("t", "partition", "reads")
"""Column order of the CSV trace format (see ``schemas/access_trace.schema.json``)."""


# ---------------------------------------------------------------------------
# Rate modulation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RateModulation:
    """A multiplicative, time-varying factor applied to a stream's base rate.

    ``fn`` maps an array of event times (months) to non-negative multipliers;
    ``ceiling`` is an upper bound on ``fn`` over the whole horizon, used as
    the thinning envelope (arrivals are drawn at ``base_rate * ceiling`` and
    accepted with probability ``fn(t) / ceiling``).  A ``ceiling`` below the
    true supremum silently under-generates — the constructors below compute
    it exactly.
    """

    fn: Callable[[np.ndarray], np.ndarray]
    ceiling: float

    def __post_init__(self) -> None:
        if self.ceiling <= 0:
            raise ValueError("modulation ceiling must be positive")


def diurnal_modulation(
    amplitude: float = 0.5, period_months: float = 1.0 / DAYS_PER_MONTH
) -> RateModulation:
    """A sinusoidal day/night cycle: ``1 + amplitude * sin(2πt / period)``.

    ``amplitude`` must lie in ``[0, 1]`` so the rate never goes negative; the
    default period is one virtual day (1/30 month).
    """
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    if period_months <= 0:
        raise ValueError("period_months must be positive")
    omega = 2.0 * math.pi / period_months

    def fn(t: np.ndarray) -> np.ndarray:
        return 1.0 + amplitude * np.sin(omega * t)

    return RateModulation(fn=fn, ceiling=1.0 + amplitude)


def flash_crowd(
    start_month: float, magnitude: float = 10.0, duration_months: float = 0.1
) -> RateModulation:
    """A flash crowd: rate multiplied by ``magnitude`` for a bounded burst.

    Outside ``[start_month, start_month + duration_months)`` the factor is 1.
    """
    if magnitude < 1.0:
        raise ValueError("magnitude must be >= 1 (use modulation < 1 for lulls)")
    if duration_months <= 0:
        raise ValueError("duration_months must be positive")
    end_month = start_month + duration_months

    def fn(t: np.ndarray) -> np.ndarray:
        return np.where((t >= start_month) & (t < end_month), magnitude, 1.0)

    return RateModulation(fn=fn, ceiling=magnitude)


def compose_modulations(*modulations: RateModulation) -> RateModulation:
    """The pointwise product of several modulations (ceilings multiply)."""
    if not modulations:
        raise ValueError("at least one modulation is required")
    if len(modulations) == 1:
        return modulations[0]

    def fn(t: np.ndarray) -> np.ndarray:
        out = modulations[0].fn(t)
        for modulation in modulations[1:]:
            out = out * modulation.fn(t)
        return out

    ceiling = math.prod(m.ceiling for m in modulations)
    return RateModulation(fn=fn, ceiling=ceiling)


# ---------------------------------------------------------------------------
# Poisson / Zipf generator
# ---------------------------------------------------------------------------


class PoissonZipfStream:
    """Poisson arrivals with Zipf popularity over partitions, generated lazily.

    Events arrive as a Poisson process at ``rate_per_month`` (optionally
    modulated — see :class:`RateModulation`); each event reads one partition
    drawn from a Zipf(``zipf_exponent``) popularity distribution whose rank
    order is a seeded shuffle of ``partitions``.  Iteration yields
    :class:`repro.cloud.TimedEvent` in non-decreasing time order and keeps
    only one chunk (default 8192 candidate arrivals) in memory at a time, so
    a billion-event horizon costs the same RAM as a thousand-event one.

    Arrivals under a modulated rate use Lewis–Shedler thinning: candidates
    are drawn at the envelope rate ``rate_per_month * modulation.ceiling``
    and kept with probability ``modulation.fn(t) / ceiling`` — an exact
    simulation of the inhomogeneous process, still in O(chunk) memory.
    """

    def __init__(
        self,
        partitions: Sequence[str],
        rate_per_month: float,
        horizon_months: float,
        *,
        zipf_exponent: float = 1.1,
        seed: int = 0,
        modulation: RateModulation | None = None,
        reads_per_event: float = 1.0,
        start_month: float = 0.0,
        tenant: str | None = None,
        chunk_size: int = 8192,
    ) -> None:
        if not partitions:
            raise ValueError("at least one partition is required")
        if rate_per_month <= 0:
            raise ValueError("rate_per_month must be positive")
        if horizon_months <= 0:
            raise ValueError("horizon_months must be positive")
        if zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")
        if reads_per_event <= 0:
            raise ValueError("reads_per_event must be positive")
        if start_month < 0:
            raise ValueError("start_month must be non-negative")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.partitions = tuple(partitions)
        self.rate_per_month = float(rate_per_month)
        self.horizon_months = float(horizon_months)
        self.zipf_exponent = float(zipf_exponent)
        self.seed = int(seed)
        self.modulation = modulation
        self.reads_per_event = float(reads_per_event)
        self.start_month = float(start_month)
        self.tenant = tenant
        self.chunk_size = int(chunk_size)
        # Popularity is fixed per stream (not per pass): Zipf weights over a
        # seeded shuffle of the partition list, precomputed as a cumulative
        # distribution for O(log n) sampling via searchsorted.
        setup_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0xC0FFEE]).generate_state(4)
        )
        weights = self._zipf_weights(setup_rng)
        self._cumulative = np.cumsum(weights)
        self._cumulative[-1] = 1.0  # guard against float round-off at the tail

    def _zipf_weights(self, rng: np.random.Generator) -> np.ndarray:
        ranks = np.arange(1, len(self.partitions) + 1, dtype=float)
        if self.zipf_exponent > 0:
            weights = 1.0 / ranks**self.zipf_exponent
        else:
            weights = np.ones(len(self.partitions))
        weights /= weights.sum()
        rng.shuffle(weights)
        return weights

    @property
    def expected_events(self) -> float:
        """Mean number of events over the horizon at the *base* rate."""
        return self.rate_per_month * self.horizon_months

    def __iter__(self) -> Iterator[TimedEvent]:
        # A fresh generator per pass, derived from the stored seed, makes the
        # stream re-iterable with an identical sequence.
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0xA11CE]).generate_state(4)
        )
        ceiling = self.modulation.ceiling if self.modulation is not None else 1.0
        envelope_rate = self.rate_per_month * ceiling
        end = self.start_month + self.horizon_months
        t = self.start_month
        names = self.partitions
        reads = self.reads_per_event
        tenant = self.tenant
        while t < end:
            gaps = rng.exponential(1.0 / envelope_rate, size=self.chunk_size)
            times = t + np.cumsum(gaps)
            t = float(times[-1])
            keep = times < end
            times = times[keep]
            if times.size == 0:
                continue
            if self.modulation is not None:
                accept = rng.uniform(size=times.size) < (
                    self.modulation.fn(times) / ceiling
                )
                times = times[accept]
                if times.size == 0:
                    continue
            choices = np.searchsorted(
                self._cumulative, rng.uniform(size=times.size), side="right"
            )
            for when, index in zip(times.tolist(), choices.tolist()):
                yield TimedEvent(
                    t=when, partition=names[index], reads=reads, tenant=tenant
                )


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


class TraceStream:
    """Replay an external CSV access log as a stream of timed events.

    The file must have a header row and the columns ``t,partition,reads``
    (``reads`` optional, default 1.0) — the format described by
    ``schemas/access_trace.schema.json`` and validated by
    ``tools/validate_trace_csv.py``.  Rows must be sorted by ``t``
    (non-decreasing); a regression is reported with the offending line
    number.  Only one row is held in memory at a time.

    ``time_scale`` rescales the trace's time unit into months (e.g. a trace
    timestamped in days replays with ``time_scale=1/30``).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        time_scale: float = 1.0,
        tenant: str | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.path = Path(path)
        self.time_scale = float(time_scale)
        self.tenant = tenant

    def __iter__(self) -> Iterator[TimedEvent]:
        with self.path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise ValueError(f"trace {self.path} is empty (missing header row)")
            missing = [c for c in ("t", "partition") if c not in reader.fieldnames]
            if missing:
                raise ValueError(
                    f"trace {self.path} is missing required columns: {missing}"
                )
            last_t = -math.inf
            for row in reader:
                line = reader.line_num
                try:
                    t = float(row["t"]) * self.time_scale
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"trace {self.path} line {line}: bad time {row.get('t')!r}"
                    ) from exc
                partition = row["partition"]
                if not partition:
                    raise ValueError(
                        f"trace {self.path} line {line}: empty partition name"
                    )
                raw_reads = row.get("reads")
                if raw_reads in (None, ""):
                    reads = 1.0
                else:
                    try:
                        reads = float(raw_reads)
                    except ValueError as exc:
                        raise ValueError(
                            f"trace {self.path} line {line}: bad reads {raw_reads!r}"
                        ) from exc
                if t < last_t:
                    raise ValueError(
                        f"trace {self.path} line {line}: time goes backwards "
                        f"({t} after {last_t}); traces must be sorted by t"
                    )
                last_t = t
                yield TimedEvent(t=t, partition=partition, reads=reads, tenant=self.tenant)


def write_trace_csv(path: str | Path, events: Iterable[TimedEvent]) -> int:
    """Write a stream of events to the CSV trace format; returns the row count.

    The inverse of :class:`TraceStream` (the ``tenant`` tag is not part of
    the trace format and is dropped).  Streams through ``events`` without
    materializing them.
    """
    count = 0
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        for event in events:
            writer.writerow([repr(event.t), event.partition, repr(event.reads)])
            count += 1
    return count


# ---------------------------------------------------------------------------
# Multi-stream composition
# ---------------------------------------------------------------------------


class merge_streams:
    """Merge several time-ordered streams into one, lazily, by event time.

    A re-iterable wrapper over :func:`heapq.merge`: each pass re-iterates the
    underlying streams, so the merge inherits their re-iterability.  Ties are
    broken by stream position (stable), which keeps merged sequences
    deterministic.  Memory is O(number of streams).
    """

    def __init__(self, *streams: Iterable[TimedEvent]) -> None:
        if not streams:
            raise ValueError("at least one stream is required")
        self.streams = streams

    def __iter__(self) -> Iterator[TimedEvent]:
        return heapq.merge(*self.streams, key=lambda event: event.t)


def tenant_rate_skew(
    total_rate_per_month: float,
    tenants: Sequence[str],
    *,
    exponent: float = 1.0,
) -> Mapping[str, float]:
    """Split a fleet-wide event rate across tenants with a Zipf skew.

    The first tenant in ``tenants`` is the heaviest; ``exponent=0`` gives an
    even split.  Returns ``{tenant: rate_per_month}`` summing to the total.
    """
    if total_rate_per_month <= 0:
        raise ValueError("total_rate_per_month must be positive")
    if not tenants:
        raise ValueError("at least one tenant is required")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, len(tenants) + 1, dtype=float)
    weights = 1.0 / ranks**exponent if exponent > 0 else np.ones(len(tenants))
    weights /= weights.sum()
    return {
        tenant: float(total_rate_per_month * weight)
        for tenant, weight in zip(tenants, weights)
    }
