"""G-PART: the greedy partition-merging heuristic (Algorithm 1 of the paper).

The algorithm keeps a max-heap of feasible partition pairs keyed by their
fractional overlap, repeatedly merges the most-overlapping pair, and puts the
merged node back among the candidates unless it has grown past the soft span
cap ``S_thresh``.  Singletons that never merge remain as final partitions, so
every initial partition is covered.

Complexity: with ``m`` initial partitions, building the candidate edges is
``O(m^2)`` set intersections and the heap-driven merging is
``O(m^2 log m)``, matching the paper's analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from .graph import fractional_overlap
from .partitions import FileUniverse, InitialPartition, Merge, MergeConstraints

__all__ = ["GPartResult", "gpart"]


@dataclass
class GPartResult:
    """Output of G-PART: the final merges plus bookkeeping for reports."""

    merges: list[Merge]
    num_initial: int
    num_merge_operations: int

    @property
    def num_final(self) -> int:
        return len(self.merges)

    @property
    def total_span(self) -> float:
        return float(sum(merge.span for merge in self.merges))

    @property
    def total_cost(self) -> float:
        return float(sum(merge.cost for merge in self.merges))


def _pair_weight(
    first: Merge, second: Merge, universe: FileUniverse
) -> float:
    return fractional_overlap(first, second, universe)


def _pair_feasible(
    first: Merge, second: Merge, universe: FileUniverse, constraints: MergeConstraints
) -> bool:
    if not constraints.frequencies_compatible(first.frequency, second.frequency):
        return False
    return _pair_weight(first, second, universe) > 0.0


def gpart(
    partitions: Sequence[InitialPartition],
    universe: FileUniverse,
    constraints: MergeConstraints | None = None,
) -> GPartResult:
    """Run Algorithm 1 on ``partitions``.

    Parameters
    ----------
    partitions:
        The initial partitions (query-family footprints).
    universe:
        File sizes used for spans and overlaps.
    constraints:
        Frequency-compatibility and span-cap knobs; defaults allow merging of
        partitions within a 4x access-frequency band and impose no span cap.
    """
    if not partitions:
        raise ValueError("at least one initial partition is required")
    names = [partition.name for partition in partitions]
    if len(set(names)) != len(names):
        raise ValueError("partition names must be unique")
    constraints = constraints or MergeConstraints()

    # Live nodes: every initial partition starts as a singleton merge.
    live: dict[str, Merge] = {
        partition.name: Merge.of([partition], universe) for partition in partitions
    }
    deleted: set[str] = set()
    counter = 0  # tie-breaker so heap comparisons never reach Merge objects
    heap: list[tuple[float, int, str, str]] = []

    def push_pair(first_name: str, second_name: str) -> None:
        nonlocal counter
        first, second = live[first_name], live[second_name]
        if _pair_feasible(first, second, universe, constraints):
            weight = _pair_weight(first, second, universe)
            counter += 1
            heapq.heappush(heap, (-weight, counter, first_name, second_name))

    ordered_names = list(live)
    for index, first_name in enumerate(ordered_names):
        for second_name in ordered_names[index + 1 :]:
            push_pair(first_name, second_name)

    merge_operations = 0
    while heap:
        _, _, first_name, second_name = heapq.heappop(heap)
        if first_name in deleted or second_name in deleted:
            continue
        first, second = live[first_name], live[second_name]
        merged = Merge(
            members=first.members + second.members,
            file_ids=first.file_ids | second.file_ids,
            frequency=first.frequency + second.frequency,
            span=universe.records_of(first.file_ids | second.file_ids),
        )
        merge_operations += 1
        deleted.update((first_name, second_name))
        del live[first_name]
        del live[second_name]
        merged_name = merged.name
        live[merged_name] = merged

        # The merged node only stays a merge candidate below the span cap.
        below_cap = (
            constraints.span_threshold is None
            or merged.span < constraints.span_threshold
        )
        if below_cap:
            for other_name in list(live):
                if other_name == merged_name:
                    continue
                push_pair(merged_name, other_name)

    return GPartResult(
        merges=list(live.values()),
        num_initial=len(partitions),
        num_merge_operations=merge_operations,
    )
