"""DATAPART data structures: initial partitions, merges, feasibility and costs.

Section VI of the paper: every *query family* (queries touching the same set
of files) defines an **initial partition** — the set of files it reads, with
an aggregate access frequency.  DATAPART merges initial partitions into final
partitions so that files accessed together live together, trading duplicated
bytes (a file can appear in several final partitions) against expected read
cost.

Key quantities (all defined here so that G-PART, the ILP and the ordered DP
agree on them):

* ``Sp(P)`` — the span of a partition: total records of its (distinct) files;
* ``Ov(Pi, Pj) = Sp(Pi) + Sp(Pj) - Sp(Pi ∪ Pj)`` — overlap;
* ``rho(P)`` — access frequency; a merge's frequency is the sum of its members';
* ``C(M) = Sp(M) * rho(M)`` — expected read cost of a merge;
* a pair of partitions is *feasible to merge* when their frequencies are
  comparable: ``1/rho_c <= rho(Pi)/rho(Pj) <= rho_c`` or
  ``|rho(Pi) - rho(Pj)| <= rho'_c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ...workloads.queries import QueryFamily

__all__ = [
    "FileUniverse",
    "InitialPartition",
    "Merge",
    "MergeConstraints",
    "partitions_from_query_families",
    "duplication_ratio",
]


class FileUniverse:
    """Sizes of every file that partitions may reference.

    ``records`` is the paper's span unit (number of rows); ``size_gb`` is used
    when the merged partitions are handed to the cost model / OPTASSIGN.
    """

    def __init__(self, records: Mapping[str, int], size_gb: Mapping[str, float] | None = None):
        if not records:
            raise ValueError("the file universe must contain at least one file")
        for file_id, count in records.items():
            if count < 0:
                raise ValueError(f"file {file_id!r} has negative record count")
        self._records = dict(records)
        self._size_gb = dict(size_gb) if size_gb is not None else {}

    def __contains__(self, file_id: object) -> bool:
        return file_id in self._records

    @property
    def file_ids(self) -> set[str]:
        return set(self._records)

    def records_of(self, file_ids: Iterable[str]) -> int:
        """Total records of a set of files (each counted once)."""
        total = 0
        for file_id in set(file_ids):
            try:
                total += self._records[file_id]
            except KeyError:
                raise KeyError(f"unknown file id {file_id!r}") from None
        return total

    def size_gb_of(self, file_ids: Iterable[str]) -> float:
        """Total GB of a set of files; 0.0 for files without a recorded size."""
        return float(sum(self._size_gb.get(file_id, 0.0) for file_id in set(file_ids)))


@dataclass(frozen=True)
class InitialPartition:
    """A query family's file footprint with its access frequency."""

    name: str
    file_ids: frozenset[str]
    frequency: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("partition name must be non-empty")
        if not self.file_ids:
            raise ValueError(f"partition {self.name!r} must reference at least one file")
        if self.frequency < 0:
            raise ValueError("frequency must be non-negative")
        if not isinstance(self.file_ids, frozenset):
            object.__setattr__(self, "file_ids", frozenset(self.file_ids))

    def span(self, universe: FileUniverse) -> int:
        return universe.records_of(self.file_ids)


@dataclass(frozen=True)
class Merge:
    """A union of initial partitions chosen as one final partition."""

    members: tuple[str, ...]
    file_ids: frozenset[str]
    frequency: float
    span: int

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a merge must contain at least one member")
        if self.span < 0:
            raise ValueError("span must be non-negative")
        if self.frequency < 0:
            raise ValueError("frequency must be non-negative")

    @property
    def name(self) -> str:
        return "+".join(self.members)

    @property
    def cost(self) -> float:
        """Expected read cost ``C(M) = Sp(M) * rho(M)``."""
        return self.span * self.frequency

    @staticmethod
    def of(
        partitions: Sequence[InitialPartition], universe: FileUniverse
    ) -> "Merge":
        """Build the merge of ``partitions`` (order of members is preserved)."""
        if not partitions:
            raise ValueError("cannot merge an empty set of partitions")
        file_ids: set[str] = set()
        for partition in partitions:
            file_ids |= partition.file_ids
        return Merge(
            members=tuple(partition.name for partition in partitions),
            file_ids=frozenset(file_ids),
            frequency=float(sum(partition.frequency for partition in partitions)),
            span=universe.records_of(file_ids),
        )


@dataclass(frozen=True)
class MergeConstraints:
    """Feasibility and budget knobs of the merging problem.

    ``frequency_ratio`` is the paper's ``rho_c``, ``frequency_diff`` is
    ``rho'_c``, ``span_threshold`` is G-PART's soft cap ``S_thresh`` on merge
    span (None = uncapped) and ``cost_threshold`` is the ILP/DP read-cost
    budget ``C_thresh`` (None = unbounded).
    """

    frequency_ratio: float = 4.0
    frequency_diff: float = 0.0
    span_threshold: int | None = None
    cost_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.frequency_ratio < 1.0:
            raise ValueError("frequency_ratio must be at least 1")
        if self.frequency_diff < 0.0:
            raise ValueError("frequency_diff must be non-negative")
        if self.span_threshold is not None and self.span_threshold <= 0:
            raise ValueError("span_threshold must be positive when set")
        if self.cost_threshold is not None and self.cost_threshold < 0:
            raise ValueError("cost_threshold must be non-negative when set")

    def frequencies_compatible(self, first: float, second: float) -> bool:
        """The paper's pairwise feasibility test on access frequencies."""
        if abs(first - second) <= self.frequency_diff:
            return True
        if first == 0.0 or second == 0.0:
            return False
        ratio = first / second
        return 1.0 / self.frequency_ratio <= ratio <= self.frequency_ratio

    def pair_feasible(self, first: InitialPartition | Merge, second: InitialPartition | Merge) -> bool:
        return self.frequencies_compatible(first.frequency, second.frequency)


def partitions_from_query_families(
    families: Sequence[QueryFamily],
) -> tuple[list[InitialPartition], FileUniverse]:
    """Convert workload query families into DATAPART inputs.

    File record counts and sizes are recovered from the family metadata; a
    file referenced by several families keeps the maximum record count seen
    (they are the same file, so the counts agree in practice).
    """
    if not families:
        raise ValueError("at least one query family is required")
    records: dict[str, int] = {}
    sizes: dict[str, float] = {}
    partitions = []
    for family in families:
        per_file_records = family.num_records / max(len(family.file_ids), 1)
        per_file_gb = family.size_gb / max(len(family.file_ids), 1)
        for file_id in family.file_ids:
            records[file_id] = max(records.get(file_id, 0), int(round(per_file_records)))
            sizes[file_id] = max(sizes.get(file_id, 0.0), per_file_gb)
        partitions.append(
            InitialPartition(
                name=family.name,
                file_ids=family.file_ids,
                frequency=family.frequency,
            )
        )
    return partitions, FileUniverse(records, sizes)


def duplication_ratio(merges: Sequence[Merge], universe: FileUniverse) -> float:
    """The paper's duplication metric: ``1 - |distinct records| / |stored records|``.

    0.0 means no file is stored twice; values approach 1.0 as overlap between
    final partitions grows.
    """
    if not merges:
        return 0.0
    stored = sum(merge.span for merge in merges)
    distinct_files: set[str] = set()
    for merge in merges:
        distinct_files |= merge.file_ids
    distinct = universe.records_of(distinct_files)
    if stored == 0:
        return 0.0
    return 1.0 - distinct / stored
