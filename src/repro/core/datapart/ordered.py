"""Ordered (time-series) partition merging: exact DP and bi-criteria approximation.

Section VI-B of the paper: when partitions have a natural order (time-series
data, partitions sorted by query end time), only *contiguous* runs of
partitions are worth merging, so the solution is a segmentation of the ordered
list into blocks.  A dynamic program over (prefix length, remaining cost
budget) finds the minimum-space segmentation whose total expected read cost
stays within ``C_thresh`` (Theorem 5); because the DP is pseudo-polynomial in
the budget, Theorem 6 discretises costs into buckets of ``epsilon * C_thresh``
and extends the budget by ``N * epsilon`` to obtain a polynomial (1, 1 + N·eps)
bi-criteria approximation — for ``epsilon = 1/N`` a (1, 2) approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .partitions import FileUniverse, InitialPartition, Merge

__all__ = ["OrderedMergeResult", "solve_ordered_dp", "solve_ordered_approx"]


@dataclass
class OrderedMergeResult:
    """A segmentation of the ordered partitions into contiguous merges."""

    merges: list[Merge]
    total_span: float
    total_cost: float
    cost_unit: float
    budget_units: int

    @property
    def num_final(self) -> int:
        return len(self.merges)


def _contiguous_merges(
    partitions: Sequence[InitialPartition], universe: FileUniverse
) -> list[list[Merge]]:
    """``merges[i][j]`` = the merge of partitions ``j..i`` inclusive (j <= i)."""
    n = len(partitions)
    table: list[list[Merge]] = []
    for end in range(n):
        row: list[Merge] = [None] * (end + 1)  # type: ignore[list-item]
        files: set[str] = set()
        frequency = 0.0
        members: list[str] = []
        # Build merges [start..end] by extending backwards from `end`.
        for start in range(end, -1, -1):
            files |= partitions[start].file_ids
            frequency += partitions[start].frequency
            members.insert(0, partitions[start].name)
            row[start] = Merge(
                members=tuple(members),
                file_ids=frozenset(files),
                frequency=frequency,
                span=universe.records_of(files),
            )
        table.append(row)
    return table


def solve_ordered_dp(
    partitions: Sequence[InitialPartition],
    universe: FileUniverse,
    cost_threshold: float,
    cost_unit: float = 1.0,
    extra_budget_units: int = 0,
) -> OrderedMergeResult:
    """Exact DP (Theorem 5) over costs discretised into ``cost_unit`` buckets.

    With ``cost_unit=1`` and integer merge costs the result is exact; larger
    units trade accuracy for speed (this is what the approximation scheme
    exploits).  Merge costs are rounded *up* to whole units, so the reported
    true cost can only be below the discretised budget.

    Raises
    ------
    ValueError
        If even the all-merged or all-singleton segmentations exceed the
        budget (no feasible segmentation exists).
    """
    if not partitions:
        raise ValueError("at least one ordered partition is required")
    if cost_threshold < 0:
        raise ValueError("cost_threshold must be non-negative")
    if cost_unit <= 0:
        raise ValueError("cost_unit must be positive")

    merges = _contiguous_merges(partitions, universe)
    n = len(partitions)

    def units_of(merge: Merge) -> int:
        return int(math.ceil(merge.cost / cost_unit)) if merge.cost > 0 else 0

    # Budget units beyond the cost of the most expensive possible segmentation
    # cannot change the answer, so clamp there: any segmentation consists of at
    # most n merges, each costing at most the cost of the cheapest-per-merge
    # upper bound (the single all-covering merge dominates every sub-merge's
    # span and frequency).  Without the clamp a caller passing an effectively
    # unbounded threshold would allocate a DP table proportional to it.
    full_merge_units = units_of(merges[n - 1][0])
    useful_units = n * (full_merge_units + 1)
    requested_units = int(math.floor(cost_threshold / cost_unit)) + extra_budget_units
    budget_units = min(requested_units, useful_units)

    infinity = float("inf")
    # best[i][b] = minimum total span covering the first i partitions using at
    # most b cost units; choice[i][b] = start index of the merge ending at i-1.
    best = [[infinity] * (budget_units + 1) for _ in range(n + 1)]
    choice: list[list[int | None]] = [[None] * (budget_units + 1) for _ in range(n + 1)]
    for budget in range(budget_units + 1):
        best[0][budget] = 0.0

    for end in range(1, n + 1):
        row = merges[end - 1]
        for budget in range(budget_units + 1):
            best_value = infinity
            best_start: int | None = None
            for start in range(end):
                merge = row[start]
                cost_units = units_of(merge)
                if cost_units > budget:
                    continue
                previous = best[start][budget - cost_units]
                if previous == infinity:
                    continue
                value = previous + merge.span
                if value < best_value:
                    best_value = value
                    best_start = start
            best[end][budget] = best_value
            choice[end][budget] = best_start

    if best[n][budget_units] == infinity:
        raise ValueError(
            "no segmentation of the ordered partitions fits within the cost "
            f"budget ({cost_threshold} with unit {cost_unit})"
        )

    # Recover the segmentation.
    chosen: list[Merge] = []
    end = n
    budget = budget_units
    while end > 0:
        start = choice[end][budget]
        if start is None:
            raise RuntimeError("DP backtracking failed (inconsistent tables)")
        merge = merges[end - 1][start]
        chosen.append(merge)
        budget -= units_of(merge)
        end = start
    chosen.reverse()
    return OrderedMergeResult(
        merges=chosen,
        total_span=float(sum(merge.span for merge in chosen)),
        total_cost=float(sum(merge.cost for merge in chosen)),
        cost_unit=cost_unit,
        budget_units=budget_units,
    )


def solve_ordered_approx(
    partitions: Sequence[InitialPartition],
    universe: FileUniverse,
    cost_threshold: float,
    epsilon: float | None = None,
) -> OrderedMergeResult:
    """Theorem 6: polynomial bi-criteria approximation of the ordered DP.

    Costs are discretised into units of ``epsilon * cost_threshold`` and the
    budget is extended by ``N`` extra units (i.e. ``N * epsilon *
    cost_threshold``), guaranteeing the space found is no worse than the true
    optimum's while the realised cost is at most ``(1 + N * epsilon)`` times
    the budget.  The default ``epsilon = 1/N`` yields the (1, 2) bi-criteria
    guarantee in ``O(N^3)``.
    """
    if not partitions:
        raise ValueError("at least one ordered partition is required")
    if cost_threshold <= 0:
        raise ValueError("cost_threshold must be positive for the approximation scheme")
    n = len(partitions)
    if epsilon is None:
        epsilon = 1.0 / n
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    cost_unit = epsilon * cost_threshold
    return solve_ordered_dp(
        partitions,
        universe,
        cost_threshold=cost_threshold,
        cost_unit=cost_unit,
        extra_budget_units=n,
    )
