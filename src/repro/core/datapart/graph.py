"""The overlap graph used by G-PART (Fig. 6c of the paper).

Every initial partition is a node; an edge connects two partitions whose file
sets overlap, weighted by the *fractional overlap*
``w = Ov(u, v) / Sp(u ∪ v)`` (1.0 = identical file sets, no edge when the
overlap is zero).  Merging two nodes collapses them into a meta-vertex and
re-derives the edges incident to it, which is exactly what the greedy
algorithm does through its heap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from .partitions import FileUniverse, InitialPartition, Merge, MergeConstraints

__all__ = ["fractional_overlap", "build_overlap_graph", "merge_statistics"]


def fractional_overlap(
    first: InitialPartition | Merge,
    second: InitialPartition | Merge,
    universe: FileUniverse,
) -> float:
    """``Ov(u, v) / Sp(u ∪ v)`` — 0 when disjoint, 1 when identical."""
    union = first.file_ids | second.file_ids
    union_span = universe.records_of(union)
    if union_span == 0:
        return 0.0
    first_span = universe.records_of(first.file_ids)
    second_span = universe.records_of(second.file_ids)
    overlap = first_span + second_span - union_span
    return overlap / union_span


def build_overlap_graph(
    partitions: Sequence[InitialPartition],
    universe: FileUniverse,
    constraints: MergeConstraints | None = None,
) -> nx.Graph:
    """The weighted overlap graph over ``partitions``.

    Nodes carry the partition object (attribute ``"partition"``); edges carry
    the fractional overlap (attribute ``"weight"``) and a ``"feasible"`` flag
    evaluated against ``constraints`` (always True when no constraints are
    given).  Zero-overlap pairs get no edge.
    """
    graph = nx.Graph()
    for partition in partitions:
        graph.add_node(partition.name, partition=partition)
    names = [partition.name for partition in partitions]
    if len(set(names)) != len(names):
        raise ValueError("partition names must be unique")
    for index, first in enumerate(partitions):
        for second in partitions[index + 1 :]:
            weight = fractional_overlap(first, second, universe)
            if weight <= 0.0:
                continue
            feasible = (
                constraints.pair_feasible(first, second) if constraints else True
            )
            graph.add_edge(first.name, second.name, weight=weight, feasible=feasible)
    return graph


def merge_statistics(
    merges: Sequence[Merge], universe: FileUniverse
) -> dict[str, float]:
    """Aggregate statistics of a merging solution (used by Fig. 7 reproductions)."""
    if not merges:
        return {
            "num_partitions": 0.0,
            "total_span": 0.0,
            "total_cost": 0.0,
            "distinct_records": 0.0,
        }
    distinct_files: set[str] = set()
    for merge in merges:
        distinct_files |= merge.file_ids
    return {
        "num_partitions": float(len(merges)),
        "total_span": float(sum(merge.span for merge in merges)),
        "total_cost": float(sum(merge.cost for merge in merges)),
        "distinct_records": float(universe.records_of(distinct_files)),
    }
