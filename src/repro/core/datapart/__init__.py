"""DATAPART: access-pattern-aware data partitioning (Section VI of the paper).

* :mod:`partitions` — initial partitions, merges, spans/overlaps/costs and
  feasibility constraints.
* :mod:`graph` — the fractional-overlap graph G-PART operates on.
* :mod:`gpart` — Algorithm 1, the greedy heap-driven merger.
* :mod:`ilp` — the MERGEPARTITIONS ILP (Eq. 2), used as an exact oracle.
* :mod:`ordered` — the time-series DP (Theorem 5) and its bi-criteria
  approximation (Theorem 6).
"""

from .gpart import GPartResult, gpart
from .graph import build_overlap_graph, fractional_overlap, merge_statistics
from .ilp import (
    MergeIlpInfeasibleError,
    MergeIlpResult,
    enumerate_candidate_merges,
    solve_merge_ilp,
)
from .ordered import OrderedMergeResult, solve_ordered_approx, solve_ordered_dp
from .partitions import (
    FileUniverse,
    InitialPartition,
    Merge,
    MergeConstraints,
    duplication_ratio,
    partitions_from_query_families,
)

__all__ = [
    "FileUniverse",
    "InitialPartition",
    "Merge",
    "MergeConstraints",
    "partitions_from_query_families",
    "duplication_ratio",
    "build_overlap_graph",
    "fractional_overlap",
    "merge_statistics",
    "GPartResult",
    "gpart",
    "MergeIlpResult",
    "MergeIlpInfeasibleError",
    "enumerate_candidate_merges",
    "solve_merge_ilp",
    "OrderedMergeResult",
    "solve_ordered_dp",
    "solve_ordered_approx",
]
