"""MERGEPARTITIONS as an ILP (Eq. 2 of the paper), solved with ``scipy.optimize.milp``.

The ILP chooses a subset of candidate merges that (a) covers every initial
partition, (b) keeps the total expected read cost below ``C_thresh`` and
(c) minimises the total span (storage).  The problem is NP-hard (Theorem 4),
so for anything beyond toy sizes the candidate merge set must be restricted;
:func:`enumerate_candidate_merges` provides the standard construction
(singletons, feasible pairs, and optionally the merges G-PART found), and
:func:`solve_merge_ilp` optimises over whatever candidate set it is given.
On tiny instances the candidate set can be made exhaustive, which is how the
tests cross-check G-PART and the ordered DP against the true optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .partitions import FileUniverse, InitialPartition, Merge, MergeConstraints

__all__ = [
    "MergeIlpResult",
    "enumerate_candidate_merges",
    "solve_merge_ilp",
    "MergeIlpInfeasibleError",
]


class MergeIlpInfeasibleError(RuntimeError):
    """Raised when no candidate subset covers all partitions within the cost budget."""


@dataclass
class MergeIlpResult:
    """The chosen merges and their aggregate span / cost."""

    merges: list[Merge]
    total_span: float
    total_cost: float


def _merge_is_feasible(
    partitions: Sequence[InitialPartition], constraints: MergeConstraints
) -> bool:
    """The paper requires every *pair* inside a merge to be frequency-compatible."""
    for first, second in combinations(partitions, 2):
        if not constraints.frequencies_compatible(first.frequency, second.frequency):
            return False
    return True


def enumerate_candidate_merges(
    partitions: Sequence[InitialPartition],
    universe: FileUniverse,
    constraints: MergeConstraints | None = None,
    max_merge_size: int = 2,
    extra_merges: Sequence[Merge] = (),
) -> list[Merge]:
    """Candidate merges: all feasible subsets up to ``max_merge_size``, plus extras.

    Singletons are always included so a feasible cover exists; ``extra_merges``
    lets callers add, e.g., the merges produced by G-PART so the ILP can pick
    the best of both.  With ``max_merge_size=len(partitions)`` the enumeration
    is exhaustive (exponential — only for tiny instances / tests).
    """
    if not partitions:
        raise ValueError("at least one initial partition is required")
    constraints = constraints or MergeConstraints()
    candidates: dict[tuple[str, ...], Merge] = {}
    for size in range(1, min(max_merge_size, len(partitions)) + 1):
        for subset in combinations(partitions, size):
            if size > 1 and not _merge_is_feasible(subset, constraints):
                continue
            merge = Merge.of(list(subset), universe)
            if (
                size > 1
                and constraints.span_threshold is not None
                and merge.span > constraints.span_threshold
            ):
                continue
            candidates[tuple(sorted(merge.members))] = merge
    for merge in extra_merges:
        candidates.setdefault(tuple(sorted(merge.members)), merge)
    return list(candidates.values())


def solve_merge_ilp(
    partitions: Sequence[InitialPartition],
    candidates: Sequence[Merge],
    cost_threshold: float | None,
) -> MergeIlpResult:
    """Solve Eq. 2 over ``candidates``.

    Raises
    ------
    MergeIlpInfeasibleError
        If the candidates cannot cover every partition within the budget.
    """
    if not partitions:
        raise ValueError("at least one initial partition is required")
    if not candidates:
        raise ValueError("at least one candidate merge is required")
    partition_names = [partition.name for partition in partitions]
    covered = set()
    for merge in candidates:
        covered.update(merge.members)
    missing = set(partition_names) - covered
    if missing:
        raise MergeIlpInfeasibleError(
            f"candidate merges never cover partitions: {sorted(missing)[:5]}"
        )

    n_variables = len(candidates)
    objective = np.array([float(merge.span) for merge in candidates])

    constraints_list: list[LinearConstraint] = []

    # Coverage: every initial partition appears in at least one chosen merge.
    coverage = np.zeros((len(partition_names), n_variables))
    for row, name in enumerate(partition_names):
        for column, merge in enumerate(candidates):
            if name in merge.members:
                coverage[row, column] = 1.0
    constraints_list.append(LinearConstraint(coverage, lb=1.0, ub=np.inf))

    # Budget: total expected read cost of chosen merges stays under C_thresh.
    if cost_threshold is not None:
        costs = np.array([[merge.cost for merge in candidates]])
        constraints_list.append(
            LinearConstraint(costs, lb=-np.inf, ub=float(cost_threshold))
        )

    result = milp(
        c=objective,
        constraints=constraints_list,
        integrality=np.ones(n_variables),
        bounds=Bounds(lb=0.0, ub=1.0),
    )
    if not result.success or result.x is None:
        raise MergeIlpInfeasibleError(
            f"MERGEPARTITIONS ILP failed (status {result.status}): {result.message}"
        )
    chosen = [
        candidates[index]
        for index, value in enumerate(np.round(result.x).astype(int))
        if value == 1
    ]
    return MergeIlpResult(
        merges=chosen,
        total_span=float(sum(merge.span for merge in chosen)),
        total_cost=float(sum(merge.cost for merge in chosen)),
    )
