"""Training-sample construction: random row samples vs query-result samples.

The paper's Fig. 4 / Table V comparison: samples made of randomly chosen rows
under-represent the repetition present in the data that queries actually
touch, so a predictor trained on them misestimates compression ratios badly.
Samples built from query results (the data the system will really compress
and read back) fix this.  Both samplers are provided so the comparison can be
reproduced.
"""

from __future__ import annotations

import numpy as np

from ...tabular import Query, Table, run_query
from ...workloads.queries import QueryWorkload

__all__ = ["random_row_samples", "query_result_samples", "sample_statistics"]


def random_row_samples(
    table: Table,
    rng: np.random.Generator,
    num_samples: int,
    rows_per_sample: tuple[int, int] = (50, 500),
) -> list[Table]:
    """Samples of uniformly random rows with varying sample sizes.

    Each sample draws a uniformly random number of rows in
    ``rows_per_sample`` (without replacement within a sample), mirroring how a
    naive profiler would sample a dataset before compressing it.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    low, high = rows_per_sample
    if low <= 0 or high < low:
        raise ValueError("rows_per_sample must be a (low, high) pair with 0 < low <= high")
    samples = []
    for index in range(num_samples):
        size = int(rng.integers(low, min(high, table.num_rows) + 1))
        size = min(size, table.num_rows)
        indices = rng.choice(table.num_rows, size=size, replace=False)
        samples.append(
            table.select_rows(sorted(int(i) for i in indices), name=f"{table.name}_rand{index}")
        )
    return samples


def query_result_samples(
    table: Table,
    queries: list[Query] | QueryWorkload,
    min_rows: int = 5,
    max_samples: int | None = None,
) -> list[Table]:
    """Samples materialised from query results against ``table``.

    Queries targeting other tables are skipped; results with fewer than
    ``min_rows`` rows are dropped because they carry almost no signal about
    compression behaviour and the paper's workloads never store them
    separately.
    """
    if isinstance(queries, QueryWorkload):
        query_list = queries.queries
    else:
        query_list = list(queries)
    samples: list[Table] = []
    for query in query_list:
        if query.table != table.name:
            continue
        result = run_query(table, query)
        if result.num_rows >= min_rows:
            samples.append(result)
        if max_samples is not None and len(samples) >= max_samples:
            break
    return samples


def sample_statistics(samples: list[Table]) -> dict[str, float]:
    """Simple descriptive statistics of a sample collection (used in reports)."""
    if not samples:
        return {"count": 0, "mean_rows": 0.0, "min_rows": 0.0, "max_rows": 0.0}
    rows = [sample.num_rows for sample in samples]
    return {
        "count": float(len(samples)),
        "mean_rows": float(np.mean(rows)),
        "min_rows": float(np.min(rows)),
        "max_rows": float(np.max(rows)),
    }
