"""COMPREDICT: on-the-fly compression ratio and decompression speed prediction (Section V)."""

from .features import (
    FEATURE_SETS,
    FeatureExtractor,
    bucketed_weighted_entropy,
    weighted_entropy,
    weighted_entropy_by_dtype,
)
from .ground_truth import LabeledSample, label_samples, targets_matrix
from .predictor import (
    CompressionPredictor,
    PredictionQuality,
    default_model_factory,
)
from .sampling import query_result_samples, random_row_samples, sample_statistics

__all__ = [
    "FeatureExtractor",
    "FEATURE_SETS",
    "weighted_entropy",
    "weighted_entropy_by_dtype",
    "bucketed_weighted_entropy",
    "LabeledSample",
    "label_samples",
    "targets_matrix",
    "CompressionPredictor",
    "PredictionQuality",
    "default_model_factory",
    "random_row_samples",
    "query_result_samples",
    "sample_statistics",
]
