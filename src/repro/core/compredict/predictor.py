"""The COMPREDICT model: predict compression ratio and decompression speed on the fly.

A :class:`CompressionPredictor` owns, for every (scheme, layout) combination it
was trained on, a pair of regressors — one for the compression ratio and one
for the decompression speed (seconds per GB) — over the features produced by a
:class:`repro.core.compredict.FeatureExtractor`.  Training is a one-time task
on labelled samples (query results with measured compression behaviour);
inference is a feature extraction plus two regressor evaluations, i.e.
"almost instantaneous" as the paper puts it.

The predictor's output plugs straight into OPTASSIGN as
:class:`repro.cloud.CompressionProfile` objects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from ...cloud import CompressionProfile
from ...compression import Codec, Layout, SchemeLayout
from ...ml import RandomForestRegressor, regression_report
from ...tabular import Table
from .features import FeatureExtractor
from .ground_truth import LabeledSample, label_samples

__all__ = ["PredictionQuality", "CompressionPredictor", "default_model_factory"]


def default_model_factory():
    """The paper's best model: a Random Forest regressor."""
    return RandomForestRegressor(n_estimators=40, max_depth=10, random_state=17)


@dataclass(frozen=True)
class PredictionQuality:
    """Held-out quality of one (scheme, layout) predictor pair."""

    scheme: str
    layout: str
    ratio_metrics: dict[str, float]
    speed_metrics: dict[str, float]


@dataclass
class _SchemePredictor:
    """The fitted (ratio, speed) regressor pair for one scheme x layout."""

    ratio_model: object
    speed_model: object


class CompressionPredictor:
    """Predicts :class:`CompressionProfile` objects for unseen partitions.

    Parameters
    ----------
    feature_extractor:
        Feature definition shared by every scheme.
    model_factory:
        Zero-argument callable returning a fresh regressor with ``fit``/
        ``predict``; called twice per (scheme, layout) — once for the ratio
        target, once for the decompression-speed target.
    history_limit:
        Maximum number of labelled samples retained per (scheme, layout) for
        warm-start retraining via :meth:`partial_fit`.  Old samples fall off
        the window, so a long-running online system retrains on recent data
        in bounded time instead of on its whole past.
    """

    def __init__(
        self,
        feature_extractor: FeatureExtractor | None = None,
        model_factory: Callable[[], object] = default_model_factory,
        history_limit: int = 512,
    ):
        if history_limit <= 0:
            raise ValueError("history_limit must be positive")
        self.feature_extractor = feature_extractor or FeatureExtractor()
        self.model_factory = model_factory
        self.history_limit = history_limit
        self._predictors: dict[tuple[str, str], _SchemePredictor] = {}
        self._sample_windows: dict[tuple[str, str], deque[LabeledSample]] = {}

    # -- training ------------------------------------------------------------------
    def fit_labeled(
        self, labeled: list[LabeledSample], scheme: str, layout: str
    ) -> "CompressionPredictor":
        """Fit the (ratio, speed) pair for one scheme x layout from labelled samples."""
        if not labeled:
            raise ValueError("at least one labelled sample is required")
        features = self.feature_extractor.extract_many(
            [sample.table for sample in labeled]
        )
        ratios = np.array([sample.ratio for sample in labeled])
        speeds = np.array([sample.decompression_s_per_gb for sample in labeled])
        ratio_model = self.model_factory()
        speed_model = self.model_factory()
        ratio_model.fit(features, ratios)
        speed_model.fit(features, speeds)
        self._predictors[(scheme, layout)] = _SchemePredictor(ratio_model, speed_model)
        self._sample_windows[(scheme, layout)] = deque(
            labeled[-self.history_limit :], maxlen=self.history_limit
        )
        return self

    def fit(
        self,
        samples: list[Table],
        codecs: Iterable[Codec],
        layouts: Iterable[str] = (Layout.CSV,),
    ) -> "CompressionPredictor":
        """Measure and fit every codec x layout combination on ``samples``."""
        for layout in layouts:
            for codec in codecs:
                labeled = label_samples(samples, codec, layout)
                self.fit_labeled(labeled, scheme=codec.name, layout=layout)
        return self

    def partial_fit(
        self,
        samples: list[Table],
        codecs: Iterable[Codec],
        layouts: Iterable[str] = (Layout.CSV,),
    ) -> "CompressionPredictor":
        """Warm-start retraining on newly observed samples.

        Labels the new ``samples``, appends them to the bounded rolling window
        kept per (scheme, layout) and refits on the window.  In the online
        tiering setting this is called at re-optimization points with the
        partitions materialised since the last retrain: the cost is
        O(window), not O(everything ever measured), and the models track
        drift in the data's compressibility.
        """
        if not samples:
            raise ValueError("at least one sample is required")
        for layout in layouts:
            for codec in codecs:
                key = (codec.name, layout)
                labeled = label_samples(samples, codec, layout)
                window = self._sample_windows.setdefault(
                    key, deque(maxlen=self.history_limit)
                )
                window.extend(labeled)
                # Refit on the window without clobbering it (fit_labeled
                # re-seeds the window from its argument, which is the window
                # itself here, so the deque round-trips unchanged).
                self.fit_labeled(list(window), scheme=codec.name, layout=layout)
        return self

    def window_size(self, scheme: str, layout: str = Layout.CSV) -> int:
        """Number of labelled samples currently retained for warm-start refits."""
        return len(self._sample_windows.get((scheme, layout), ()))

    # -- inference --------------------------------------------------------------------
    @property
    def trained_combinations(self) -> list[SchemeLayout]:
        return [SchemeLayout(scheme, layout) for scheme, layout in self._predictors]

    def predict_profile(
        self, table: Table, scheme: str, layout: str = Layout.CSV
    ) -> CompressionProfile:
        """Predicted compression behaviour of ``scheme`` on ``table``.

        The ratio is clamped to be at least 1 (a codec is never applied when
        it would inflate the data) and the speed to be non-negative, so the
        profile is always physically meaningful even when the regressor
        extrapolates.
        """
        predictor = self._lookup(scheme, layout)
        features = self.feature_extractor.extract(table).reshape(1, -1)
        ratio = float(predictor.ratio_model.predict(features)[0])
        speed = float(predictor.speed_model.predict(features)[0])
        return CompressionProfile(
            scheme=scheme,
            ratio=max(ratio, 1.0),
            decompression_s_per_gb=max(speed, 0.0),
        )

    def predict_profiles(
        self,
        tables: Mapping[str, Table],
        schemes: Iterable[str],
        layout: str = Layout.CSV,
    ) -> dict[str, dict[str, CompressionProfile]]:
        """Profiles for many partitions at once (the OPTASSIGN ``ProfileTable`` shape)."""
        return {
            name: {
                scheme: self.predict_profile(table, scheme, layout)
                for scheme in schemes
            }
            for name, table in tables.items()
        }

    # -- evaluation ---------------------------------------------------------------------
    def evaluate(
        self, labeled: list[LabeledSample], scheme: str, layout: str
    ) -> PredictionQuality:
        """MAE / MAPE / R² of the fitted pair on held-out labelled samples."""
        predictor = self._lookup(scheme, layout)
        features = self.feature_extractor.extract_many(
            [sample.table for sample in labeled]
        )
        true_ratios = np.array([sample.ratio for sample in labeled])
        true_speeds = np.array([sample.decompression_s_per_gb for sample in labeled])
        predicted_ratios = predictor.ratio_model.predict(features)
        predicted_speeds = predictor.speed_model.predict(features)
        return PredictionQuality(
            scheme=scheme,
            layout=layout,
            ratio_metrics=regression_report(true_ratios, predicted_ratios),
            speed_metrics=regression_report(true_speeds, predicted_speeds),
        )

    def _lookup(self, scheme: str, layout: str) -> _SchemePredictor:
        try:
            return self._predictors[(scheme, layout)]
        except KeyError:
            raise KeyError(
                f"no predictor trained for scheme {scheme!r} on layout {layout!r}; "
                f"trained: {sorted(self._predictors)}"
            ) from None
