"""Ground-truth labels for COMPREDICT: measured ratios and decompression speeds.

Given sample tables, a codec and a layout, this module serialises each sample,
compresses it and records the observed compression ratio and decompression
speed.  The resulting :class:`LabeledSample` records are the supervised
training data for the predictor and the evaluation targets for Tables V-VIII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...compression import Codec, Layout, measure_table
from ...tabular import Table

__all__ = ["LabeledSample", "label_samples", "targets_matrix"]


@dataclass(frozen=True)
class LabeledSample:
    """One training example: a sample table with its measured compression behaviour."""

    table: Table
    scheme: str
    layout: str
    ratio: float
    decompression_s_per_gb: float
    uncompressed_bytes: int


def label_samples(
    samples: list[Table], codec: Codec, layout: str = Layout.CSV
) -> list[LabeledSample]:
    """Measure ``codec`` on every sample serialised in ``layout``."""
    if not samples:
        raise ValueError("at least one sample is required")
    labeled = []
    for sample in samples:
        measurement = measure_table(codec, sample, layout)
        labeled.append(
            LabeledSample(
                table=sample,
                scheme=codec.name,
                layout=layout,
                ratio=measurement.ratio,
                decompression_s_per_gb=measurement.decompression_s_per_gb,
                uncompressed_bytes=measurement.uncompressed_bytes,
            )
        )
    return labeled


def targets_matrix(labeled: list[LabeledSample]) -> tuple[np.ndarray, np.ndarray]:
    """The (ratio, decompression speed) target vectors of a labelled sample set."""
    if not labeled:
        raise ValueError("at least one labelled sample is required")
    ratios = np.array([sample.ratio for sample in labeled])
    speeds = np.array([sample.decompression_s_per_gb for sample in labeled])
    return ratios, speeds
