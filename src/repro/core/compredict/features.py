"""Feature extraction for compression-performance prediction (Section V).

The paper's key observation is that generic features (dataset size, datatype
mix) do not explain compression behaviour on *queried* data; what does is the
amount of repetition, captured by a **weighted entropy** per datatype:

    H(P, d) = - sum_{s in P[:, d]} len(s) * pr(s) * log(pr(s))

where the sum runs over the string representations of all values in the
columns of datatype ``d``, ``pr(s)`` is each distinct value's probability of
occurrence within those columns and ``len(s)`` its length.  A *bucketed*
variant computes the same quantity for successive 20% row slices, intended to
capture the effect of sorting.

:class:`FeatureExtractor` turns a table into a fixed-length numeric vector so
any :mod:`repro.ml` regressor can consume it; it supports the three feature
sets compared in Table V (size-only, weighted entropy, bucketed entropy).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ...tabular import DataType, Table

__all__ = [
    "weighted_entropy",
    "weighted_entropy_by_dtype",
    "bucketed_weighted_entropy",
    "FeatureExtractor",
    "FEATURE_SETS",
]

#: Datatype order used to lay features out in a fixed-length vector.
_DTYPE_ORDER: tuple[str, ...] = (
    DataType.INT,
    DataType.FLOAT,
    DataType.STRING,
    DataType.DATE,
)

#: Names of the feature sets compared in the paper (Table V).
FEATURE_SETS: tuple[str, ...] = ("size", "weighted_entropy", "bucketed_entropy")


def weighted_entropy(values: list[str]) -> float:
    """The paper's length-weighted entropy of a collection of string values."""
    if not values:
        return 0.0
    counts = Counter(values)
    total = len(values)
    entropy = 0.0
    for value, count in counts.items():
        probability = count / total
        entropy -= len(value) * probability * math.log(probability)
    return entropy


def weighted_entropy_by_dtype(table: Table) -> dict[str, float]:
    """``H(P, d)`` for every datatype ``d`` present in ``table``."""
    features: dict[str, float] = {}
    for dtype, columns in table.columns_by_dtype().items():
        values: list[str] = []
        for column in columns:
            values.extend(str(value) for value in column.values)
        features[dtype] = weighted_entropy(values)
    return features


def bucketed_weighted_entropy(
    table: Table, num_buckets: int = 5
) -> dict[str, list[float]]:
    """Weighted entropy per datatype for each successive ``1/num_buckets`` slice of rows.

    The paper uses 5 buckets (successive 20% of rows) to probe whether sorting
    changes local repetition structure.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    rows = table.num_rows
    boundaries = [round(i * rows / num_buckets) for i in range(num_buckets + 1)]
    result: dict[str, list[float]] = {}
    for bucket in range(num_buckets):
        start, stop = boundaries[bucket], boundaries[bucket + 1]
        slice_table = table.slice(start, stop) if stop > start else None
        entropies = (
            weighted_entropy_by_dtype(slice_table) if slice_table is not None else {}
        )
        for dtype in _DTYPE_ORDER:
            result.setdefault(dtype, []).append(entropies.get(dtype, 0.0))
    return result


@dataclass(frozen=True)
class FeatureExtractor:
    """Turns a table into the numeric feature vector of a chosen feature set.

    Every feature set starts with the two cheap size features (row count and
    approximate serialised bytes) because the optimizer knows them for free;
    the entropy-based sets add the per-datatype weighted entropies (and their
    bucketed refinements).
    """

    feature_set: str = "weighted_entropy"
    num_buckets: int = 5

    def __post_init__(self) -> None:
        if self.feature_set not in FEATURE_SETS:
            raise ValueError(
                f"unknown feature set {self.feature_set!r}; expected one of {FEATURE_SETS}"
            )
        if self.num_buckets <= 0:
            raise ValueError("num_buckets must be positive")

    @property
    def feature_names(self) -> list[str]:
        names = ["num_rows", "approx_bytes"]
        if self.feature_set == "size":
            return names
        names += [f"entropy_{dtype}" for dtype in _DTYPE_ORDER]
        if self.feature_set == "bucketed_entropy":
            names += [
                f"bucket{bucket}_entropy_{dtype}"
                for dtype in _DTYPE_ORDER
                for bucket in range(self.num_buckets)
            ]
        return names

    def extract(self, table: Table) -> np.ndarray:
        """The feature vector for one table/sample."""
        features: list[float] = [
            float(table.num_rows),
            float(table.num_rows * table.approx_row_bytes()),
        ]
        if self.feature_set == "size":
            return np.array(features)
        entropies = weighted_entropy_by_dtype(table)
        features += [entropies.get(dtype, 0.0) for dtype in _DTYPE_ORDER]
        if self.feature_set == "bucketed_entropy":
            buckets = bucketed_weighted_entropy(table, self.num_buckets)
            for dtype in _DTYPE_ORDER:
                features += buckets.get(dtype, [0.0] * self.num_buckets)
        return np.array(features)

    def extract_many(self, tables: list[Table]) -> np.ndarray:
        """Feature matrix (one row per table)."""
        if not tables:
            raise ValueError("at least one table is required")
        return np.vstack([self.extract(table) for table in tables])
