"""Feature engineering for optimal-tier prediction (Section IV-C of the paper).

The paper's Random Forest tier predictor uses four groups of features per
dataset: (i) dataset size, (ii) months since creation, and the aggregated
monthly (iii) read and (iv) write accesses over the last few months.  Training
uses out-of-time validation: features are computed from the months *before*
the prediction horizon, labels (the ideal tier) from the months *inside* it.

:func:`split_history` performs that temporal split on a dataset's access log
and :class:`TierFeatureBuilder` turns the historical part into the numeric
feature matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cloud import Dataset, DatasetCatalog

__all__ = ["HistorySplit", "split_history", "TierFeatureBuilder"]


@dataclass(frozen=True)
class HistorySplit:
    """A dataset's access log split at the prediction boundary."""

    history_reads: tuple[float, ...]
    history_writes: tuple[float, ...]
    future_reads: tuple[float, ...]
    future_writes: tuple[float, ...]

    @property
    def future_read_total(self) -> float:
        return float(sum(self.future_reads))

    @property
    def history_read_total(self) -> float:
        return float(sum(self.history_reads))


def split_history(dataset: Dataset, horizon_months: int) -> HistorySplit:
    """Split the last ``horizon_months`` months off as the (unseen) future.

    Datasets younger than the horizon contribute an empty history — exactly
    the newly-ingested case the paper handles with domain priors.
    """
    if horizon_months <= 0:
        raise ValueError("horizon_months must be positive")
    reads = list(dataset.monthly_reads)
    writes = list(dataset.monthly_writes)
    cut = max(len(reads) - horizon_months, 0)
    return HistorySplit(
        history_reads=tuple(reads[:cut]),
        history_writes=tuple(writes[:cut]),
        future_reads=tuple(reads[cut:]),
        future_writes=tuple(writes[cut:]),
    )


@dataclass(frozen=True)
class TierFeatureBuilder:
    """Builds the tier-prediction feature matrix from a dataset catalog.

    ``lookback_months`` controls how many recent months of reads/writes are
    exposed as individual features (older history is summarised by a single
    total), mirroring the paper's "last few months" aggregation.
    """

    lookback_months: int = 6

    def __post_init__(self) -> None:
        if self.lookback_months <= 0:
            raise ValueError("lookback_months must be positive")

    @property
    def feature_names(self) -> list[str]:
        names = ["size_gb", "age_months", "total_reads", "total_writes"]
        names += [f"reads_lag_{lag}" for lag in range(1, self.lookback_months + 1)]
        names += [f"writes_lag_{lag}" for lag in range(1, self.lookback_months + 1)]
        return names

    def features_for(self, dataset: Dataset, split: HistorySplit) -> np.ndarray:
        """The feature vector of one dataset from its historical window."""
        reads = list(split.history_reads)
        writes = list(split.history_writes)
        features = [
            dataset.size_gb,
            float(len(reads)),
            float(sum(reads)),
            float(sum(writes)),
        ]
        for lag in range(1, self.lookback_months + 1):
            features.append(reads[-lag] if lag <= len(reads) else 0.0)
        for lag in range(1, self.lookback_months + 1):
            features.append(writes[-lag] if lag <= len(writes) else 0.0)
        return np.array(features)

    def build_matrix(
        self, catalog: DatasetCatalog, horizon_months: int
    ) -> tuple[np.ndarray, list[HistorySplit]]:
        """Feature matrix plus the per-dataset history splits (for labelling)."""
        rows = []
        splits = []
        for dataset in catalog:
            split = split_history(dataset, horizon_months)
            rows.append(self.features_for(dataset, split))
            splits.append(split)
        return np.vstack(rows), splits
