"""The tier predictor (Random Forest) and the rule-based baselines of Table IV.

``TierPredictor`` learns the OPTASSIGN-derived ideal tier from historical
access features; the module also provides the caching-style rules the paper
compares against:

* **all hot** — the platform default (everything stays in the hottest tier);
* **hot if accessed in the last n months** — the classic lifecycle rule;
* **previous period's optimal tier** — reuse last month's OPTASSIGN output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...cloud import CostModel, DatasetCatalog
from ...ml import RandomForestClassifier, confusion_matrix, f1_score, precision_recall_f1
from .features import HistorySplit, TierFeatureBuilder, split_history
from .labeling import ideal_tier_labels

__all__ = [
    "TierPredictor",
    "TierPredictionReport",
    "rule_all_hot",
    "rule_hot_if_recent",
    "rule_previous_optimal",
]


@dataclass
class TierPredictionReport:
    """Held-out quality of the tier predictor (the paper's Table III)."""

    confusion: np.ndarray
    labels: list[int]
    f1_macro: float
    precision_per_class: dict[int, float]
    recall_per_class: dict[int, float]


class TierPredictor:
    """Random-Forest classifier over the tier-prediction features."""

    def __init__(
        self,
        feature_builder: TierFeatureBuilder | None = None,
        n_estimators: int = 60,
        max_depth: int = 10,
        random_state: int = 5,
    ):
        self.feature_builder = feature_builder or TierFeatureBuilder()
        self._model = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=max_depth, random_state=random_state
        )
        self._fitted = False

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "TierPredictor":
        self._model.fit(np.asarray(features, dtype=float), np.asarray(labels))
        self._fitted = True
        return self

    def fit_catalog(
        self,
        catalog: DatasetCatalog,
        horizon_months: int,
        cost_model: CostModel,
    ) -> "TierPredictor":
        """Label ``catalog`` with OPTASSIGN's ideal tiers and fit on its features."""
        features, splits = self.feature_builder.build_matrix(catalog, horizon_months)
        labels = ideal_tier_labels(catalog, splits, cost_model)
        return self.fit(features, labels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predictor must be fitted before calling predict")
        return self._model.predict(np.asarray(features, dtype=float))

    def predict_catalog(
        self, catalog: DatasetCatalog, horizon_months: int
    ) -> dict[str, int]:
        """Predicted tier per dataset name."""
        features, _ = self.feature_builder.build_matrix(catalog, horizon_months)
        predictions = self.predict(features)
        return {
            dataset.name: int(tier) for dataset, tier in zip(catalog, predictions)
        }

    def evaluate(
        self, features: np.ndarray, true_labels: Sequence[int]
    ) -> TierPredictionReport:
        """Confusion matrix, per-class precision/recall and macro F1 on held-out data."""
        predictions = self.predict(features)
        true_labels = np.asarray(true_labels)
        labels = sorted(set(true_labels.tolist()) | set(predictions.tolist()))
        matrix = confusion_matrix(true_labels, predictions, labels=labels)
        precision: dict[int, float] = {}
        recall: dict[int, float] = {}
        for label in labels:
            p, r, _ = precision_recall_f1(true_labels, predictions, positive_label=label)
            precision[int(label)] = p
            recall[int(label)] = r
        return TierPredictionReport(
            confusion=matrix,
            labels=[int(label) for label in labels],
            f1_macro=f1_score(true_labels, predictions, average="macro"),
            precision_per_class=precision,
            recall_per_class=recall,
        )


# ---------------------------------------------------------------------------
# Rule-based baselines (Table IV)
# ---------------------------------------------------------------------------

def rule_all_hot(catalog: DatasetCatalog, hot_tier: int = 0) -> dict[str, int]:
    """The platform default: every dataset stays in the hottest available tier."""
    return {dataset.name: hot_tier for dataset in catalog}


def rule_hot_if_recent(
    catalog: DatasetCatalog,
    horizon_months: int,
    recency_months: int,
    hot_tier: int = 0,
    cold_tier: int | None = None,
) -> dict[str, int]:
    """Keep a dataset hot iff it was read in the last ``recency_months`` of *history*.

    ``cold_tier`` defaults to the tier right after ``hot_tier``.  The recency
    window looks at the months before the prediction horizon (the rule cannot
    see the future), exactly as a lifecycle policy would.
    """
    if cold_tier is None:
        cold_tier = hot_tier + 1
    placement = {}
    for dataset in catalog:
        split = split_history(dataset, horizon_months)
        recent_reads = sum(split.history_reads[-recency_months:]) if recency_months else 0.0
        placement[dataset.name] = hot_tier if recent_reads > 0 else cold_tier
    return placement


def rule_previous_optimal(
    catalog: DatasetCatalog,
    horizon_months: int,
    previous_window_months: int,
    cost_model: CostModel,
) -> dict[str, int]:
    """Reuse the tier that *was* optimal for the most recent history window.

    This is the "use optimal tier of previous month" baseline: compute the
    OPTASSIGN-ideal tier using the last ``previous_window_months`` of history
    as if they were the projection, then apply it to the upcoming horizon.
    """
    from ...cloud import DataPartition
    from ..optassign import OptAssignProblem, solve_greedy

    partitions = []
    for dataset in catalog:
        split = split_history(dataset, horizon_months)
        recent_reads = (
            sum(split.history_reads[-previous_window_months:])
            if previous_window_months
            else 0.0
        )
        partitions.append(
            DataPartition(
                name=dataset.name,
                size_gb=dataset.size_gb,
                predicted_accesses=float(recent_reads),
                latency_threshold_s=dataset.latency_threshold_s,
                current_tier=dataset.current_tier,
            )
        )
    problem = OptAssignProblem(partitions, cost_model)
    assignment = solve_greedy(problem)
    return {name: option.tier_index for name, option in assignment.choices.items()}
