"""Access-pattern prediction: the optimal-tier classifier and rule baselines (Tables III-IV)."""

from .features import HistorySplit, TierFeatureBuilder, split_history
from .forecast import WindowedAccessForecaster
from .labeling import ideal_tier_labels, percent_benefit_vs_baseline, placement_cost
from .tier_predictor import (
    TierPredictionReport,
    TierPredictor,
    rule_all_hot,
    rule_hot_if_recent,
    rule_previous_optimal,
)

__all__ = [
    "HistorySplit",
    "TierFeatureBuilder",
    "split_history",
    "WindowedAccessForecaster",
    "ideal_tier_labels",
    "placement_cost",
    "percent_benefit_vs_baseline",
    "TierPredictor",
    "TierPredictionReport",
    "rule_all_hot",
    "rule_hot_if_recent",
    "rule_previous_optimal",
]
