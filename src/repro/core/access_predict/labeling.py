"""Ground-truth "ideal tier" labels derived from OPTASSIGN.

The paper trains its tier classifier on labels produced by running OPTASSIGN
with *known* future accesses: the optimal tier under perfect information is
the class the model learns to predict from history alone.  This module wraps
that labelling step, and also computes the billed cost of an arbitrary tier
placement over the horizon so that the % cost-benefit numbers of Tables II
and IV can be reproduced for both predicted and rule-based placements.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ...cloud import (
    CostBreakdown,
    CostModel,
    DataPartition,
    DatasetCatalog,
    NO_COMPRESSION_PROFILE,
)
from ..optassign import OptAssignProblem, solve_greedy
from .features import HistorySplit

__all__ = ["ideal_tier_labels", "placement_cost", "percent_benefit_vs_baseline"]


def _partition_for(dataset, future_accesses: float) -> DataPartition:
    return DataPartition(
        name=dataset.name,
        size_gb=dataset.size_gb,
        predicted_accesses=future_accesses,
        latency_threshold_s=dataset.latency_threshold_s,
        current_tier=dataset.current_tier,
    )


def ideal_tier_labels(
    catalog: DatasetCatalog,
    splits: Sequence[HistorySplit],
    cost_model: CostModel,
) -> list[int]:
    """The cost-optimal tier index per dataset given its *actual* future accesses.

    Uses the greedy OPTASSIGN solver with no compression (``K = 0``), which is
    optimal in the unbounded-capacity data-lake setting the enterprise
    experiments run in.
    """
    if len(splits) != len(catalog):
        raise ValueError("one history split per dataset is required")
    partitions = [
        _partition_for(dataset, split.future_read_total)
        for dataset, split in zip(catalog, splits)
    ]
    problem = OptAssignProblem(partitions, cost_model)
    assignment = solve_greedy(problem)
    return [assignment.choices[dataset.name].tier_index for dataset in catalog]


def placement_cost(
    catalog: DatasetCatalog,
    splits: Sequence[HistorySplit],
    tier_of: Mapping[str, int] | Sequence[int],
    cost_model: CostModel,
) -> CostBreakdown:
    """Billed cost of holding every dataset in its assigned tier over the horizon.

    ``tier_of`` is either a mapping from dataset name to tier index or a
    sequence aligned with the catalog order.  The *actual* future accesses
    (from the splits) drive the read costs, so mispredictions are charged at
    their true price.
    """
    if len(splits) != len(catalog):
        raise ValueError("one history split per dataset is required")
    total = CostBreakdown()
    for position, (dataset, split) in enumerate(zip(catalog, splits)):
        if isinstance(tier_of, Mapping):
            tier_index = tier_of[dataset.name]
        else:
            tier_index = tier_of[position]
        partition = _partition_for(dataset, split.future_read_total)
        total += cost_model.placement_breakdown(
            partition, tier_index, NO_COMPRESSION_PROFILE
        )
    return total


def percent_benefit_vs_baseline(
    catalog: DatasetCatalog,
    splits: Sequence[HistorySplit],
    tier_of,
    cost_model: CostModel,
    baseline_tier: int = 0,
) -> float:
    """Percent cost saving of a placement versus "everything in ``baseline_tier``"."""
    baseline = placement_cost(
        catalog, splits, [baseline_tier] * len(catalog), cost_model
    )
    optimized = placement_cost(catalog, splits, tier_of, cost_model)
    if baseline.total == 0:
        return 0.0
    return 100.0 * (baseline.total - optimized.total) / baseline.total
