"""Warm-start access forecasting over sliding-window features.

The batch experiments predict a dataset's future accesses once, from its full
history (:mod:`repro.core.access_predict.features`).  The online tiering
engine (:mod:`repro.engine`) needs the same projection *every epoch* without
re-reading the trace, so :class:`WindowedAccessForecaster` keeps an
exponentially-weighted running rate per partition that is updated in
O(events observed this epoch) and blends it with the short dense window the
engine's feature store maintains.

The EWMA is stored sparsely: a partition that goes silent is not touched at
all — the geometric decay of the skipped zero-months is applied lazily when
the state is next read, so warm-starting across thousands of epochs costs
nothing for cold data.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["WindowedAccessForecaster"]


class WindowedAccessForecaster:
    """Per-partition monthly access-rate forecaster with incremental updates.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; higher reacts faster to drift.
    blend:
        Weight of the EWMA versus the plain window mean when a dense window
        is supplied to :meth:`forecast_monthly` (1.0 = EWMA only).
    """

    def __init__(self, alpha: float = 0.4, blend: float = 0.6):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must be in [0, 1]")
        self.alpha = alpha
        self.blend = blend
        # name -> (ewma value, epoch at which that value was current)
        self._state: dict[str, tuple[float, int]] = {}
        self._last_epoch: int | None = None

    # -- warm-start updates ---------------------------------------------------
    def update(self, epoch: int, observed: Mapping[str, float]) -> None:
        """Fold one epoch of observed read counts into the running rates.

        Only partitions that actually appear in ``observed`` are touched;
        everything else decays implicitly (months without an update count as
        zero-read months thanks to the lazy geometric decay).  Epochs must be
        strictly increasing — one ``update`` call per epoch; folding the same
        epoch twice would double-apply the EWMA, so aggregate an epoch's
        observations before calling.
        """
        if self._last_epoch is not None and epoch <= self._last_epoch:
            raise ValueError(
                f"epochs must be strictly increasing (got {epoch} after "
                f"{self._last_epoch}); aggregate an epoch's reads into one update"
            )
        self._last_epoch = epoch
        for name, reads in observed.items():
            if reads < 0:
                raise ValueError(f"negative read count for {name!r}")
            previous = self._decayed_rate(name, through_epoch=epoch - 1)
            self._state[name] = (
                self.alpha * float(reads) + (1.0 - self.alpha) * previous,
                epoch,
            )

    def _decayed_rate(self, name: str, through_epoch: int) -> float:
        """The EWMA as of ``through_epoch``, decaying lazily over silent months."""
        state = self._state.get(name)
        if state is None:
            return 0.0
        value, at_epoch = state
        gap = through_epoch - at_epoch
        if gap <= 0:
            return value
        return value * (1.0 - self.alpha) ** gap

    # -- forecasting -----------------------------------------------------------
    def rate(self, name: str, epoch: int | None = None) -> float:
        """Current estimated monthly read rate of one partition."""
        through = self._last_epoch if epoch is None else epoch
        if through is None:
            return 0.0
        return self._decayed_rate(name, through_epoch=through)

    def forecast_monthly(
        self,
        names: Iterable[str],
        window_series: Mapping[str, Sequence[float]] | None = None,
        epoch: int | None = None,
    ) -> dict[str, float]:
        """Projected reads **per month** for the upcoming horizon.

        When ``window_series`` supplies a dense recent-months series per
        partition (the engine's feature-store window), the forecast blends
        the EWMA with the window mean; otherwise it is the EWMA alone.
        Multiply by the horizon length to get ``predicted_accesses`` for
        OPTASSIGN.
        """
        forecasts: dict[str, float] = {}
        for name in names:
            rate = self.rate(name, epoch)
            series = window_series.get(name) if window_series is not None else None
            if series:  # an empty window carries no signal — keep the EWMA/prior
                mean = sum(series) / len(series)
                rate = self.blend * rate + (1.0 - self.blend) * mean
            forecasts[name] = max(rate, 0.0)
        return forecasts

    def __contains__(self, name: str) -> bool:
        """True if ``name`` already has warm EWMA state."""
        return name in self._state

    def seed(self, priors: Mapping[str, float], epoch: int = 0) -> None:
        """Warm-start the running rates from prior knowledge (e.g. batch history)."""
        for name, rate in priors.items():
            if rate < 0:
                raise ValueError(f"negative prior rate for {name!r}")
            self._state[name] = (float(rate), epoch)
