"""Result rows and table formatting for the pipeline experiments (Tables IX-XI).

Each pipeline variant produces one :class:`PipelineRow` with the same columns
the paper prints: storage / decompression / read / total cost, read latency
(time to first byte), expected decompression latency, and the tier occupancy
vector ("Tiering Scheme").  :func:`format_pipeline_table` renders a list of
rows as an aligned text table for the benchmark harness and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PipelineRow", "format_pipeline_table", "format_matrix"]


@dataclass
class PipelineRow:
    """One row of a Table IX/X/XI-style comparison."""

    variant: str
    other_method: str
    uses_partitioning: bool
    uses_tiering: bool
    uses_compression: bool
    storage_cost: float
    decompression_cost: float
    read_cost: float
    total_cost: float
    read_latency_s: float
    expected_decompression_latency_ms: float
    tier_counts: list[int] = field(default_factory=list)
    num_partitions: int = 0

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "other_method": self.other_method,
            "P": self.uses_partitioning,
            "T": self.uses_tiering,
            "C": self.uses_compression,
            "storage_cost": self.storage_cost,
            "decompression_cost": self.decompression_cost,
            "read_cost": self.read_cost,
            "total_cost": self.total_cost,
            "read_latency_s": self.read_latency_s,
            "expected_decompression_latency_ms": self.expected_decompression_latency_ms,
            "tier_counts": list(self.tier_counts),
            "num_partitions": self.num_partitions,
        }


def _flag(value: bool) -> str:
    return "Y" if value else "-"


def format_pipeline_table(rows: list[PipelineRow], title: str = "") -> str:
    """Render rows in the paper's column layout as fixed-width text."""
    header = (
        f"{'Variant':42s} {'Adapts':18s} {'P':1s} {'T':1s} {'C':1s} "
        f"{'Storage':>10s} {'Decomp':>8s} {'Read':>10s} {'Total':>10s} "
        f"{'TTFB(s)':>8s} {'Dec.lat(ms)':>11s}  {'Tiering scheme':s}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.variant:42s} {row.other_method:18s} "
            f"{_flag(row.uses_partitioning)} {_flag(row.uses_tiering)} {_flag(row.uses_compression)} "
            f"{row.storage_cost:10.1f} {row.decompression_cost:8.2f} {row.read_cost:10.2f} "
            f"{row.total_cost:10.1f} {row.read_latency_s:8.3f} "
            f"{row.expected_decompression_latency_ms:11.3f}  {row.tier_counts}"
        )
    return "\n".join(lines)


def format_matrix(matrix, row_labels, column_labels, title: str = "") -> str:
    """Render a small numeric matrix (e.g. a confusion matrix) as text."""
    width = max(
        [len(str(label)) for label in column_labels]
        + [len(f"{value}") for row in matrix for value in row]
        + [8]
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * 12 + " ".join(f"{str(label):>{width}s}" for label in column_labels))
    for label, row in zip(row_labels, matrix):
        lines.append(
            f"{str(label):12s}" + " ".join(f"{value:>{width}}" for value in row)
        )
    return "\n".join(lines)
