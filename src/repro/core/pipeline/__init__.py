"""The SCOPe unified pipeline and the paper's baseline variants (Section VII)."""

from .report import PipelineRow, format_matrix, format_pipeline_table
from .scope import ScopeConfig, ScopePipeline, ScopeVariant, paper_variant_suite

__all__ = [
    "PipelineRow",
    "format_pipeline_table",
    "format_matrix",
    "ScopeConfig",
    "ScopePipeline",
    "ScopeVariant",
    "paper_variant_suite",
]
