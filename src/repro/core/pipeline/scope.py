"""SCOPe: the unified pipeline combining G-PART, COMPREDICT and OPTASSIGN (Section VII).

The pipeline mirrors the paper's flow:

1. Query logs are grouped into query families; each family's file footprint
   becomes an initial partition.
2. G-PART merges the initial partitions into final partitions (optional —
   turning it off reproduces the "no partitioning" baselines where whole
   datasets are the placement units).
3. COMPREDICT (or ground-truth measurement) provides per-partition compression
   profiles for the candidate schemes (optional — turning it off reproduces
   the "no compression" baselines).
4. OPTASSIGN assigns every partition a tier and a scheme, minimising the
   weighted cost objective under latency SLAs and optional capacity
   reservations (restricting the tier catalog to a single tier reproduces the
   "store on premium" baselines).

Every variant in Tables IX-XI is a :class:`ScopeVariant`; :class:`ScopePipeline`
prepares the shared state once (file splits, query families, G-PART output,
partition contents) and then evaluates any number of variants against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from ...cloud import (
    CompressionProfile,
    CostModel,
    CostWeights,
    DataPartition,
    TierCatalog,
    azure_tier_catalog,
)
from ...compression import CodecRegistry, Layout, default_registry, measure_table
from ...tabular import Table
from ...workloads.queries import (
    QueryWorkload,
    TableFiles,
    build_query_families,
    split_table_into_files,
)
from ..compredict import CompressionPredictor
from ..datapart import (
    FileUniverse,
    InitialPartition,
    Merge,
    MergeConstraints,
    gpart,
    partitions_from_query_families,
)
from ..optassign import OptAssignProblem, solve_optassign
from .report import PipelineRow

__all__ = ["ScopeConfig", "ScopeVariant", "ScopePipeline", "paper_variant_suite"]


@dataclass(frozen=True)
class ScopeConfig:
    """Shared configuration of a pipeline run.

    ``target_total_gb`` rescales the synthetic tables' byte sizes so the cost
    model sees paper-scale volumes (e.g. 100 GB or 1 TB) while row counts stay
    laptop-sized; ``None`` keeps the actual serialised sizes.

    ``fixed_decompression_s_per_gb`` pins each scheme's decompression speed to
    a constant instead of the measured wall-clock time.  Compression *ratios*
    stay measured (they are deterministic); only the timing — the one
    machine- and run-dependent input to the pipeline — is replaced, which is
    what lets golden regression tests pin end-to-end costs exactly.
    """

    rows_per_file: int = 250
    duration_months: float = 5.5
    schemes: tuple[str, ...] = ("gzip", "snappy", "lz4")
    layout: str = Layout.CSV
    latency_threshold_s: float = 300.0
    compute_cost_per_s: float = 0.001
    target_total_gb: float | None = None
    include_archive: bool = False
    include_premium: bool = True
    capacity_fractions: tuple[float, ...] | None = (0.2, 0.35, 0.6)
    merge_constraints: MergeConstraints = field(
        default_factory=lambda: MergeConstraints(frequency_ratio=5.0)
    )
    use_predicted_compression: bool = False
    seed: int = 97
    fixed_decompression_s_per_gb: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if self.rows_per_file <= 0:
            raise ValueError("rows_per_file must be positive")
        if self.duration_months <= 0:
            raise ValueError("duration_months must be positive")
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        if self.target_total_gb is not None and self.target_total_gb <= 0:
            raise ValueError("target_total_gb must be positive when set")


@dataclass(frozen=True)
class ScopeVariant:
    """One row of the paper's pipeline comparison tables."""

    name: str
    other_method: str = "-"
    use_partitioning: bool = True
    use_tiering: bool = True
    use_compression: bool = True
    weights: CostWeights = field(default_factory=CostWeights)
    apply_capacity: bool = False


def paper_variant_suite() -> list[ScopeVariant]:
    """The eleven variants of Tables IX-XI, in the paper's row order."""
    latency_focused = CostWeights(alpha=0.0, beta=1.0, gamma=0.1)
    read_focused = CostWeights(alpha=0.05, beta=1.0, gamma=0.1)
    balanced = CostWeights(alpha=1.0, beta=1.0, gamma=1.0)
    return [
        ScopeVariant(
            name="Default (store on premium)",
            use_partitioning=False, use_tiering=False, use_compression=False,
        ),
        ScopeVariant(
            name="Compress & store on premium", other_method="Ares",
            use_partitioning=False, use_tiering=False, use_compression=True,
        ),
        ScopeVariant(
            name="Multi-Tiering", other_method="Hermes",
            use_partitioning=False, use_tiering=True, use_compression=False,
        ),
        ScopeVariant(
            name="Latency time focused", other_method="HCompress",
            use_partitioning=False, use_tiering=True, use_compression=True,
            weights=latency_focused,
        ),
        ScopeVariant(
            name="Partition & store on premium",
            use_partitioning=True, use_tiering=False, use_compression=False,
        ),
        ScopeVariant(
            name="Partitioning + Tiering", other_method="Hermes + G-PART",
            use_partitioning=True, use_tiering=True, use_compression=False,
        ),
        ScopeVariant(
            name="Partitioning + Compression", other_method="Ares + G-PART",
            use_partitioning=True, use_tiering=False, use_compression=True,
        ),
        ScopeVariant(
            name="SCOPe (Latency time focused)", other_method="HCompress + G-PART",
            use_partitioning=True, use_tiering=True, use_compression=True,
            weights=latency_focused,
        ),
        ScopeVariant(
            name="SCOPe (No capacity constraint)",
            use_partitioning=True, use_tiering=True, use_compression=True,
            weights=balanced, apply_capacity=False,
        ),
        ScopeVariant(
            name="SCOPe (Read+Decomp. cost focused)",
            use_partitioning=True, use_tiering=True, use_compression=True,
            weights=read_focused,
        ),
        ScopeVariant(
            name="SCOPe (Total cost focused)",
            use_partitioning=True, use_tiering=True, use_compression=True,
            weights=balanced, apply_capacity=True,
        ),
    ]


class ScopePipeline:
    """Prepares a workload once and evaluates SCOPe variants against it."""

    def __init__(
        self,
        tables: Mapping[str, Table],
        workload: QueryWorkload,
        config: ScopeConfig | None = None,
        registry: CodecRegistry | None = None,
    ):
        if not tables:
            raise ValueError("at least one table is required")
        self.tables = dict(tables)
        self.workload = workload
        self.config = config or ScopeConfig()
        self.registry = registry or default_registry()
        self._prepared = False

    # -- preparation -------------------------------------------------------------
    def prepare(self) -> "ScopePipeline":
        """Split tables into files, build query families, run G-PART, cache contents."""
        config = self.config
        # 1. File splits, with byte sizes optionally rescaled to the target volume.
        raw_splits = {
            name: split_table_into_files(table, config.rows_per_file)
            for name, table in self.tables.items()
        }
        actual_total_gb = sum(split.total_size_gb for split in raw_splits.values())
        scale = 1.0
        if config.target_total_gb is not None and actual_total_gb > 0:
            scale = config.target_total_gb / actual_total_gb
        self.size_scale = scale
        self.table_files: dict[str, TableFiles] = {
            name: split_table_into_files(table, config.rows_per_file, size_scale=scale)
            for name, table in self.tables.items()
        }

        # 2. Query families -> initial partitions.
        self.families = build_query_families(self.table_files, self.workload)
        if not self.families:
            raise ValueError("the workload produced no non-empty query families")
        self.initial_partitions, self.universe = partitions_from_query_families(
            self.families
        )

        # 3. G-PART merges (used by the partition-aware variants).  If the
        #    caller did not fix a span cap, derive one: merges stop growing at
        #    half the largest table, which keeps hot, selective partitions from
        #    being folded into whole-table partitions (the paper's S_thresh).
        constraints = config.merge_constraints
        if constraints.span_threshold is None:
            largest_table_records = max(
                table.num_rows for table in self.tables.values()
            )
            constraints = MergeConstraints(
                frequency_ratio=constraints.frequency_ratio,
                frequency_diff=constraints.frequency_diff,
                span_threshold=max(1, largest_table_records // 2),
                cost_threshold=constraints.cost_threshold,
            )
        self.merge_constraints = constraints
        self.gpart_result = gpart(self.initial_partitions, self.universe, constraints)

        # 4. Per-file row ranges for materialising partition contents.
        self._file_rows: dict[str, tuple[str, tuple[int, int]]] = {}
        for table_name, split in self.table_files.items():
            for block, row_range in zip(split.files, split.row_ranges):
                self._file_rows[block.file_id] = (table_name, row_range)

        # 5. Dataset-level (unpartitioned) placement units: one per table,
        #    with the access frequency of every query that touches it.
        accesses_per_table: dict[str, float] = {name: 0.0 for name in self.tables}
        for family in self.families:
            table_name = next(iter(family.file_ids)).split(".f")[0]
            accesses_per_table[table_name] = (
                accesses_per_table.get(table_name, 0.0) + family.frequency
            )
        self._dataset_accesses = accesses_per_table
        self._profile_cache: dict[tuple[str, str], CompressionProfile] = {}
        self._content_cache: dict[frozenset[str], Table] = {}
        self._predictor: CompressionPredictor | None = None
        self._prepared = True
        return self

    def _require_prepared(self) -> None:
        if not self._prepared:
            raise RuntimeError("call prepare() before evaluating variants")

    # -- partition construction ---------------------------------------------------
    def _content_for_files(self, file_ids: frozenset[str]) -> Table:
        """Materialise the rows of a set of files (all from one table)."""
        if file_ids in self._content_cache:
            return self._content_cache[file_ids]
        tables_hit = {self._file_rows[file_id][0] for file_id in file_ids}
        if len(tables_hit) != 1:
            raise ValueError(
                f"a partition must reference files of a single table, got {tables_hit}"
            )
        table_name = tables_hit.pop()
        table = self.tables[table_name]
        indices: list[int] = []
        for file_id in sorted(file_ids):
            _, (start, stop) = self._file_rows[file_id]
            indices.extend(range(start, stop))
        content = table.select_rows(indices, name=f"{table_name}_partition")
        self._content_cache[file_ids] = content
        return content

    def _placement_units(self, use_partitioning: bool) -> list[tuple[str, frozenset[str], float]]:
        """(name, file ids, predicted accesses) for each placement unit.

        With partitioning enabled the units are the G-PART merges plus, per
        table, a zero-access "remainder" partition holding the files no query
        family ever touches — data cannot be dropped just because it is cold,
        so the storage footprint is conserved across variants.
        """
        if use_partitioning:
            units = [
                (merge.name, merge.file_ids, merge.frequency)
                for merge in self.gpart_result.merges
            ]
            covered: set[str] = set()
            for merge in self.gpart_result.merges:
                covered |= merge.file_ids
            for table_name, split in self.table_files.items():
                remainder = frozenset(split.file_ids) - covered
                if remainder:
                    units.append((f"{table_name}.cold_remainder", frozenset(remainder), 0.0))
            return units
        units = []
        for table_name, split in self.table_files.items():
            units.append(
                (
                    table_name,
                    frozenset(split.file_ids),
                    self._dataset_accesses.get(table_name, 0.0),
                )
            )
        return units

    def _profiles_for(
        self, name: str, file_ids: frozenset[str], use_compression: bool
    ) -> dict[str, CompressionProfile]:
        if not use_compression:
            return {}
        profiles: dict[str, CompressionProfile] = {}
        content = self._content_for_files(file_ids)
        for scheme in self.config.schemes:
            cache_key = (name, scheme)
            if cache_key not in self._profile_cache:
                self._profile_cache[cache_key] = self._measure_or_predict(content, scheme)
            profiles[scheme] = self._profile_cache[cache_key]
        return profiles

    def _measure_or_predict(self, content: Table, scheme: str) -> CompressionProfile:
        fixed = self.config.fixed_decompression_s_per_gb
        if self.config.use_predicted_compression:
            predictor = self._ensure_predictor()
            profile = predictor.predict_profile(content, scheme, self.config.layout)
            if fixed is not None and scheme in fixed:
                profile = CompressionProfile(
                    scheme=scheme,
                    ratio=profile.ratio,
                    decompression_s_per_gb=fixed[scheme],
                )
            return profile
        measurement = measure_table(
            self.registry.create(scheme), content, self.config.layout
        )
        decompression = measurement.decompression_s_per_gb
        if fixed is not None and scheme in fixed:
            decompression = fixed[scheme]
        return CompressionProfile(
            scheme=scheme,
            ratio=max(measurement.ratio, 1.0),
            decompression_s_per_gb=decompression,
        )

    def _ensure_predictor(self) -> CompressionPredictor:
        if self._predictor is None:
            rng = np.random.default_rng(self.config.seed)
            samples: list[Table] = []
            for table in self.tables.values():
                # A handful of random contiguous chunks per table is enough to
                # fit the on-the-fly predictor used inside the pipeline.
                for _ in range(8):
                    if table.num_rows < 20:
                        samples.append(table)
                        continue
                    start = int(rng.integers(0, max(table.num_rows - 20, 1)))
                    length = int(rng.integers(20, min(200, table.num_rows - start) + 1))
                    samples.append(table.slice(start, start + length))
            codecs = [self.registry.create(scheme) for scheme in self.config.schemes]
            predictor = CompressionPredictor()
            predictor.fit(samples, codecs, layouts=(self.config.layout,))
            self._predictor = predictor
        return self._predictor

    # -- tier catalog / cost model ---------------------------------------------------
    def _tier_catalog(self, use_tiering: bool, apply_capacity: bool, total_gb: float) -> TierCatalog:
        catalog = azure_tier_catalog(
            include_archive=self.config.include_archive,
            include_premium=self.config.include_premium,
        )
        if not use_tiering:
            return catalog.subset([catalog[0].name])
        if apply_capacity and self.config.capacity_fractions is not None:
            fractions = list(self.config.capacity_fractions)
            capacities = []
            for index in range(len(catalog)):
                if index < len(fractions):
                    capacities.append(max(fractions[index] * total_gb, 1e-9))
                else:
                    capacities.append(float("inf"))
            catalog = catalog.with_capacities(capacities)
        return catalog

    # -- evaluation -------------------------------------------------------------------
    def run_variant(self, variant: ScopeVariant) -> PipelineRow:
        """Evaluate one variant and return its Table IX/X/XI-style row."""
        self._require_prepared()
        config = self.config
        units = self._placement_units(variant.use_partitioning)

        partitions: list[DataPartition] = []
        profiles: dict[str, dict[str, CompressionProfile]] = {}
        total_gb = 0.0
        for name, file_ids, accesses in units:
            size_gb = self.universe.size_gb_of(file_ids) if variant.use_partitioning else (
                self.table_files[name].total_size_gb
            )
            total_gb += size_gb
            partitions.append(
                DataPartition(
                    name=name,
                    size_gb=size_gb,
                    predicted_accesses=accesses,
                    latency_threshold_s=config.latency_threshold_s,
                )
            )
            profiles[name] = self._profiles_for(name, file_ids, variant.use_compression)

        catalog = self._tier_catalog(
            variant.use_tiering, variant.apply_capacity, total_gb
        )
        cost_model = CostModel(
            tiers=catalog,
            compute_cost_per_s=config.compute_cost_per_s,
            duration_months=config.duration_months,
            weights=variant.weights,
        )
        problem = OptAssignProblem(partitions, cost_model, profiles)
        report = solve_optassign(problem)
        assignment = report.assignment
        breakdown = assignment.breakdown
        return PipelineRow(
            variant=variant.name,
            other_method=variant.other_method,
            uses_partitioning=variant.use_partitioning,
            uses_tiering=variant.use_tiering,
            uses_compression=variant.use_compression,
            storage_cost=breakdown.storage,
            decompression_cost=breakdown.decompression,
            read_cost=breakdown.read + breakdown.write,
            total_cost=breakdown.total,
            read_latency_s=assignment.max_read_latency_s(),
            expected_decompression_latency_ms=1000.0
            * assignment.expected_decompression_latency_s(),
            tier_counts=assignment.tier_counts(),
            num_partitions=len(partitions),
        )

    def run_suite(self, variants: Sequence[ScopeVariant] | None = None) -> list[PipelineRow]:
        """Evaluate a list of variants (default: the paper's eleven rows)."""
        self._require_prepared()
        variants = list(variants) if variants is not None else paper_variant_suite()
        return [self.run_variant(variant) for variant in variants]
