"""The paper's core contribution: OPTASSIGN, COMPREDICT, DATAPART, tier prediction, SCOPe."""

from . import access_predict, compredict, datapart, optassign, pipeline

__all__ = ["optassign", "compredict", "datapart", "access_predict", "pipeline"]
