"""Incremental (delta) OPTASSIGN: re-solve only the rows that drifted.

Every re-optimization so far rebuilt and re-solved the full
partitions × tiers × schemes tensor even when drift touched a handful of
partitions.  :class:`DeltaSolver` keeps the previous epoch's per-partition
features and chosen options between solves and, on the next instance,

1. detects the **changed rows** — partitions whose windowed access forecast
   moved past a configurable relative drift threshold, plus every partition
   with a structural change (new name, different size / latency SLA /
   read-pattern columns, codec pin, SLO cap, provider affinity, an externally
   moved ``current_tier``) and every name the caller flags explicitly (a
   :class:`~repro.engine.DriftTriggered` policy's per-partition scores);
2. solves a carved-out subproblem over only those rows (the same vectorized
   masked-argmin greedy as the full path, so tie-breaks are identical);
3. **pins** every other partition to its standing choice from the cache;
4. checks tier capacities and shared pool budgets against the composed
   placement with one vectorized pass and runs
   :func:`~repro.core.optassign.repair_capacity` /
   :func:`~repro.core.optassign.repair_pools` **only when a budget is
   actually violated** — falling back to the full
   :func:`~repro.core.optassign.solve_optassign` facade (latency relaxation
   and all) when the violation is unfixable or the changed rows alone are
   infeasible.

Bounded-regret guarantee
------------------------

Pinning is safe because the objective is separable and, for a pinned row,
only the access-count feature may have moved (anything else marks the row
changed) — by at most the relative drift threshold ``tau``.  Writing a
partition's objective as ``S(o) + a * c(o)`` (access-independent storage /
migration terms plus per-access read + decompression cost ``c(o) >= 0``
scaled by the predicted accesses ``a >= 0``), the pinned option ``p`` was the
argmin under the cached accesses ``a`` and the fresh optimum ``o*`` under the
new accesses ``b`` satisfies ``|a - b| <= tau * max(a, b)``, so the row's
regret is::

    S(p) + b c(p) - S(o*) - b c(o*)
        <= (b - a)(c(p) - c(o*))            # p was optimal under a
        <= tau/(1-tau) * b * (c(p) + c(o*))
        <= 2 tau/(1-tau) * (S(p) + b c(p))  # o* is no worse than p

Summed over pinned rows (all terms non-negative), for ``tau < 1/3`` on an
instance where no repair fires::

    true_objective(delta) <= true_objective(full) * (1 - tau) / (1 - 3 tau)

and with every row marked changed (``tau = 0`` forces this whenever anything
moved at all) the delta solve **is** the full vectorized solve, bit for bit.
``tests/optassign/test_delta.py`` asserts both properties under random drift
masks.

Pricing staleness
-----------------

A pinned row's :class:`~repro.core.optassign.CandidateOption` carries the
objective/breakdown at which it was *last solved* — re-pricing the unchanged
majority every epoch would cost exactly the full tensor build the delta path
exists to avoid.  The **placement** (tier + scheme) is what downstream
consumers use (the engine's executor and simulator bill from it truthfully);
treat the per-option cents on pinned rows as approximate within the bound
above, and re-price against a fresh problem where exact accounting matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cloud import PoolSet
from ...obs import get_metrics, get_tracer
from .capacity import SolveReport, repair_capacity, repair_pools, solve_optassign
from .errors import InfeasibleError
from .greedy import solve_greedy
from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["DeltaSolver", "DeltaSolveReport"]


@dataclass
class DeltaSolveReport:
    """The assignment plus how the delta layer obtained it.

    ``mode`` is ``"delta"`` when pinning happened and ``"full"`` when the
    solver ran the complete :func:`solve_optassign` facade instead (cache
    bootstrap, every row changed, pricing/constraint signature changed, or a
    fallback); ``reason`` says which.  ``repaired`` records whether a budget
    violation forced a capacity/pool repair pass over the composed placement.
    """

    assignment: Assignment
    mode: str
    reason: str
    num_changed: int
    num_pinned: int
    repaired: bool = False
    full_report: SolveReport | None = None

    @property
    def pinned_fraction(self) -> float:
        total = self.num_changed + self.num_pinned
        return self.num_pinned / total if total else 0.0


class DeltaSolver:
    """Stateful incremental OPTASSIGN over a sequence of related instances.

    Parameters
    ----------
    drift_threshold:
        Relative move in ``predicted_accesses`` (``|new - old| >
        drift_threshold * max(|new|, |old|)``) past which a row is re-solved.
        ``0.0`` re-solves every row whose forecast moved at all — making the
        delta solve bit-exact against the full solve at the cost of its
        speedup.  Must stay below ``1/3`` for the documented regret bound.
    prefer:
        Solver preference forwarded to :func:`solve_optassign` whenever a
        full solve runs (bootstrap and fallbacks).  Defaults to ``"greedy"``
        — the vectorized argmin + repair path the delta subproblems also use,
        so full and delta epochs price identically.
    tolerance:
        Slack (GB) applied to capacity/pool budget checks, mirroring
        :func:`repair_capacity`.

    The cache is keyed by partition *name*: instances may cover different
    subsets between calls (the fleet scheduler stacks only the tenants whose
    policies fired), and rows absent from an instance simply keep their
    cached state until they reappear.  All instances must price against the
    same catalog object, horizon, compute price and objective weights — a
    changed pricing signature flushes the cache and runs a full solve.
    """

    def __init__(
        self,
        drift_threshold: float = 0.1,
        prefer: str = "greedy",
        tolerance: float = 1e-9,
        full_solver=None,
    ):
        if drift_threshold < 0.0:
            raise ValueError("drift_threshold must be non-negative")
        if drift_threshold >= 1.0 / 3.0:
            raise ValueError(
                "drift_threshold must stay below 1/3 (the bounded-regret "
                f"guarantee degenerates past it), got {drift_threshold}"
            )
        self.drift_threshold = float(drift_threshold)
        self.prefer = prefer
        self.tolerance = float(tolerance)
        #: Optional ``(problem, pool_set, reserved_gb) -> SolveReport``
        #: override for bootstrap/fallback full solves.  The sharded fleet
        #: solver plugs itself in here so even full epochs fan out across
        #: worker processes; it must price identically to the facade (the
        #: sharded solver's equivalence tests are what license this).
        self.full_solver = full_solver
        self.reset()

    def reset(self) -> None:
        """Drop every cached row; the next solve bootstraps with a full solve."""
        self._pricing: tuple | None = None
        self._names: tuple[str, ...] | None = None
        self._index: dict[str, int] | None = None
        self._features: dict[str, np.ndarray] = {}
        self._codec: tuple[str | None, ...] = ()
        self._tier: np.ndarray | None = None
        self._stored: np.ndarray | None = None
        self._options: dict[str, CandidateOption] = {}
        self._slo: dict[str, float] = {}
        self._affinity: dict[str, frozenset] = {}
        self._profiles: dict[str, dict] = {}
        self._banned: frozenset[int] = frozenset()
        self._forced: set[str] = set()

    # -- selective invalidation ---------------------------------------------------
    def invalidate(self, names: "set[str] | list[str] | tuple[str, ...]") -> None:
        """Force the named rows to re-solve on their next appearance.

        The chaos subsystem uses this for *selective* cache invalidation:
        only the rows whose tier/price/pool context actually changed are
        marked, everything else keeps its pin.  Names that never appear again
        are harmless (and dropped once their tenant's instance re-solves).
        """
        self._forced.update(names)

    def forget(self, names: "set[str] | list[str] | tuple[str, ...]") -> None:
        """Drop the named rows from the cache entirely (tenant departure).

        Unlike :meth:`invalidate` the rows do not re-solve — they stop
        existing, so a departing tenant's rows no longer occupy the merge
        path's arrays or leak into budget math if a same-named tenant later
        joins.
        """
        wanted = set(names)
        self._forced -= wanted
        if self._names is None:
            return
        drop = wanted & set(self._names)
        for name in wanted:
            self._options.pop(name, None)
            self._slo.pop(name, None)
            self._affinity.pop(name, None)
            self._profiles.pop(name, None)
        if not drop:
            return
        keep = [i for i, name in enumerate(self._names) if name not in drop]
        if not keep:
            # Everything is gone; bootstrap fresh on the next solve.
            self.reset()
            return
        rows = np.asarray(keep, dtype=np.int64)
        self._features = {
            key: column[rows] for key, column in self._features.items()
        }
        self._tier = self._tier[rows]
        self._stored = self._stored[rows]
        self._codec = tuple(self._codec[i] for i in keep)
        self._names = tuple(self._names[i] for i in keep)
        self._index = None

    def note_repricing(
        self,
        tiers,
        tier_indices: "set[int] | list[int] | tuple[int, ...] | None" = None,
        decreased: bool = False,
    ) -> None:
        """Acknowledge an in-place catalog :meth:`~repro.cloud.TierCatalog.reprice`.

        Updates the cached pricing signature to the catalog's new
        ``pricing_version`` (so the next solve does *not* flush the whole
        cache) and selectively invalidates the rows the re-pricing can
        actually affect: rows currently pinned on a repriced tier.  When any
        price *decreased* (or ``tier_indices`` is ``None``) every row is
        invalidated — a cheaper tier can attract partitions pinned anywhere,
        whereas a pure increase can only evict the rows sitting on it (a
        pricier candidate never overtakes another row's standing argmin).

        Without this acknowledgment the solver stays safe: the bumped
        ``pricing_version`` changes the signature and the next solve falls
        back to a full re-solve.
        """
        if self._pricing is None or self._pricing[0] != id(tiers):
            return
        self._pricing = (self._pricing[0], tiers.pricing_version) + self._pricing[2:]
        if self._names is None:
            return
        if decreased or tier_indices is None:
            self._forced.update(self._names)
            return
        affected = np.isin(
            self._tier, np.fromiter(sorted(tier_indices), dtype=np.int64)
        )
        self._forced.update(
            name for name, hit in zip(self._names, affected.tolist()) if hit
        )

    # -- public entry point -----------------------------------------------------
    def solve(
        self,
        problem: OptAssignProblem,
        changed: "set[str] | list[str] | tuple[str, ...] | None" = None,
        pool_set: PoolSet | None = None,
        reserved_gb: np.ndarray | None = None,
    ) -> DeltaSolveReport:
        """Solve ``problem`` incrementally against the cached previous epoch.

        ``changed`` adds names to the changed-row set on top of the solver's
        own drift detection (it can only widen the set, never pin a row the
        detector flagged).  ``pool_set`` / ``reserved_gb`` carry the fleet's
        shared budgets, checked exactly as :func:`repair_pools` would and
        repaired only on violation.
        """
        tracer = get_tracer()
        with tracer.span("optassign.delta_solve") as span:
            report = self._solve(problem, changed, pool_set, reserved_gb)
            if tracer.enabled:
                span.set(
                    mode=report.mode,
                    reason=report.reason,
                    num_changed=report.num_changed,
                    num_pinned=report.num_pinned,
                    repaired=report.repaired,
                )
                metrics = get_metrics()
                metrics.counter("optassign.delta.rows_resolved").add(
                    report.num_changed
                )
                metrics.counter("optassign.delta.rows_pinned").add(
                    report.num_pinned
                )
                if report.mode == "full":
                    # The fallback reasons are a small fixed vocabulary
                    # ("bootstrap", "pricing changed", ...), safe as a label.
                    metrics.counter(
                        "optassign.delta.full_solves", reason=report.reason
                    ).add()
            return report

    def _solve(
        self,
        problem: OptAssignProblem,
        changed: "set[str] | list[str] | tuple[str, ...] | None" = None,
        pool_set: PoolSet | None = None,
        reserved_gb: np.ndarray | None = None,
    ) -> DeltaSolveReport:
        if changed is not None:
            unknown = set(changed) - set(problem.partition_names)
            if unknown:
                raise ValueError(
                    f"changed names unknown to the problem: {sorted(unknown)[:5]}"
                )
        pricing = self._pricing_signature(problem)
        if self._names is None:
            return self._full(problem, pool_set, reserved_gb, "bootstrap")
        if pricing != self._pricing:
            self.reset()
            return self._full(problem, pool_set, reserved_gb, "pricing changed")

        arrays = problem.partition_arrays()
        names = arrays.names
        changed_mask, pinned_tier, pinned_stored = self._detect_changes(
            problem, arrays, set(changed) if changed else None
        )
        num_changed = int(changed_mask.sum())
        total = len(names)
        if num_changed == total:
            return self._full(problem, pool_set, reserved_gb, "every row changed")

        # Solve the changed rows on a carved-out subproblem; the pinned rows
        # keep their standing options.  The subproblem uses the same
        # vectorized masked-argmin greedy as the full path (per-partition
        # argmins are independent, and restricting the sorted scheme union to
        # one partition's available schemes preserves enumeration order), so
        # its choices are exactly what the full solve would pick pre-repair.
        tier = pinned_tier
        stored = pinned_stored
        choices: dict[str, CandidateOption] = {}
        changed_rows = np.flatnonzero(changed_mask)
        if changed_rows.size:
            sub = self._subproblem(problem, arrays, changed_rows)
            try:
                sub_assignment = solve_greedy(sub, enforce_unbounded=False)
            except InfeasibleError:
                return self._full(
                    problem, pool_set, reserved_gb, "changed rows infeasible"
                )
            tensors = sub.batch_tensors()
            scheme_index = {scheme: k for k, scheme in enumerate(tensors.schemes)}
            for row, name in enumerate(sub.partition_names):
                option = sub_assignment.choices[name]
                index = int(changed_rows[row])
                tier[index] = option.tier_index
                stored[index] = tensors.stored_gb[row, scheme_index[option.scheme]]
                choices[name] = option
        for index in np.flatnonzero(~changed_mask).tolist():
            name = names[index]
            choices[name] = self._options[name]

        assignment = Assignment(problem=problem, choices=choices, solver="delta")
        repaired = False
        if self._budgets_violated(problem, tier, stored, pool_set, reserved_gb):
            try:
                if problem.has_finite_capacity():
                    assignment = repair_capacity(assignment, tolerance=self.tolerance)
                if pool_set is not None:
                    assignment = repair_pools(
                        assignment,
                        pool_set,
                        reserved_gb=reserved_gb,
                        tolerance=self.tolerance,
                    )
            except InfeasibleError:
                return self._full(
                    problem, pool_set, reserved_gb, "budget repair infeasible"
                )
            repaired = True
            tier, stored = self._vectors_from_choices(problem, assignment.choices)

        updated = changed_mask
        if repaired:
            # Repair may evict a pinned row to a fresh, fresh-priced option;
            # such a row's feature baseline rebases to this epoch too.
            updated = changed_mask.copy()
            for index in np.flatnonzero(~changed_mask).tolist():
                name = names[index]
                if assignment.choices[name] is not self._options[name]:
                    updated[index] = True
        self._remember(
            problem, arrays, assignment.choices, tier, stored, pricing, updated=updated
        )
        return DeltaSolveReport(
            assignment=assignment,
            mode="delta",
            reason="",
            num_changed=num_changed,
            num_pinned=total - num_changed,
            repaired=repaired,
        )

    # -- change detection -------------------------------------------------------
    def _pricing_signature(self, problem: OptAssignProblem) -> tuple:
        # pricing_version catches in-place catalog re-pricing, which keeps
        # id(tiers) stable by design; chaos acknowledges the bump through
        # note_repricing() to invalidate selectively instead of flushing.
        model = problem.cost_model
        return (
            id(model.tiers),
            model.tiers.pricing_version,
            model.duration_months,
            model.compute_cost_per_s,
            model.weights,
        )

    def _detect_changes(
        self,
        problem: OptAssignProblem,
        arrays,
        flagged: set[str] | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(changed mask, pinned tier vector, pinned stored-GB vector).

        The tier/stored vectors are aligned to the *new* row order and only
        meaningful where the mask is False; changed rows are filled in by the
        subproblem solve.
        """
        names = arrays.names
        total = len(names)
        if names == self._names:
            rows = np.arange(total)
            cached = {key: column for key, column in self._features.items()}
            cached_codec = self._codec
            missing = np.zeros(total, dtype=bool)
        else:
            index = self._name_index()
            gathered = np.fromiter(
                (index.get(name, -1) for name in names),
                dtype=np.int64,
                count=total,
            )
            missing = gathered < 0
            rows = np.where(missing, 0, gathered)
            cached = {
                key: column[rows] for key, column in self._features.items()
            }
            cached_codec = tuple(self._codec[i] for i in rows.tolist())

        new_accesses = arrays.predicted_accesses
        old_accesses = cached["predicted_accesses"]
        drifted = np.abs(new_accesses - old_accesses) > (
            self.drift_threshold * np.maximum(np.abs(new_accesses), np.abs(old_accesses))
        )
        # A different warm-start tier re-prices the migration term of every
        # candidate, so it is structural: the regret bound only covers rows
        # whose sole moving feature is the access forecast.  (A row that
        # migrated last epoch is therefore re-solved once more the epoch
        # after, when its warm start first reflects the move.)
        structural = (
            (arrays.size_gb != cached["size_gb"])
            | (arrays.latency_threshold_s != cached["latency_threshold_s"])
            | (arrays.read_fraction != cached["read_fraction"])
            | (arrays.pushdown_fraction != cached["pushdown_fraction"])
            | (arrays.current_tier != cached["current_tier"])
        )
        pinned_tier = self._tier[rows].copy()
        pinned_stored = self._stored[rows].copy()
        moved = arrays.current_tier != pinned_tier

        changed = missing | drifted | structural | moved
        if arrays.current_codec != cached_codec:
            for i, (new_codec, old_codec) in enumerate(
                zip(arrays.current_codec, cached_codec)
            ):
                if new_codec != old_codec:
                    changed[i] = True
        # Hard-constraint edits (SLO caps, provider affinity) can invalidate a
        # standing placement, and a refreshed compression profile reprices a
        # row's entire candidate set, so an edited row is always re-solved.
        # The whole-dict comparisons are the cheap common case (constraints
        # and profile tables are usually static objects, and dict equality
        # short-circuits on per-value identity); only a mismatch pays the
        # per-name pass.  Fleet instances cover a name subset, so the gates
        # compare against the cache restricted to this instance's names.
        if problem._latency_slo != self._slo or problem._provider_affinity != self._affinity:
            for i, name in enumerate(names):
                if (
                    problem._latency_slo.get(name) != self._slo.get(name)
                    or problem._provider_affinity.get(name) != self._affinity.get(name)
                ):
                    changed[i] = True
        if problem._profiles != self._profiles:
            for i, name in enumerate(names):
                if problem._profiles[name] != self._profiles.get(name):
                    changed[i] = True
        if flagged:
            for i, name in enumerate(names):
                if name in flagged:
                    changed[i] = True
        if self._forced:
            for i, name in enumerate(names):
                if name in self._forced:
                    changed[i] = True
        banned = problem.banned_tiers
        if self._banned - banned:
            # Bans were lifted (provider recovery): a newly available tier
            # can attract partitions pinned anywhere, so nothing stays pinned.
            changed[:] = True
        elif banned:
            # A pinned row sitting on a banned tier must evacuate — checked
            # unconditionally (not just against the ban *diff*) so rows whose
            # instance skipped the epoch the ban landed still re-solve.
            changed |= np.isin(
                pinned_tier, np.fromiter(sorted(banned), dtype=np.int64)
            )
        return changed, pinned_tier, pinned_stored

    def _name_index(self) -> dict[str, int]:
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self._names)}
        return self._index

    # -- subproblem & budgets ----------------------------------------------------
    def _subproblem(
        self, problem: OptAssignProblem, arrays, rows: np.ndarray
    ) -> OptAssignProblem:
        """The changed rows as a standalone instance (shared profile tables).

        Delegates to :meth:`OptAssignProblem.carve` — the shared carve used
        here for changed rows and by the sharded fleet solver's reduce step.
        """
        del arrays  # the problem's cached arrays are the same object
        return problem.carve(rows)

    def _budgets_violated(
        self,
        problem: OptAssignProblem,
        tier: np.ndarray,
        stored: np.ndarray,
        pool_set: PoolSet | None,
        reserved_gb: np.ndarray | None,
    ) -> bool:
        """One vectorized pass over the composed placement's tier usage."""
        if not problem.has_finite_capacity() and pool_set is None:
            return False
        num_tiers = problem.tier_count
        usage = np.bincount(tier, weights=stored, minlength=num_tiers)
        if problem.has_finite_capacity():
            capacities = problem.cost_model.tiers.cost_arrays()["capacity_gb"]
            if (usage > capacities + self.tolerance).any():
                return True
        if pool_set is not None:
            budgets = pool_set.capacities
            if reserved_gb is not None:
                budgets = np.maximum(budgets - np.asarray(reserved_gb, dtype=np.float64), 0.0)
            if (pool_set.usage(usage) > budgets + self.tolerance).any():
                return True
        return False

    def _vectors_from_choices(
        self, problem: OptAssignProblem, choices: dict[str, CandidateOption]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tier / stored-GB vectors of an arbitrary choice map (repair path)."""
        arrays = problem.partition_arrays()
        tensors = problem.batch_tensors()
        scheme_index = {scheme: k for k, scheme in enumerate(tensors.schemes)}
        total = len(arrays)
        tier = np.empty(total, dtype=np.int64)
        scheme = np.empty(total, dtype=np.int64)
        for i, name in enumerate(arrays.names):
            option = choices[name]
            tier[i] = option.tier_index
            scheme[i] = scheme_index[option.scheme]
        stored = tensors.stored_gb[np.arange(total), scheme]
        return tier, stored

    # -- full solve & cache update ----------------------------------------------
    def _full(
        self,
        problem: OptAssignProblem,
        pool_set: PoolSet | None,
        reserved_gb: np.ndarray | None,
        reason: str,
    ) -> DeltaSolveReport:
        if self.full_solver is not None:
            report = self.full_solver(problem, pool_set, reserved_gb)
        else:
            post_repair = None
            if pool_set is not None:
                post_repair = lambda assignment: repair_pools(  # noqa: E731
                    assignment, pool_set, reserved_gb=reserved_gb
                )
            report = solve_optassign(
                problem, prefer=self.prefer, post_repair=post_repair
            )
        arrays = problem.partition_arrays()
        tier, stored = self._vectors_from_choices(problem, report.assignment.choices)
        self._remember(
            problem,
            arrays,
            report.assignment.choices,
            tier,
            stored,
            self._pricing_signature(problem),
        )
        total = len(arrays)
        return DeltaSolveReport(
            assignment=report.assignment,
            mode="full",
            reason=reason,
            num_changed=total,
            num_pinned=0,
            repaired=report.assignment.solver.endswith(("+repair", "+pools")),
            full_report=report,
        )

    def _remember(
        self,
        problem: OptAssignProblem,
        arrays,
        choices: dict[str, CandidateOption],
        tier: np.ndarray,
        stored: np.ndarray,
        pricing: tuple,
        updated: np.ndarray | None = None,
    ) -> None:
        """Fold the solved instance into the cache (wholesale or merge).

        ``updated`` (a per-row bool mask) restricts *feature* writes to the
        rows that were actually re-solved: a pinned row must keep the feature
        reference it was last solved under, or a forecast drifting slowly —
        just under the threshold every epoch — would ratchet the baseline
        along with it and never trigger a re-solve.  Everything else in the
        cache (chosen tier/stored vectors, options, codecs, constraints) is
        written wholesale: for pinned rows the new values equal the cached
        ones by construction, so only features differ.
        """
        self._pricing = pricing
        self._banned = problem.banned_tiers
        # Rows covered by this instance were just (re-)solved; forced marks
        # for names outside it stay armed until their tenant next fires.
        self._forced -= set(arrays.names)
        features = {
            "size_gb": arrays.size_gb,
            "predicted_accesses": arrays.predicted_accesses,
            "latency_threshold_s": arrays.latency_threshold_s,
            "read_fraction": arrays.read_fraction,
            "pushdown_fraction": arrays.pushdown_fraction,
            "current_tier": arrays.current_tier,
        }
        names = arrays.names
        if self._names is None or names == self._names:
            if self._names is not None and updated is not None:
                rows = np.flatnonzero(updated)
                for key, column in features.items():
                    self._features[key][rows] = column[rows]
            else:
                self._features = {
                    key: column.copy() for key, column in features.items()
                }
            self._names = names
            self._codec = arrays.current_codec
            self._tier = tier.copy()
            self._stored = stored.copy()
            self._options = dict(choices)
            self._slo = dict(problem._latency_slo)
            self._affinity = dict(problem._provider_affinity)
            self._profiles = dict(problem._profiles)
            return
        # Merge path: the instance covers a different name set (the fleet's
        # firing subset).  Known rows are overwritten in place, novel rows
        # appended; rows outside the instance keep their cached state.
        index = self._name_index()
        known_positions: list[int] = []
        known_rows: list[int] = []
        novel_rows: list[int] = []
        for row, name in enumerate(names):
            position = index.get(name)
            if position is None:
                novel_rows.append(row)
            else:
                known_positions.append(position)
                known_rows.append(row)
        if known_rows:
            positions = np.asarray(known_positions, dtype=np.int64)
            rows = np.asarray(known_rows, dtype=np.int64)
            if updated is not None:
                keep = updated[rows]
                feature_positions, feature_rows = positions[keep], rows[keep]
            else:
                feature_positions, feature_rows = positions, rows
            for key, column in features.items():
                self._features[key][feature_positions] = column[feature_rows]
            self._tier[positions] = tier[rows]
            self._stored[positions] = stored[rows]
            if any(
                arrays.current_codec[row] != self._codec[position]
                for position, row in zip(known_positions, known_rows)
            ):
                codecs = list(self._codec)
                for position, row in zip(known_positions, known_rows):
                    codecs[position] = arrays.current_codec[row]
                self._codec = tuple(codecs)
        if novel_rows:
            rows = np.asarray(novel_rows, dtype=np.int64)
            for key, column in features.items():
                self._features[key] = np.concatenate(
                    [self._features[key], column[rows]]
                )
            self._tier = np.concatenate([self._tier, tier[rows]])
            self._stored = np.concatenate([self._stored, stored[rows]])
            self._codec = self._codec + tuple(
                arrays.current_codec[row] for row in novel_rows
            )
            self._names = self._names + tuple(names[row] for row in novel_rows)
            self._index = None
        self._options.update(choices)
        self._profiles.update(problem._profiles)
        for name in names:
            cap = problem._latency_slo.get(name)
            if cap is None:
                self._slo.pop(name, None)
            else:
                self._slo[name] = cap
            allowed = problem._provider_affinity.get(name)
            if allowed is None:
                self._affinity.pop(name, None)
            else:
                self._affinity[name] = allowed
