"""Assignment results: the output of every OPTASSIGN solver.

An :class:`Assignment` maps each partition to its chosen (tier, scheme) pair
and carries the aggregate objective value, the billed cost breakdown and the
latency profile of the placement, plus the "[Premium, Hot, Cool]"-style tier
occupancy vector the paper prints in its pipeline tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ...cloud import CostBreakdown, PlacementDecision
from .problem import CandidateOption, OptAssignProblem

__all__ = ["Assignment"]


@dataclass
class Assignment:
    """A complete placement produced by an OPTASSIGN solver."""

    problem: OptAssignProblem
    choices: dict[str, CandidateOption]
    solver: str

    def __post_init__(self) -> None:
        missing = set(self.problem.partition_names) - set(self.choices)
        if missing:
            raise ValueError(f"assignment missing partitions: {sorted(missing)}")

    # -- aggregates ---------------------------------------------------------------
    @property
    def objective(self) -> float:
        """Total weighted objective value (Eq. 1)."""
        return float(sum(option.objective for option in self.choices.values()))

    @property
    def breakdown(self) -> CostBreakdown:
        """Total unweighted (billed) cost breakdown."""
        total = CostBreakdown()
        for option in self.choices.values():
            total += option.breakdown
        return total

    @property
    def total_cost(self) -> float:
        return self.breakdown.total

    def tier_counts(self) -> list[int]:
        """Number of partitions per tier — the paper's "Tiering Scheme" column."""
        counts = [0] * self.problem.tier_count
        for option in self.choices.values():
            counts[option.tier_index] += 1
        return counts

    def scheme_counts(self) -> dict[str, int]:
        """Number of partitions per compression scheme."""
        counts: dict[str, int] = {}
        for option in self.choices.values():
            counts[option.scheme] = counts.get(option.scheme, 0) + 1
        return counts

    # -- latency ---------------------------------------------------------------------
    def max_read_latency_s(self) -> float:
        """Worst-case time to first byte across the placement (paper: "Read Latency")."""
        tiers = self.problem.cost_model.tiers
        return max(tiers[option.tier_index].latency_s for option in self.choices.values())

    def expected_decompression_latency_s(self) -> float:
        """Access-weighted mean decompression latency (paper: "Expected Decomp. Latency")."""
        by_name = {partition.name: partition for partition in self.problem.partitions}
        total_weight = 0.0
        weighted = 0.0
        for name, option in self.choices.items():
            partition = by_name[name]
            profile = self.problem.profile_for(name, option.scheme)
            accesses = partition.effective_accesses
            weighted += accesses * profile.decompression_seconds(
                partition.read_gb_per_access
            )
            total_weight += accesses
        return weighted / total_weight if total_weight else 0.0

    def latency_violations(self) -> list[str]:
        """Partitions whose chosen option violates their latency SLA."""
        return [
            name for name, option in self.choices.items() if not option.latency_feasible
        ]

    def is_latency_feasible(self) -> bool:
        return not self.latency_violations()

    # -- capacity --------------------------------------------------------------------
    def tier_usage_gb(self) -> list[float]:
        """On-disk GB stored per tier under this placement."""
        usage = [0.0] * self.problem.tier_count
        by_name = {partition.name: partition for partition in self.problem.partitions}
        for name, option in self.choices.items():
            usage[option.tier_index] += self.problem.stored_gb(
                by_name[name], option.scheme
            )
        return usage

    def is_capacity_feasible(self, tolerance: float = 1e-9) -> bool:
        """True if no tier's reserved capacity is exceeded."""
        usage = self.tier_usage_gb()
        for tier, used in zip(self.problem.cost_model.tiers, usage):
            if used > tier.capacity_gb + tolerance:
                return False
        return True

    # -- interoperability -----------------------------------------------------------
    def to_placement(self) -> dict[str, PlacementDecision]:
        """Convert to the simulator's placement format."""
        return {
            name: PlacementDecision(
                tier_index=option.tier_index,
                profile=self.problem.profile_for(name, option.scheme),
            )
            for name, option in self.choices.items()
        }

    def summary(self) -> dict[str, float | list[int] | str]:
        """A compact dictionary used by reports and benchmarks."""
        breakdown = self.breakdown
        return {
            "solver": self.solver,
            "storage_cost": breakdown.storage,
            "decompression_cost": breakdown.decompression,
            "read_cost": breakdown.read,
            "write_cost": breakdown.write,
            "total_cost": breakdown.total,
            "read_latency_s": self.max_read_latency_s(),
            "expected_decompression_latency_ms": 1000.0
            * self.expected_decompression_latency_s(),
            "tier_counts": self.tier_counts(),
        }
