"""OPTASSIGN: optimal tier + compression assignment (Section IV of the paper).

* :class:`OptAssignProblem` / :class:`CandidateOption` — the instance and its
  per-partition candidate enumeration.
* :func:`solve_greedy` — optimal for unbounded capacities (Theorem 3).
* :func:`solve_ilp` — exact MILP for the general capacity-bounded case (Eq. 1).
* :func:`solve_matching` — optimal bipartite matching for equal-size,
  no-compression instances (Theorem 2).
* :func:`solve_optassign` — the facade with automatic solver choice and
  iterative latency relaxation.
* :class:`DeltaSolver` — incremental re-solve across epochs: only drifted
  rows are re-optimized, everything else stays pinned (bounded regret).
"""

from .capacity import SolveReport, repair_capacity, repair_pools, solve_optassign
from .delta import DeltaSolveReport, DeltaSolver
from .errors import InfeasibleError
from .greedy import solve_greedy
from .ilp import IlpInfeasibleError, solve_ilp
from .matching import MatchingNotApplicableError, solve_matching
from .problem import CandidateOption, OptAssignProblem, ProfileTable
from .result import Assignment
from .stacked import StackedProblem, TENANT_SEPARATOR

__all__ = [
    "OptAssignProblem",
    "CandidateOption",
    "ProfileTable",
    "Assignment",
    "solve_greedy",
    "solve_ilp",
    "InfeasibleError",
    "IlpInfeasibleError",
    "solve_matching",
    "MatchingNotApplicableError",
    "solve_optassign",
    "repair_capacity",
    "repair_pools",
    "SolveReport",
    "DeltaSolver",
    "DeltaSolveReport",
    "StackedProblem",
    "TENANT_SEPARATOR",
]
