"""Typed infeasibility errors shared by every OPTASSIGN solver path.

All three ways an instance can turn out unsolvable raise (a subclass of)
:class:`InfeasibleError`:

* a partition has no feasible (tier, scheme) candidate at all — latency SLA,
  tier SLO, provider affinity and codec pinning jointly empty its option set
  (greedy and the ILP both detect this);
* the ILP proves the latency and capacity constraints jointly unsatisfiable;
* greedy + :func:`~repro.core.optassign.repair_capacity` gives up because an
  over-full tier has no movable partition with a feasible option elsewhere.

``InfeasibleError`` subclasses ``ValueError`` so existing callers that caught
``ValueError`` keep working; new code should catch the typed error.  The
facade :func:`~repro.core.optassign.solve_optassign` retries with relaxed
latency thresholds on any ``InfeasibleError`` and re-raises one when the
instance stays infeasible after all rounds.
"""

from __future__ import annotations

__all__ = ["InfeasibleError"]


class InfeasibleError(ValueError):
    """No assignment satisfies the instance's hard constraints."""
