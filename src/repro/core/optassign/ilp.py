"""Exact OPTASSIGN solver: the paper's ILP (Eq. 1) via ``scipy.optimize.milp``.

One binary variable per latency-feasible, codec-allowed (partition, tier,
scheme) triple.  The latency constraint and the codec-pinning constraint are
enforced by *excluding* infeasible triples from the variable set (they only
ever constrain a single variable each, so exclusion is equivalent to the
paper's constraint rows); the assignment and capacity constraints become the
MILP's linear constraints.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .errors import InfeasibleError
from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["solve_ilp", "IlpInfeasibleError"]


class IlpInfeasibleError(InfeasibleError):
    """Raised when the ILP has no feasible solution (capacity + latency conflict).

    Subclasses the shared :class:`InfeasibleError` (hence ``ValueError``) so
    the facade and callers handle every solver's give-up path uniformly.
    """


def solve_ilp(problem: OptAssignProblem, time_limit_s: float | None = None) -> Assignment:
    """Solve OPTASSIGN exactly with a mixed-integer linear program.

    Raises
    ------
    IlpInfeasibleError
        If no assignment satisfies the latency and capacity constraints
        simultaneously.  The caller (``solve_optassign``) handles iterative
        latency relaxation, mirroring the paper's prescription.
    """
    options_by_partition = problem.all_options()
    empty = [name for name, options in options_by_partition.items() if not options]
    if empty:
        raise IlpInfeasibleError(
            "partitions with no feasible (tier, scheme) option (latency SLA, "
            f"tier SLO, provider affinity, codec pinning): {empty[:5]}"
            f"{'...' if len(empty) > 5 else ''}"
        )

    # Flatten candidate options into the variable vector.
    variables: list[CandidateOption] = []
    variable_index: dict[int, list[int]] = {}
    for partition_position, partition in enumerate(problem.partitions):
        indices = []
        for option in options_by_partition[partition.name]:
            indices.append(len(variables))
            variables.append(option)
        variable_index[partition_position] = indices

    n_variables = len(variables)
    objective = np.array([option.objective for option in variables])

    constraints: list[LinearConstraint] = []

    # Each partition is assigned exactly one (tier, scheme).
    assignment_matrix = np.zeros((len(problem.partitions), n_variables))
    for partition_position, indices in variable_index.items():
        assignment_matrix[partition_position, indices] = 1.0
    constraints.append(LinearConstraint(assignment_matrix, lb=1.0, ub=1.0))

    # Capacity constraints for tiers with finite reserved capacity.
    by_name = {partition.name: partition for partition in problem.partitions}
    finite_tiers = [
        tier_index
        for tier_index, tier in enumerate(problem.cost_model.tiers)
        if not math.isinf(tier.capacity_gb)
    ]
    if finite_tiers:
        capacity_matrix = np.zeros((len(finite_tiers), n_variables))
        capacity_limits = np.zeros(len(finite_tiers))
        for row, tier_index in enumerate(finite_tiers):
            capacity_limits[row] = problem.cost_model.tiers[tier_index].capacity_gb
            for column, option in enumerate(variables):
                if option.tier_index == tier_index:
                    capacity_matrix[row, column] = problem.stored_gb(
                        by_name[option.partition], option.scheme
                    )
        constraints.append(
            LinearConstraint(capacity_matrix, lb=-np.inf, ub=capacity_limits)
        )

    options_kwargs = {}
    if time_limit_s is not None:
        options_kwargs["time_limit"] = time_limit_s
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n_variables),
        bounds=Bounds(lb=0.0, ub=1.0),
        options=options_kwargs,
    )
    if not result.success or result.x is None:
        raise IlpInfeasibleError(
            f"MILP failed (status {result.status}): {result.message}"
        )

    choices: dict[str, CandidateOption] = {}
    solution = np.round(result.x).astype(int)
    for partition_position, partition in enumerate(problem.partitions):
        selected = [
            variables[index]
            for index in variable_index[partition_position]
            if solution[index] == 1
        ]
        if len(selected) != 1:
            # Numerical slack: fall back to the largest fractional value.
            indices = variable_index[partition_position]
            best = max(indices, key=lambda index: result.x[index])
            selected = [variables[best]]
        choices[partition.name] = selected[0]
    return Assignment(problem=problem, choices=choices, solver="ilp")
