"""Greedy OPTASSIGN solver — optimal when tiers have no capacity bound (Theorem 3).

When every tier's reserved capacity is unbounded, partitions do not compete
for space and the problem decomposes: each partition independently takes the
cheapest latency-feasible (tier, scheme) option.  The paper's enterprise data
lake is exactly this pay-per-use setting, and the greedy solver is what scales
to hundreds of PB-sized datasets (their 463-dataset account optimises in a few
seconds; ours is well under that).
"""

from __future__ import annotations

from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["solve_greedy"]


def solve_greedy(problem: OptAssignProblem, enforce_unbounded: bool = True) -> Assignment:
    """Pick the minimum-objective feasible option for every partition.

    Parameters
    ----------
    problem:
        The OPTASSIGN instance.
    enforce_unbounded:
        When True (default) the solver refuses to run on instances with
        finite tier capacities, because greedy is only *optimal* without
        capacity coupling.  Pass False to use it as a heuristic anyway (the
        capacity-aware wrapper does this as a fallback and then repairs).

    Raises
    ------
    ValueError
        If some partition has no latency-feasible option at all — in that
        case the instance's constraints are contradictory and the caller
        should relax latency thresholds (see ``solve_optassign``).
    """
    if enforce_unbounded and problem.has_finite_capacity():
        raise ValueError(
            "greedy OPTASSIGN is only optimal without capacity constraints; "
            "use solve_optassign (ILP) for capacity-bounded instances"
        )
    choices: dict[str, CandidateOption] = {}
    infeasible: list[str] = []
    for partition in problem.partitions:
        options = problem.options_for(partition)
        if not options:
            infeasible.append(partition.name)
            continue
        choices[partition.name] = min(options, key=lambda option: option.objective)
    if infeasible:
        raise ValueError(
            "no latency-feasible (tier, scheme) option exists for partitions: "
            f"{infeasible[:5]}{'...' if len(infeasible) > 5 else ''}; "
            "relax latency thresholds or add faster tiers"
        )
    return Assignment(problem=problem, choices=choices, solver="greedy")
