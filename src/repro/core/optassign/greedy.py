"""Greedy OPTASSIGN solver — optimal when tiers have no capacity bound (Theorem 3).

When every tier's reserved capacity is unbounded, partitions do not compete
for space and the problem decomposes: each partition independently takes the
cheapest latency-feasible (tier, scheme) option.  The paper's enterprise data
lake is exactly this pay-per-use setting, and the greedy solver is what scales
to hundreds of PB-sized datasets (their 463-dataset account optimises in a few
seconds; ours is well under that).

Two implementations are provided and kept in lock-step:

* the **vectorized** default — a masked argmin over the problem's
  :meth:`~repro.core.optassign.OptAssignProblem.batch_tensors` cost tensor,
  one numpy pass for the whole instance;
* the **scalar** reference (``vectorized=False``) — the original per-partition
  ``min(options_for(...))`` loop, kept as the oracle the fast path is
  validated against (same assignments bit for bit, see
  ``tests/optassign/test_vectorized_equivalence.py``).

Because the tensor's flattened (tier, scheme) axis enumerates candidates in
exactly the scalar loop's order (tiers outer, sorted schemes inner) and each
cell is computed with the same operation order as the scalar arithmetic, ties
break identically and the two paths return the *same* assignment, not merely
equally-good ones.
"""

from __future__ import annotations

import numpy as np

from ...cloud import CostBreakdown
from ...obs import get_tracer
from .errors import InfeasibleError
from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["solve_greedy"]


def solve_greedy(
    problem: OptAssignProblem,
    enforce_unbounded: bool = True,
    vectorized: bool = True,
) -> Assignment:
    """Pick the minimum-objective feasible option for every partition.

    Parameters
    ----------
    problem:
        The OPTASSIGN instance.
    enforce_unbounded:
        When True (default) the solver refuses to run on instances with
        finite tier capacities, because greedy is only *optimal* without
        capacity coupling.  Pass False to use it as a heuristic anyway (the
        capacity-aware wrapper does this as a fallback and then repairs).
    vectorized:
        When True (default) solve via one masked argmin over the batch cost
        tensor; when False run the scalar per-partition reference loop.  The
        two produce identical assignments.

    Raises
    ------
    InfeasibleError
        If some partition has no feasible option at all — its latency SLA,
        tier SLO, provider affinity and codec pinning jointly empty the
        candidate set; the caller should relax latency thresholds (see
        ``solve_optassign``) or loosen the hard constraints.
    """
    if enforce_unbounded and problem.has_finite_capacity():
        raise ValueError(
            "greedy OPTASSIGN is only optimal without capacity constraints; "
            "use solve_optassign (ILP) for capacity-bounded instances"
        )
    if vectorized:
        # Warm the tensor cache *before* opening the greedy span so the build
        # is traced as its own `optassign.batch_tensors` phase (a sibling,
        # not a child inflating the greedy timing).
        problem.batch_tensors()
    with get_tracer().span("optassign.greedy", vectorized=vectorized):
        if vectorized:
            choices, infeasible = _vectorized_choices(problem)
        else:
            choices, infeasible = _scalar_choices(problem)
    if infeasible:
        raise InfeasibleError(
            "no feasible (tier, scheme) option exists for partitions: "
            f"{infeasible[:5]}{'...' if len(infeasible) > 5 else ''}; "
            "relax latency thresholds, loosen SLO/affinity constraints or "
            "add faster tiers"
        )
    return Assignment(problem=problem, choices=choices, solver="greedy")


def _scalar_choices(
    problem: OptAssignProblem,
) -> tuple[dict[str, CandidateOption], list[str]]:
    """The reference oracle: enumerate options per partition, take the min."""
    choices: dict[str, CandidateOption] = {}
    infeasible: list[str] = []
    for partition in problem.partitions:
        options = problem.options_for(partition)
        if not options:
            infeasible.append(partition.name)
            continue
        choices[partition.name] = min(options, key=lambda option: option.objective)
    return choices, infeasible


def _vectorized_choices(
    problem: OptAssignProblem,
) -> tuple[dict[str, CandidateOption], list[str]]:
    """Masked argmin over the (N, T, K) objective tensor."""
    tensors = problem.batch_tensors()
    arrays = problem.partition_arrays()
    num_partitions = tensors.num_partitions
    num_schemes = tensors.num_schemes

    # Flattening (T, K) in C order enumerates candidates tier-major with
    # sorted schemes inside each tier — the scalar loop's order — so argmin's
    # first-minimum rule reproduces min()'s tie-breaking exactly.
    flat = tensors.masked_objective().reshape(num_partitions, -1)
    best = np.argmin(flat, axis=1)
    rows = np.arange(num_partitions)
    best_objective = flat[rows, best]
    if not np.isfinite(best_objective).all():
        return {}, [arrays.names[i] for i in np.flatnonzero(~np.isfinite(best_objective))]

    tier_index = best // num_schemes
    scheme_index = best % num_schemes
    storage = tensors.storage[rows, tier_index, scheme_index].tolist()
    read = tensors.read[rows, tier_index, scheme_index].tolist()
    write = tensors.write[rows, tier_index, scheme_index].tolist()
    decompression = tensors.decompression[rows, scheme_index].tolist()
    latency = tensors.latency_s[rows, tier_index, scheme_index].tolist()
    objective = best_objective.tolist()
    tiers = tier_index.tolist()
    scheme_names = [tensors.schemes[k] for k in scheme_index.tolist()]

    # Frozen-dataclass __init__ routes every field through object.__setattr__,
    # which at tens of thousands of options costs more than the whole numpy
    # pass; assembling the instance __dict__ directly builds identical objects
    # (same fields, eq, hash) without that per-field overhead.  Neither class
    # has a __post_init__ to skip.
    new_breakdown = CostBreakdown.__new__
    new_option = CandidateOption.__new__
    set_dict = object.__setattr__
    choices: dict[str, CandidateOption] = {}
    for i, name in enumerate(arrays.names):
        breakdown = new_breakdown(CostBreakdown)
        breakdown.__dict__ = {
            "storage": storage[i],
            "read": read[i],
            "write": write[i],
            "decompression": decompression[i],
        }
        option = new_option(CandidateOption)
        set_dict(
            option,
            "__dict__",
            {
                "partition": name,
                "tier_index": tiers[i],
                "scheme": scheme_names[i],
                "objective": objective[i],
                "breakdown": breakdown,
                "latency_s": latency[i],
                "latency_feasible": True,
                "codec_allowed": True,
                "slo_feasible": True,
                "provider_allowed": True,
            },
        )
        choices[name] = option
    return choices, []
