"""Tenant-tagged stacked OPTASSIGN problems — one solve for a whole fleet.

The fleet scheduler re-optimizes many tenants in the same epoch.  Solving N
small instances costs N × (tensor build + argmin + Python dispatch); stacking
them into *one* :class:`~repro.core.optassign.OptAssignProblem` amortises all
of that into a single vectorized pass — and, more importantly, gives the
pool-level capacity arbitration (:func:`repro.core.optassign.repair_pools`)
one global view of every partition competing for the shared budgets.

Stacking is sound because the OPTASSIGN objective is separable per partition:
with slack capacity each partition's argmin is independent of its neighbours,
so the stacked solve returns exactly the per-tenant solutions (same choices,
same tie-breaks — the scheme-union enumeration order restricted to one
partition's available schemes is the same sorted order in both).  The
per-tenant scalar path therefore stays the oracle the fleet layer is tested
against bill for bill.

Partition names are tagged ``tenant::name`` (:data:`TENANT_SEPARATOR`) so
identically-named partitions of different tenants cannot collide, and
:meth:`StackedProblem.split_placements` untags the solved assignment back
into per-tenant placement maps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ...cloud import DataPartition, PlacementDecision
from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["TENANT_SEPARATOR", "StackedProblem"]

#: Separator between tenant and partition names in a stacked problem.
TENANT_SEPARATOR: str = "::"


def _check_cost_models(problems: Mapping[str, OptAssignProblem]) -> None:
    """All sub-problems must price placements identically for stacking to be
    the per-tenant solve: same catalog object, horizon, compute price and
    objective weights."""
    reference = None
    for tenant, problem in problems.items():
        model = problem.cost_model
        if reference is None:
            reference = (tenant, model)
            continue
        first_tenant, first = reference
        if model.tiers is not first.tiers:
            raise ValueError(
                f"tenants {first_tenant!r} and {tenant!r} use different tier "
                "catalogs; a stacked problem needs one shared catalog object"
            )
        if (
            model.duration_months != first.duration_months
            or model.compute_cost_per_s != first.compute_cost_per_s
            or model.weights != first.weights
        ):
            raise ValueError(
                f"tenants {first_tenant!r} and {tenant!r} use different cost "
                "model parameters (horizon, compute price or weights); "
                "stacked solves require identical pricing"
            )


@dataclass(frozen=True)
class StackedProblem:
    """N tenants' OPTASSIGN instances combined into one tagged problem.

    Build with :meth:`stack`; solve ``.problem`` with any solver; map the
    result back with :meth:`split_choices` / :meth:`split_placements`.
    """

    problem: OptAssignProblem
    tenants: tuple[str, ...]

    @classmethod
    def stack(cls, problems: Mapping[str, OptAssignProblem]) -> "StackedProblem":
        """Combine per-tenant problems into one, tagging partition names.

        ``problems`` maps tenant names (which may not contain
        :data:`TENANT_SEPARATOR`) to their instances.  Iteration order fixes
        the stacked partition order: tenants in mapping order, each tenant's
        partitions in its own order.
        """
        if not problems:
            raise ValueError("at least one tenant problem is required")
        for tenant in problems:
            if not tenant:
                raise ValueError("tenant names must be non-empty")
            if TENANT_SEPARATOR in tenant:
                raise ValueError(
                    f"tenant name may not contain {TENANT_SEPARATOR!r}: {tenant!r}"
                )
        _check_cost_models(problems)

        partitions = []
        profiles: dict[str, dict] = {}
        latency_slo: dict[str, float] = {}
        affinity: dict[str, frozenset[str]] = {}
        # Renamed copies are assembled through __dict__ instead of
        # dataclasses.replace: the fields are already validated and replace()'s
        # per-field getattr round trip dominates stacking time at fleet scale
        # (same trick the vectorized greedy solver uses for CandidateOption).
        new_partition = DataPartition.__new__
        for tenant, problem in problems.items():
            for partition in problem.partitions:
                tagged = f"{tenant}{TENANT_SEPARATOR}{partition.name}"
                copy = new_partition(DataPartition)
                copy.__dict__ = {**partition.__dict__, "name": tagged}
                partitions.append(copy)
                profiles[tagged] = problem._profiles[partition.name]
                cap = problem.slo_cap_for(partition.name)
                if cap is not None:
                    latency_slo[tagged] = cap
                allowed = problem.providers_allowed_for(partition.name)
                if allowed is not None:
                    affinity[tagged] = allowed
        model = next(iter(problems.values())).cost_model
        # Every sub-problem already validated its partitions, profiles (the
        # "none" scheme is present, pinned codecs have profiles) and SLO /
        # affinity maps against this same catalog, and the tenant tags keep
        # names unique across tenants — so the combined problem is assembled
        # directly, skipping OptAssignProblem.__init__'s re-validation and
        # per-partition profile-table copies (the same construction shortcut
        # OptAssignProblem.relaxed uses).  At fleet scale this is what keeps
        # stacking overhead below the solve itself.
        stacked = OptAssignProblem.__new__(OptAssignProblem)
        stacked.partitions = partitions
        stacked.cost_model = model
        stacked._profiles = profiles
        stacked._latency_slo = latency_slo
        stacked._provider_affinity = affinity
        # Banned tiers describe the shared catalog's state (a provider
        # outage), not any one tenant, so the union is the fleet's view; in
        # practice every sub-problem carries the same set.
        stacked._banned_tiers = frozenset().union(
            *(problem.banned_tiers for problem in problems.values())
        )
        stacked._arrays = None
        stacked._profile_columns_cache = None
        stacked._tensors = None
        return cls(problem=stacked, tenants=tuple(problems))

    @staticmethod
    def untag(tagged_name: str) -> tuple[str, str]:
        """Split a tagged partition name back into (tenant, original name)."""
        tenant, separator, name = tagged_name.partition(TENANT_SEPARATOR)
        if not separator:
            raise ValueError(f"partition name {tagged_name!r} carries no tenant tag")
        return tenant, name

    def split_choices(
        self, assignment: Assignment
    ) -> dict[str, dict[str, CandidateOption]]:
        """Per-tenant choice maps, with original (untagged) partition names."""
        split: dict[str, dict[str, CandidateOption]] = {
            tenant: {} for tenant in self.tenants
        }
        for tagged, option in assignment.choices.items():
            tenant, name = self.untag(tagged)
            split[tenant][name] = replace(option, partition=name)
        return split

    def split_placements(
        self, assignment: Assignment
    ) -> dict[str, dict[str, PlacementDecision]]:
        """Per-tenant placement maps ready for the engines' executors."""
        split: dict[str, dict[str, PlacementDecision]] = {
            tenant: {} for tenant in self.tenants
        }
        for tagged, option in assignment.choices.items():
            tenant, name = self.untag(tagged)
            split[tenant][name] = PlacementDecision(
                tier_index=option.tier_index,
                profile=self.problem.profile_for(tagged, option.scheme),
            )
        return split
