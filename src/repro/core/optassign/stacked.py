"""Tenant-tagged stacked OPTASSIGN problems — one solve for a whole fleet.

The fleet scheduler re-optimizes many tenants in the same epoch.  Solving N
small instances costs N × (tensor build + argmin + Python dispatch); stacking
them into *one* :class:`~repro.core.optassign.OptAssignProblem` amortises all
of that into a single vectorized pass — and, more importantly, gives the
pool-level capacity arbitration (:func:`repro.core.optassign.repair_pools`)
one global view of every partition competing for the shared budgets.

Stacking is sound because the OPTASSIGN objective is separable per partition:
with slack capacity each partition's argmin is independent of its neighbours,
so the stacked solve returns exactly the per-tenant solutions (same choices,
same tie-breaks — the scheme-union enumeration order restricted to one
partition's available schemes is the same sorted order in both).  The
per-tenant scalar path therefore stays the oracle the fleet layer is tested
against bill for bill.

Partition names are tagged ``tenant::name`` (:data:`TENANT_SEPARATOR`) so
identically-named partitions of different tenants cannot collide, and
:meth:`StackedProblem.split_placements` untags the solved assignment back
into per-tenant placement maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from ...cloud import PartitionArrays, PlacementDecision
from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["TENANT_SEPARATOR", "StackedProblem"]

#: Separator between tenant and partition names in a stacked problem.
TENANT_SEPARATOR: str = "::"


def _check_cost_models(problems: Mapping[str, OptAssignProblem]) -> None:
    """All sub-problems must price placements identically for stacking to be
    the per-tenant solve: same catalog object, horizon, compute price and
    objective weights."""
    reference = None
    for tenant, problem in problems.items():
        model = problem.cost_model
        if reference is None:
            reference = (tenant, model)
            continue
        first_tenant, first = reference
        if model.tiers is not first.tiers:
            raise ValueError(
                f"tenants {first_tenant!r} and {tenant!r} use different tier "
                "catalogs; a stacked problem needs one shared catalog object"
            )
        if (
            model.duration_months != first.duration_months
            or model.compute_cost_per_s != first.compute_cost_per_s
            or model.weights != first.weights
        ):
            raise ValueError(
                f"tenants {first_tenant!r} and {tenant!r} use different cost "
                "model parameters (horizon, compute price or weights); "
                "stacked solves require identical pricing"
            )


@dataclass(frozen=True)
class StackedProblem:
    """N tenants' OPTASSIGN instances combined into one tagged problem.

    Build with :meth:`stack`; solve ``.problem`` with any solver; map the
    result back with :meth:`split_choices` / :meth:`split_placements`.
    """

    problem: OptAssignProblem
    tenants: tuple[str, ...]
    #: Per-tenant row spans ``(start, stop)`` in the stacked row order, one
    #: per entry of ``tenants`` — what the sharded fleet solver aligns its
    #: shard boundaries to.  Empty for hand-built instances.
    tenant_spans: tuple[tuple[int, int], ...] = field(default=())

    @classmethod
    def stack(cls, problems: Mapping[str, OptAssignProblem]) -> "StackedProblem":
        """Combine per-tenant problems into one, tagging partition names.

        ``problems`` maps tenant names (which may not contain
        :data:`TENANT_SEPARATOR`) to their instances.  Iteration order fixes
        the stacked partition order: tenants in mapping order, each tenant's
        partitions in its own order.
        """
        if not problems:
            raise ValueError("at least one tenant problem is required")
        for tenant in problems:
            if not tenant:
                raise ValueError("tenant names must be non-empty")
            if TENANT_SEPARATOR in tenant:
                raise ValueError(
                    f"tenant name may not contain {TENANT_SEPARATOR!r}: {tenant!r}"
                )
        _check_cost_models(problems)

        # The stacked instance is assembled *columnar*: per-tenant
        # PartitionArrays are concatenated (numpy on the numeric columns,
        # tuple joins on the object columns) and the combined problem carries
        # only that view — DataPartition objects materialise lazily if a
        # scalar path ever asks.  Every sub-problem already validated its
        # partitions, profiles (the "none" scheme is present, pinned codecs
        # have profiles) and SLO / affinity maps against this same catalog,
        # and the tenant tags keep names unique across tenants, so
        # OptAssignProblem.__init__'s re-validation (and its per-partition
        # profile-table copies) is skipped — the same construction shortcut
        # OptAssignProblem.relaxed uses.  At fleet scale this is what keeps
        # stacking overhead below the solve itself.
        profiles: dict[str, dict] = {}
        latency_slo: dict[str, float] = {}
        affinity: dict[str, frozenset[str]] = {}
        names: list[str] = []
        codecs: list = []
        file_ids: list = []
        per_tenant: list[PartitionArrays] = []
        spans: list[tuple[int, int]] = []
        for tenant, problem in problems.items():
            arrays = problem.partition_arrays()
            prefix = f"{tenant}{TENANT_SEPARATOR}"
            tagged_names = [f"{prefix}{name}" for name in arrays.names]
            spans.append((len(names), len(names) + len(tagged_names)))
            names.extend(tagged_names)
            codecs.extend(arrays.current_codec)
            file_ids.extend(arrays.file_ids)
            per_tenant.append(arrays)
            tenant_profiles = problem._profiles
            for tagged, name in zip(tagged_names, arrays.names):
                profiles[tagged] = tenant_profiles[name]
            for name, cap in problem._latency_slo.items():
                latency_slo[f"{prefix}{name}"] = cap
            for name, allowed in problem._provider_affinity.items():
                affinity[f"{prefix}{name}"] = allowed
        stacked_arrays = PartitionArrays(
            names=tuple(names),
            size_gb=np.concatenate([a.size_gb for a in per_tenant]),
            predicted_accesses=np.concatenate(
                [a.predicted_accesses for a in per_tenant]
            ),
            latency_threshold_s=np.concatenate(
                [a.latency_threshold_s for a in per_tenant]
            ),
            current_tier=np.concatenate([a.current_tier for a in per_tenant]),
            read_fraction=np.concatenate([a.read_fraction for a in per_tenant]),
            pushdown_fraction=np.concatenate(
                [a.pushdown_fraction for a in per_tenant]
            ),
            current_codec=tuple(codecs),
            file_ids=tuple(file_ids),
        )
        model = next(iter(problems.values())).cost_model
        stacked = OptAssignProblem.__new__(OptAssignProblem)
        stacked._partitions_list = None
        stacked.cost_model = model
        stacked._profiles = profiles
        stacked._latency_slo = latency_slo
        stacked._provider_affinity = affinity
        # Banned tiers describe the shared catalog's state (a provider
        # outage), not any one tenant, so the union is the fleet's view; in
        # practice every sub-problem carries the same set.
        stacked._banned_tiers = frozenset().union(
            *(problem.banned_tiers for problem in problems.values())
        )
        stacked._arrays = stacked_arrays
        stacked._profile_columns_cache = None
        stacked._tensors = None
        return cls(
            problem=stacked, tenants=tuple(problems), tenant_spans=tuple(spans)
        )

    @staticmethod
    def untag(tagged_name: str) -> tuple[str, str]:
        """Split a tagged partition name back into (tenant, original name)."""
        tenant, separator, name = tagged_name.partition(TENANT_SEPARATOR)
        if not separator:
            raise ValueError(f"partition name {tagged_name!r} carries no tenant tag")
        return tenant, name

    def split_choices(
        self, assignment: Assignment
    ) -> dict[str, dict[str, CandidateOption]]:
        """Per-tenant choice maps, with original (untagged) partition names."""
        split: dict[str, dict[str, CandidateOption]] = {
            tenant: {} for tenant in self.tenants
        }
        for tagged, option in assignment.choices.items():
            tenant, name = self.untag(tagged)
            split[tenant][name] = replace(option, partition=name)
        return split

    def split_placements(
        self, assignment: Assignment
    ) -> dict[str, dict[str, PlacementDecision]]:
        """Per-tenant placement maps ready for the engines' executors."""
        split: dict[str, dict[str, PlacementDecision]] = {
            tenant: {} for tenant in self.tenants
        }
        for tagged, option in assignment.choices.items():
            tenant, name = self.untag(tagged)
            split[tenant][name] = PlacementDecision(
                tier_index=option.tier_index,
                profile=self.problem.profile_for(tagged, option.scheme),
            )
        return split
