"""Problem definition for OPTASSIGN (Section IV of the paper).

An :class:`OptAssignProblem` bundles the data partitions, the cost model (tier
catalog, compute price, horizon, objective weights) and the per-partition
compression profiles, and enumerates the *candidate options* — the feasible
(tier, scheme) pairs for each partition, with their objective value, billed
cost and latency.  The solvers (ILP, greedy, matching) all consume the same
candidate enumeration so they optimise exactly the same quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ...cloud import (
    BatchCostTensors,
    CompressionProfile,
    CostBreakdown,
    CostModel,
    DataPartition,
    NO_COMPRESSION_PROFILE,
    PartitionArrays,
)
from ...cloud.objects import NO_COMPRESSION
from ...obs import get_tracer

__all__ = ["CandidateOption", "OptAssignProblem", "ProfileTable"]


#: Per-partition compression profiles, keyed by partition name then scheme name.
ProfileTable = Mapping[str, Mapping[str, CompressionProfile]]


@dataclass(frozen=True)
class CandidateOption:
    """One feasible-or-not (tier, scheme) choice for one partition."""

    partition: str
    tier_index: int
    scheme: str
    objective: float
    breakdown: CostBreakdown
    latency_s: float
    latency_feasible: bool
    codec_allowed: bool
    slo_feasible: bool = True
    provider_allowed: bool = True

    @property
    def feasible(self) -> bool:
        """Feasible w.r.t. latency SLA, codec pinning, tier SLO and provider
        affinity (not capacity)."""
        return (
            self.latency_feasible
            and self.codec_allowed
            and self.slo_feasible
            and self.provider_allowed
        )


class OptAssignProblem:
    """The OPTASSIGN instance: partitions, prices, compression profiles.

    Parameters
    ----------
    partitions:
        The placement units.  Names must be unique.
    cost_model:
        Prices, horizon, objective weights and the tier catalog.
    profiles:
        ``profiles[partition_name][scheme]`` gives the predicted
        :class:`CompressionProfile` of applying ``scheme`` to that partition.
        The ``"none"`` scheme is always available and is added automatically
        if missing.  When ``profiles`` is ``None`` the problem degenerates to
        tier assignment only (the paper's ``K = 0`` configuration).
    latency_slo_s:
        Optional per-partition cap (seconds) on the *tier's* published
        read-latency SLO (:attr:`repro.cloud.StorageTier.effective_slo_s`).
        Partitions without an entry are unconstrained.  This is a hard tier
        eligibility constraint, distinct from the latency SLA
        ``latency_threshold_s`` (which bounds expected access latency
        including decompression and is relaxed by :meth:`relaxed`); SLO caps
        are never relaxed.
    provider_affinity:
        Optional per-partition restriction to a provider name or collection
        of provider names (data-residency pinning).  Names must exist in the
        cost model's catalog (``tiers.provider_names``); a plain
        single-provider catalog only knows ``"default"``.
    banned_tiers:
        Optional catalog tier indices that no partition may occupy — the
        chaos subsystem masks a dead provider's tiers this way during an
        outage.  Like SLO caps and affinity this is a hard tier-eligibility
        constraint, never touched by latency relaxation.
    """

    def __init__(
        self,
        partitions: Sequence[DataPartition] | PartitionArrays,
        cost_model: CostModel,
        profiles: ProfileTable | None = None,
        latency_slo_s: Mapping[str, float] | None = None,
        provider_affinity: Mapping[str, str | Iterable[str]] | None = None,
        banned_tiers: Iterable[int] | None = None,
    ):
        arrays: PartitionArrays | None = None
        if isinstance(partitions, PartitionArrays):
            arrays = partitions
            partitions = arrays.to_partitions()
        names = [partition.name for partition in partitions]
        if len(set(names)) != len(names):
            raise ValueError("partition names must be unique")
        if not partitions:
            raise ValueError("at least one partition is required")
        self._partitions_list: list[DataPartition] | None = list(partitions)
        self.cost_model = cost_model
        self._profiles: dict[str, dict[str, CompressionProfile]] = {}
        for partition in self.partitions:
            partition_profiles = dict(profiles.get(partition.name, {})) if profiles else {}
            for scheme, profile in partition_profiles.items():
                if scheme != profile.scheme:
                    raise ValueError(
                        f"profile keyed {scheme!r} has scheme {profile.scheme!r} "
                        f"for partition {partition.name!r}"
                    )
            partition_profiles.setdefault("none", NO_COMPRESSION_PROFILE)
            self._profiles[partition.name] = partition_profiles
        # Validate that pinned codecs actually have a profile.
        for partition in self.partitions:
            pinned = partition.current_codec
            if pinned is not None and pinned not in self._profiles[partition.name]:
                raise ValueError(
                    f"partition {partition.name!r} is pinned to codec {pinned!r} "
                    "but no profile for that codec was provided"
                )
        known = set(names)
        self._latency_slo: dict[str, float] = {}
        for name, cap in (latency_slo_s or {}).items():
            if name not in known:
                raise ValueError(f"latency_slo_s names unknown partition {name!r}")
            if cap < 0:
                raise ValueError(f"SLO cap for {name!r} must be non-negative")
            self._latency_slo[name] = float(cap)
        catalog_providers = set(cost_model.tiers.provider_names)
        self._provider_affinity: dict[str, frozenset[str]] = {}
        for name, wanted in (provider_affinity or {}).items():
            if name not in known:
                raise ValueError(f"provider_affinity names unknown partition {name!r}")
            allowed = frozenset([wanted] if isinstance(wanted, str) else wanted)
            if not allowed:
                raise ValueError(f"provider_affinity for {name!r} is empty")
            unknown_providers = allowed - catalog_providers
            if unknown_providers:
                raise ValueError(
                    f"provider_affinity for {name!r} names providers not in the "
                    f"catalog: {sorted(unknown_providers)} "
                    f"(catalog has {sorted(catalog_providers)})"
                )
            self._provider_affinity[name] = allowed
        self._banned_tiers: frozenset[int] = frozenset(
            int(index) for index in (banned_tiers or ())
        )
        tier_count = len(cost_model.tiers)
        out_of_range = [i for i in self._banned_tiers if i < 0 or i >= tier_count]
        if out_of_range:
            raise ValueError(
                f"banned_tiers out of range for a {tier_count}-tier catalog: "
                f"{sorted(out_of_range)}"
            )
        if len(self._banned_tiers) == tier_count:
            raise ValueError("banned_tiers may not cover the whole catalog")
        self._arrays: PartitionArrays | None = arrays
        self._profile_columns_cache: (
            tuple[tuple[str, ...], np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._tensors: BatchCostTensors | None = None

    # -- accessors -------------------------------------------------------------
    @property
    def partitions(self) -> list[DataPartition]:
        """The placement units, materialised on demand.

        Problems assembled from a :class:`PartitionArrays` (the stacked fleet
        fast path, delta subproblems, relaxed copies) carry only the columnar
        view; the :class:`DataPartition` objects are built lazily here, so
        the vectorized solve paths — which read the columns directly — never
        pay the per-row object construction at fleet scale.
        """
        if self._partitions_list is None:
            self._partitions_list = self._arrays.to_partitions()
        return self._partitions_list

    @property
    def tier_count(self) -> int:
        return len(self.cost_model.tiers)

    @property
    def partition_names(self) -> list[str]:
        if self._arrays is not None:
            return list(self._arrays.names)
        return [partition.name for partition in self.partitions]

    def schemes_for(self, partition: DataPartition) -> list[str]:
        """Compression schemes with a profile available for ``partition``."""
        return sorted(self._profiles[partition.name])

    def profile_for(self, partition_name: str, scheme: str) -> CompressionProfile:
        return self._profiles[partition_name][scheme]

    def slo_cap_for(self, partition_name: str) -> float | None:
        """The partition's tier-SLO cap in seconds, or ``None`` if unconstrained."""
        return self._latency_slo.get(partition_name)

    def providers_allowed_for(self, partition_name: str) -> frozenset[str] | None:
        """Provider names the partition may occupy, or ``None`` if unconstrained."""
        return self._provider_affinity.get(partition_name)

    @property
    def banned_tiers(self) -> frozenset[int]:
        """Tier indices masked infeasible for every partition (empty if none)."""
        return self._banned_tiers

    # -- candidate enumeration ----------------------------------------------------
    def options_for(
        self, partition: DataPartition, include_infeasible: bool = False
    ) -> list[CandidateOption]:
        """All (tier, scheme) candidates for ``partition``.

        By default only latency-feasible, codec-allowed options are returned;
        ``include_infeasible`` keeps the rest (used for diagnostics and for
        the latency-relaxation loop).
        """
        model = self.cost_model
        tiers = model.tiers
        slo_cap = self._latency_slo.get(partition.name)
        allowed_providers = self._provider_affinity.get(partition.name)
        options: list[CandidateOption] = []
        for tier_index in range(self.tier_count):
            slo_feasible = (
                slo_cap is None or tiers[tier_index].effective_slo_s <= slo_cap
            )
            # A banned tier is reported through the provider_allowed flag:
            # bans model provider-level faults (outages), and reusing the
            # existing flag keeps CandidateOption's shape — and therefore the
            # scalar/vectorized feasibility parity — unchanged.
            provider_allowed = (
                allowed_providers is None
                or tiers.provider_of(tier_index) in allowed_providers
            ) and tier_index not in self._banned_tiers
            for scheme in self.schemes_for(partition):
                profile = self._profiles[partition.name][scheme]
                latency = model.access_latency_s(partition, tier_index, profile)
                option = CandidateOption(
                    partition=partition.name,
                    tier_index=tier_index,
                    scheme=scheme,
                    objective=model.placement_objective(partition, tier_index, profile),
                    breakdown=model.placement_breakdown(partition, tier_index, profile),
                    latency_s=latency,
                    latency_feasible=latency <= partition.latency_threshold_s,
                    codec_allowed=model.is_codec_allowed(partition, scheme),
                    slo_feasible=slo_feasible,
                    provider_allowed=provider_allowed,
                )
                if include_infeasible or option.feasible:
                    options.append(option)
        return options

    def all_options(
        self, include_infeasible: bool = False
    ) -> dict[str, list[CandidateOption]]:
        """Candidate options for every partition, keyed by partition name."""
        return {
            partition.name: self.options_for(partition, include_infeasible)
            for partition in self.partitions
        }

    # -- columnar fast path ----------------------------------------------------
    def partition_arrays(self) -> PartitionArrays:
        """The partitions as a struct-of-arrays view (cached, lossless)."""
        if self._arrays is None:
            self._arrays = PartitionArrays.from_partitions(self.partitions)
        return self._arrays

    def scheme_union(self) -> tuple[str, ...]:
        """All schemes appearing in any partition's profile table, sorted.

        Sorted order matters: restricted to one partition's available schemes
        it reproduces :meth:`schemes_for`'s enumeration order, which is what
        keeps the vectorized argmin's tie-breaking identical to the scalar
        solver's.
        """
        return self._profile_columns()[0]

    def _profile_columns(
        self,
    ) -> tuple[tuple[str, ...], np.ndarray, np.ndarray, np.ndarray]:
        """(schemes, ratio (N,K), decompression_s_per_gb (N,K), available (N,K))."""
        if self._profile_columns_cache is None:
            names = self.partition_arrays().names
            schemes = tuple(
                sorted({scheme for table in self._profiles.values() for scheme in table})
            )
            index = {scheme: k for k, scheme in enumerate(schemes)}
            shape = (len(names), len(schemes))
            ratio = np.ones(shape, dtype=np.float64)
            decompression = np.zeros(shape, dtype=np.float64)
            available = np.zeros(shape, dtype=bool)
            profiles = self._profiles
            for n, name in enumerate(names):
                for scheme, profile in profiles[name].items():
                    k = index[scheme]
                    ratio[n, k] = profile.ratio
                    decompression[n, k] = profile.decompression_s_per_gb
                    available[n, k] = True
            self._profile_columns_cache = (schemes, ratio, decompression, available)
        return self._profile_columns_cache

    def _slo_vector(self) -> np.ndarray | None:
        """(N,) per-partition SLO caps (``inf`` = unconstrained), or ``None``."""
        if not self._latency_slo:
            return None
        arrays = self.partition_arrays()
        caps = np.full(len(arrays), np.inf, dtype=np.float64)
        # Iterate the (typically sparse) SLO map, not every partition: at
        # fleet scale the per-row dict probe is what dominated this build.
        for name, cap in self._latency_slo.items():
            caps[arrays.index_of(name)] = cap
        return caps

    def _tier_allowed_mask(self) -> np.ndarray | None:
        """(N, T) affinity + banned-tier mask, or ``None`` when unconstrained.

        Returning ``None`` (rather than an all-true mask) when there is no
        affinity and no ban keeps the calm-run tensors byte-identical to the
        pre-constraint code path.
        """
        if not self._provider_affinity and not self._banned_tiers:
            return None
        tiers = self.cost_model.tiers
        tier_provider = [tiers.provider_of(t) for t in range(self.tier_count)]
        arrays = self.partition_arrays()
        mask = np.ones((len(arrays), self.tier_count), dtype=bool)
        for name, allowed in self._provider_affinity.items():
            mask[arrays.index_of(name)] = [
                provider in allowed for provider in tier_provider
            ]
        if self._banned_tiers:
            mask[:, sorted(self._banned_tiers)] = False
        return mask

    def min_stored_gb(self) -> np.ndarray:
        """(N,) smallest on-disk footprint each partition can reach.

        Minimum of ``size_gb / ratio`` over the partition's available,
        codec-allowed schemes (``inf`` when no scheme is usable at all).
        Deliberately latency-independent — the capacity infeasibility
        certificate in ``solve_optassign`` relies on that, because latency
        relaxation can unlock any available scheme.
        """
        schemes, ratio, _, available = self._profile_columns()
        usable = available & CostModel._batch_codec_allowed(
            self.partition_arrays(), schemes
        )
        stored = np.where(
            usable, self.partition_arrays().size_gb[:, None] / ratio, np.inf
        )
        return stored.min(axis=1)

    def hard_mask_empty_partitions(self) -> list[str]:
        """Partitions with no candidate under the *never-relaxed* constraints.

        Checks tier eligibility (SLO caps, provider affinity) and scheme
        eligibility (availability, codec pinning) while ignoring latency
        thresholds entirely: a partition listed here stays infeasible no
        matter how far ``relaxed`` widens the latency SLAs, so the facade
        fails fast with a pointed error instead of burning relaxation rounds.
        """
        arrays = self.partition_arrays()
        tier_ok = np.ones((len(arrays), self.tier_count), dtype=bool)
        slo = self._slo_vector()
        if slo is not None:
            effective = self.cost_model.tiers.cost_arrays()["effective_slo_s"]
            tier_ok &= effective[None, :] <= slo[:, None]
        allowed = self._tier_allowed_mask()
        if allowed is not None:
            tier_ok &= allowed
        schemes, _, _, available = self._profile_columns()
        scheme_ok = available & CostModel._batch_codec_allowed(
            self.partition_arrays(), schemes
        )
        empty = ~tier_ok.any(axis=1) | ~scheme_ok.any(axis=1)
        return [arrays.names[i] for i in np.flatnonzero(empty)]

    def batch_tensors(self) -> BatchCostTensors:
        """The full vectorized candidate evaluation (cached).

        Every cell agrees bit for bit with the :class:`CandidateOption` the
        scalar :meth:`options_for` would build for the same (partition, tier,
        scheme) triple; the ``feasible`` mask matches
        :attr:`CandidateOption.feasible` plus scheme availability, including
        the SLO and provider-affinity constraints.
        """
        if self._tensors is None:
            with get_tracer().span("optassign.batch_tensors") as span:
                schemes, ratio, decompression, available = self._profile_columns()
                self._tensors = self.cost_model.batch_tensors(
                    self.partition_arrays(),
                    schemes,
                    ratio,
                    decompression,
                    available,
                    latency_slo_s=self._slo_vector(),
                    tier_allowed=self._tier_allowed_mask(),
                )
                span.set(
                    partitions=self._tensors.num_partitions,
                    tiers=self._tensors.num_tiers,
                    schemes=self._tensors.num_schemes,
                )
        return self._tensors

    def stored_gb(self, partition: DataPartition, scheme: str) -> float:
        """On-disk size of ``partition`` under ``scheme`` (used by capacity constraints)."""
        profile = self._profiles[partition.name][scheme]
        return profile.compressed_gb(partition.size_gb)

    def has_finite_capacity(self) -> bool:
        """True if any tier has a finite reserved capacity."""
        return any(tier.capacity_gb != float("inf") for tier in self.cost_model.tiers)

    def with_current_placement(
        self,
        placement: Mapping[str, object],
        pin_codecs: bool = False,
    ) -> "OptAssignProblem":
        """A copy of the problem that knows where the data lives *today*.

        ``placement`` maps partition names to either a tier index (``int``) or
        anything with a ``tier_index`` attribute (e.g. the simulator's
        :class:`~repro.cloud.PlacementDecision` or a solver's
        :class:`~repro.core.optassign.CandidateOption`).  Partitions listed
        there get ``current_tier`` set accordingly, so the objective's
        ``Delta_{u,v}`` term charges the true cost of *moving away* from the
        existing layout — the warm start a rolling re-optimization loop needs
        (staying put is free, migrating pays read + write).  Partitions not
        listed keep their current tier.

        With ``pin_codecs`` the current scheme (when the placement entry
        carries a ``profile.scheme``) is pinned as ``current_codec``,
        reproducing the paper's already-compressed constraint; by default
        re-compression is allowed and simply billed.
        """
        partitions = []
        for partition in self.partitions:
            entry = placement.get(partition.name)
            if entry is None:
                partitions.append(partition)
                continue
            tier_index = entry if isinstance(entry, int) else int(entry.tier_index)
            codec = partition.current_codec
            if pin_codecs:
                profile = getattr(entry, "profile", None)
                scheme = getattr(profile, "scheme", None) or getattr(entry, "scheme", None)
                if scheme is not None:
                    # The "none" scheme means stored uncompressed, not pinned:
                    # a later re-optimization may still choose to compress.
                    codec = None if scheme == NO_COMPRESSION else scheme
            partitions.append(
                replace(partition, current_tier=tier_index, current_codec=codec)
            )
        return OptAssignProblem(
            partitions,
            self.cost_model,
            self._profiles,
            latency_slo_s=self._latency_slo,
            provider_affinity=self._provider_affinity,
            banned_tiers=self._banned_tiers,
        )

    def carve(self, rows: Sequence[int] | np.ndarray) -> "OptAssignProblem":
        """The given rows as a standalone instance (shared profile tables).

        Assembled through ``__new__`` like :meth:`relaxed` and
        :meth:`~repro.core.optassign.StackedProblem.stack`: every row was
        already validated by this problem's constructor, so re-validation
        (and the per-partition profile-table copies) would only burn the time
        the carve exists to save.  Row order is preserved, and the carved
        instance's (smaller) scheme union restricted to one partition's
        available schemes keeps the sorted enumeration order — so vectorized
        argmin tie-breaks on the carve match the full instance exactly.  Both
        the incremental delta solver (changed rows) and the sharded fleet
        solver's pool-arbitration reduce (rows in pooled tiers) rely on that.
        """
        sub_arrays = self.partition_arrays().take(rows)
        sub = OptAssignProblem.__new__(OptAssignProblem)
        sub._partitions_list = None
        sub.cost_model = self.cost_model
        sub._profiles = {name: self._profiles[name] for name in sub_arrays.names}
        sub._latency_slo = {
            name: cap
            for name in sub_arrays.names
            if (cap := self._latency_slo.get(name)) is not None
        }
        sub._provider_affinity = {
            name: allowed
            for name in sub_arrays.names
            if (allowed := self._provider_affinity.get(name)) is not None
        }
        sub._banned_tiers = self._banned_tiers
        sub._arrays = sub_arrays
        sub._profile_columns_cache = None
        sub._tensors = None
        return sub

    def relaxed(self, latency_factor: float) -> "OptAssignProblem":
        """A copy of the problem with every latency threshold multiplied by ``latency_factor``.

        The paper notes that when capacity and latency constraints make the
        ILP infeasible, latency requirements are relaxed iteratively until a
        solution exists.
        """
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        # Scaling the one affected column of the arrays view (rather than
        # copying every DataPartition) keeps relaxation O(N) numpy work; the
        # partition objects materialise lazily if anything scalar asks.  The
        # multiplication is the same float op the per-partition copy
        # performed, so the relaxed tensors stay bit-identical.
        arrays = self.partition_arrays()
        relaxed_arrays = replace(
            arrays,
            latency_threshold_s=arrays.latency_threshold_s * latency_factor,
        )
        problem = OptAssignProblem.__new__(OptAssignProblem)
        problem._partitions_list = None
        problem.cost_model = self.cost_model
        problem._profiles = self._profiles
        # SLO caps, provider affinity and banned tiers are *hard* constraints:
        # latency relaxation widens the SLA thresholds but never the
        # tier-eligibility masks, so all three carry over unchanged.
        problem._latency_slo = self._latency_slo
        problem._provider_affinity = self._provider_affinity
        problem._banned_tiers = self._banned_tiers
        problem._arrays = relaxed_arrays
        # The profile columns depend only on the (shared) profile table and
        # the partition order, so the relaxed copy can reuse them; the cost
        # tensors depend on the latency thresholds and must be recomputed.
        problem._profile_columns_cache = self._profile_columns_cache
        problem._tensors = None
        return problem
