"""Problem definition for OPTASSIGN (Section IV of the paper).

An :class:`OptAssignProblem` bundles the data partitions, the cost model (tier
catalog, compute price, horizon, objective weights) and the per-partition
compression profiles, and enumerates the *candidate options* — the feasible
(tier, scheme) pairs for each partition, with their objective value, billed
cost and latency.  The solvers (ILP, greedy, matching) all consume the same
candidate enumeration so they optimise exactly the same quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ...cloud import (
    BatchCostTensors,
    CompressionProfile,
    CostBreakdown,
    CostModel,
    DataPartition,
    NO_COMPRESSION_PROFILE,
    PartitionArrays,
)
from ...cloud.objects import NO_COMPRESSION

__all__ = ["CandidateOption", "OptAssignProblem", "ProfileTable"]


#: Per-partition compression profiles, keyed by partition name then scheme name.
ProfileTable = Mapping[str, Mapping[str, CompressionProfile]]


@dataclass(frozen=True)
class CandidateOption:
    """One feasible-or-not (tier, scheme) choice for one partition."""

    partition: str
    tier_index: int
    scheme: str
    objective: float
    breakdown: CostBreakdown
    latency_s: float
    latency_feasible: bool
    codec_allowed: bool

    @property
    def feasible(self) -> bool:
        """Feasible with respect to latency SLA and codec pinning (not capacity)."""
        return self.latency_feasible and self.codec_allowed


class OptAssignProblem:
    """The OPTASSIGN instance: partitions, prices, compression profiles.

    Parameters
    ----------
    partitions:
        The placement units.  Names must be unique.
    cost_model:
        Prices, horizon, objective weights and the tier catalog.
    profiles:
        ``profiles[partition_name][scheme]`` gives the predicted
        :class:`CompressionProfile` of applying ``scheme`` to that partition.
        The ``"none"`` scheme is always available and is added automatically
        if missing.  When ``profiles`` is ``None`` the problem degenerates to
        tier assignment only (the paper's ``K = 0`` configuration).
    """

    def __init__(
        self,
        partitions: Sequence[DataPartition] | PartitionArrays,
        cost_model: CostModel,
        profiles: ProfileTable | None = None,
    ):
        arrays: PartitionArrays | None = None
        if isinstance(partitions, PartitionArrays):
            arrays = partitions
            partitions = arrays.to_partitions()
        names = [partition.name for partition in partitions]
        if len(set(names)) != len(names):
            raise ValueError("partition names must be unique")
        if not partitions:
            raise ValueError("at least one partition is required")
        self.partitions: list[DataPartition] = list(partitions)
        self.cost_model = cost_model
        self._profiles: dict[str, dict[str, CompressionProfile]] = {}
        for partition in self.partitions:
            partition_profiles = dict(profiles.get(partition.name, {})) if profiles else {}
            for scheme, profile in partition_profiles.items():
                if scheme != profile.scheme:
                    raise ValueError(
                        f"profile keyed {scheme!r} has scheme {profile.scheme!r} "
                        f"for partition {partition.name!r}"
                    )
            partition_profiles.setdefault("none", NO_COMPRESSION_PROFILE)
            self._profiles[partition.name] = partition_profiles
        # Validate that pinned codecs actually have a profile.
        for partition in self.partitions:
            pinned = partition.current_codec
            if pinned is not None and pinned not in self._profiles[partition.name]:
                raise ValueError(
                    f"partition {partition.name!r} is pinned to codec {pinned!r} "
                    "but no profile for that codec was provided"
                )
        self._arrays: PartitionArrays | None = arrays
        self._profile_columns_cache: (
            tuple[tuple[str, ...], np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._tensors: BatchCostTensors | None = None

    # -- accessors -------------------------------------------------------------
    @property
    def tier_count(self) -> int:
        return len(self.cost_model.tiers)

    @property
    def partition_names(self) -> list[str]:
        return [partition.name for partition in self.partitions]

    def schemes_for(self, partition: DataPartition) -> list[str]:
        """Compression schemes with a profile available for ``partition``."""
        return sorted(self._profiles[partition.name])

    def profile_for(self, partition_name: str, scheme: str) -> CompressionProfile:
        return self._profiles[partition_name][scheme]

    # -- candidate enumeration ----------------------------------------------------
    def options_for(
        self, partition: DataPartition, include_infeasible: bool = False
    ) -> list[CandidateOption]:
        """All (tier, scheme) candidates for ``partition``.

        By default only latency-feasible, codec-allowed options are returned;
        ``include_infeasible`` keeps the rest (used for diagnostics and for
        the latency-relaxation loop).
        """
        model = self.cost_model
        options: list[CandidateOption] = []
        for tier_index in range(self.tier_count):
            for scheme in self.schemes_for(partition):
                profile = self._profiles[partition.name][scheme]
                latency = model.access_latency_s(partition, tier_index, profile)
                option = CandidateOption(
                    partition=partition.name,
                    tier_index=tier_index,
                    scheme=scheme,
                    objective=model.placement_objective(partition, tier_index, profile),
                    breakdown=model.placement_breakdown(partition, tier_index, profile),
                    latency_s=latency,
                    latency_feasible=latency <= partition.latency_threshold_s,
                    codec_allowed=model.is_codec_allowed(partition, scheme),
                )
                if include_infeasible or option.feasible:
                    options.append(option)
        return options

    def all_options(
        self, include_infeasible: bool = False
    ) -> dict[str, list[CandidateOption]]:
        """Candidate options for every partition, keyed by partition name."""
        return {
            partition.name: self.options_for(partition, include_infeasible)
            for partition in self.partitions
        }

    # -- columnar fast path ----------------------------------------------------
    def partition_arrays(self) -> PartitionArrays:
        """The partitions as a struct-of-arrays view (cached, lossless)."""
        if self._arrays is None:
            self._arrays = PartitionArrays.from_partitions(self.partitions)
        return self._arrays

    def scheme_union(self) -> tuple[str, ...]:
        """All schemes appearing in any partition's profile table, sorted.

        Sorted order matters: restricted to one partition's available schemes
        it reproduces :meth:`schemes_for`'s enumeration order, which is what
        keeps the vectorized argmin's tie-breaking identical to the scalar
        solver's.
        """
        return self._profile_columns()[0]

    def _profile_columns(
        self,
    ) -> tuple[tuple[str, ...], np.ndarray, np.ndarray, np.ndarray]:
        """(schemes, ratio (N,K), decompression_s_per_gb (N,K), available (N,K))."""
        if self._profile_columns_cache is None:
            schemes = tuple(
                sorted({scheme for table in self._profiles.values() for scheme in table})
            )
            index = {scheme: k for k, scheme in enumerate(schemes)}
            shape = (len(self.partitions), len(schemes))
            ratio = np.ones(shape, dtype=np.float64)
            decompression = np.zeros(shape, dtype=np.float64)
            available = np.zeros(shape, dtype=bool)
            for n, partition in enumerate(self.partitions):
                for scheme, profile in self._profiles[partition.name].items():
                    k = index[scheme]
                    ratio[n, k] = profile.ratio
                    decompression[n, k] = profile.decompression_s_per_gb
                    available[n, k] = True
            self._profile_columns_cache = (schemes, ratio, decompression, available)
        return self._profile_columns_cache

    def batch_tensors(self) -> BatchCostTensors:
        """The full vectorized candidate evaluation (cached).

        Every cell agrees bit for bit with the :class:`CandidateOption` the
        scalar :meth:`options_for` would build for the same (partition, tier,
        scheme) triple; the ``feasible`` mask matches
        :attr:`CandidateOption.feasible` plus scheme availability.
        """
        if self._tensors is None:
            schemes, ratio, decompression, available = self._profile_columns()
            self._tensors = self.cost_model.batch_tensors(
                self.partition_arrays(), schemes, ratio, decompression, available
            )
        return self._tensors

    def stored_gb(self, partition: DataPartition, scheme: str) -> float:
        """On-disk size of ``partition`` under ``scheme`` (used by capacity constraints)."""
        profile = self._profiles[partition.name][scheme]
        return profile.compressed_gb(partition.size_gb)

    def has_finite_capacity(self) -> bool:
        """True if any tier has a finite reserved capacity."""
        return any(tier.capacity_gb != float("inf") for tier in self.cost_model.tiers)

    def with_current_placement(
        self,
        placement: Mapping[str, object],
        pin_codecs: bool = False,
    ) -> "OptAssignProblem":
        """A copy of the problem that knows where the data lives *today*.

        ``placement`` maps partition names to either a tier index (``int``) or
        anything with a ``tier_index`` attribute (e.g. the simulator's
        :class:`~repro.cloud.PlacementDecision` or a solver's
        :class:`~repro.core.optassign.CandidateOption`).  Partitions listed
        there get ``current_tier`` set accordingly, so the objective's
        ``Delta_{u,v}`` term charges the true cost of *moving away* from the
        existing layout — the warm start a rolling re-optimization loop needs
        (staying put is free, migrating pays read + write).  Partitions not
        listed keep their current tier.

        With ``pin_codecs`` the current scheme (when the placement entry
        carries a ``profile.scheme``) is pinned as ``current_codec``,
        reproducing the paper's already-compressed constraint; by default
        re-compression is allowed and simply billed.
        """
        partitions = []
        for partition in self.partitions:
            entry = placement.get(partition.name)
            if entry is None:
                partitions.append(partition)
                continue
            tier_index = entry if isinstance(entry, int) else int(entry.tier_index)
            codec = partition.current_codec
            if pin_codecs:
                profile = getattr(entry, "profile", None)
                scheme = getattr(profile, "scheme", None) or getattr(entry, "scheme", None)
                if scheme is not None:
                    # The "none" scheme means stored uncompressed, not pinned:
                    # a later re-optimization may still choose to compress.
                    codec = None if scheme == NO_COMPRESSION else scheme
            partitions.append(
                replace(partition, current_tier=tier_index, current_codec=codec)
            )
        return OptAssignProblem(partitions, self.cost_model, self._profiles)

    def relaxed(self, latency_factor: float) -> "OptAssignProblem":
        """A copy of the problem with every latency threshold multiplied by ``latency_factor``.

        The paper notes that when capacity and latency constraints make the
        ILP infeasible, latency requirements are relaxed iteratively until a
        solution exists.
        """
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        relaxed_partitions = [
            DataPartition(
                name=partition.name,
                size_gb=partition.size_gb,
                predicted_accesses=partition.predicted_accesses,
                latency_threshold_s=partition.latency_threshold_s * latency_factor,
                current_tier=partition.current_tier,
                current_codec=partition.current_codec,
                file_ids=partition.file_ids,
                read_fraction=partition.read_fraction,
                pushdown_fraction=partition.pushdown_fraction,
            )
            for partition in self.partitions
        ]
        problem = OptAssignProblem.__new__(OptAssignProblem)
        problem.partitions = relaxed_partitions
        problem.cost_model = self.cost_model
        problem._profiles = self._profiles
        problem._arrays = None
        # The profile columns depend only on the (shared) profile table and
        # the partition order, so the relaxed copy can reuse them; the cost
        # tensors depend on the latency thresholds and must be recomputed.
        problem._profile_columns_cache = self._profile_columns_cache
        problem._tensors = None
        return problem
