"""Problem definition for OPTASSIGN (Section IV of the paper).

An :class:`OptAssignProblem` bundles the data partitions, the cost model (tier
catalog, compute price, horizon, objective weights) and the per-partition
compression profiles, and enumerates the *candidate options* — the feasible
(tier, scheme) pairs for each partition, with their objective value, billed
cost and latency.  The solvers (ILP, greedy, matching) all consume the same
candidate enumeration so they optimise exactly the same quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from ...cloud import (
    CompressionProfile,
    CostBreakdown,
    CostModel,
    DataPartition,
    NO_COMPRESSION_PROFILE,
)
from ...cloud.objects import NO_COMPRESSION

__all__ = ["CandidateOption", "OptAssignProblem", "ProfileTable"]


#: Per-partition compression profiles, keyed by partition name then scheme name.
ProfileTable = Mapping[str, Mapping[str, CompressionProfile]]


@dataclass(frozen=True)
class CandidateOption:
    """One feasible-or-not (tier, scheme) choice for one partition."""

    partition: str
    tier_index: int
    scheme: str
    objective: float
    breakdown: CostBreakdown
    latency_s: float
    latency_feasible: bool
    codec_allowed: bool

    @property
    def feasible(self) -> bool:
        """Feasible with respect to latency SLA and codec pinning (not capacity)."""
        return self.latency_feasible and self.codec_allowed


class OptAssignProblem:
    """The OPTASSIGN instance: partitions, prices, compression profiles.

    Parameters
    ----------
    partitions:
        The placement units.  Names must be unique.
    cost_model:
        Prices, horizon, objective weights and the tier catalog.
    profiles:
        ``profiles[partition_name][scheme]`` gives the predicted
        :class:`CompressionProfile` of applying ``scheme`` to that partition.
        The ``"none"`` scheme is always available and is added automatically
        if missing.  When ``profiles`` is ``None`` the problem degenerates to
        tier assignment only (the paper's ``K = 0`` configuration).
    """

    def __init__(
        self,
        partitions: Sequence[DataPartition],
        cost_model: CostModel,
        profiles: ProfileTable | None = None,
    ):
        names = [partition.name for partition in partitions]
        if len(set(names)) != len(names):
            raise ValueError("partition names must be unique")
        if not partitions:
            raise ValueError("at least one partition is required")
        self.partitions: list[DataPartition] = list(partitions)
        self.cost_model = cost_model
        self._profiles: dict[str, dict[str, CompressionProfile]] = {}
        for partition in self.partitions:
            partition_profiles = dict(profiles.get(partition.name, {})) if profiles else {}
            for scheme, profile in partition_profiles.items():
                if scheme != profile.scheme:
                    raise ValueError(
                        f"profile keyed {scheme!r} has scheme {profile.scheme!r} "
                        f"for partition {partition.name!r}"
                    )
            partition_profiles.setdefault("none", NO_COMPRESSION_PROFILE)
            self._profiles[partition.name] = partition_profiles
        # Validate that pinned codecs actually have a profile.
        for partition in self.partitions:
            pinned = partition.current_codec
            if pinned is not None and pinned not in self._profiles[partition.name]:
                raise ValueError(
                    f"partition {partition.name!r} is pinned to codec {pinned!r} "
                    "but no profile for that codec was provided"
                )

    # -- accessors -------------------------------------------------------------
    @property
    def tier_count(self) -> int:
        return len(self.cost_model.tiers)

    @property
    def partition_names(self) -> list[str]:
        return [partition.name for partition in self.partitions]

    def schemes_for(self, partition: DataPartition) -> list[str]:
        """Compression schemes with a profile available for ``partition``."""
        return sorted(self._profiles[partition.name])

    def profile_for(self, partition_name: str, scheme: str) -> CompressionProfile:
        return self._profiles[partition_name][scheme]

    # -- candidate enumeration ----------------------------------------------------
    def options_for(
        self, partition: DataPartition, include_infeasible: bool = False
    ) -> list[CandidateOption]:
        """All (tier, scheme) candidates for ``partition``.

        By default only latency-feasible, codec-allowed options are returned;
        ``include_infeasible`` keeps the rest (used for diagnostics and for
        the latency-relaxation loop).
        """
        model = self.cost_model
        options: list[CandidateOption] = []
        for tier_index in range(self.tier_count):
            for scheme in self.schemes_for(partition):
                profile = self._profiles[partition.name][scheme]
                latency = model.access_latency_s(partition, tier_index, profile)
                option = CandidateOption(
                    partition=partition.name,
                    tier_index=tier_index,
                    scheme=scheme,
                    objective=model.placement_objective(partition, tier_index, profile),
                    breakdown=model.placement_breakdown(partition, tier_index, profile),
                    latency_s=latency,
                    latency_feasible=latency <= partition.latency_threshold_s,
                    codec_allowed=model.is_codec_allowed(partition, scheme),
                )
                if include_infeasible or option.feasible:
                    options.append(option)
        return options

    def all_options(
        self, include_infeasible: bool = False
    ) -> dict[str, list[CandidateOption]]:
        """Candidate options for every partition, keyed by partition name."""
        return {
            partition.name: self.options_for(partition, include_infeasible)
            for partition in self.partitions
        }

    def stored_gb(self, partition: DataPartition, scheme: str) -> float:
        """On-disk size of ``partition`` under ``scheme`` (used by capacity constraints)."""
        profile = self._profiles[partition.name][scheme]
        return profile.compressed_gb(partition.size_gb)

    def has_finite_capacity(self) -> bool:
        """True if any tier has a finite reserved capacity."""
        return any(tier.capacity_gb != float("inf") for tier in self.cost_model.tiers)

    def with_current_placement(
        self,
        placement: Mapping[str, object],
        pin_codecs: bool = False,
    ) -> "OptAssignProblem":
        """A copy of the problem that knows where the data lives *today*.

        ``placement`` maps partition names to either a tier index (``int``) or
        anything with a ``tier_index`` attribute (e.g. the simulator's
        :class:`~repro.cloud.PlacementDecision` or a solver's
        :class:`~repro.core.optassign.CandidateOption`).  Partitions listed
        there get ``current_tier`` set accordingly, so the objective's
        ``Delta_{u,v}`` term charges the true cost of *moving away* from the
        existing layout — the warm start a rolling re-optimization loop needs
        (staying put is free, migrating pays read + write).  Partitions not
        listed keep their current tier.

        With ``pin_codecs`` the current scheme (when the placement entry
        carries a ``profile.scheme``) is pinned as ``current_codec``,
        reproducing the paper's already-compressed constraint; by default
        re-compression is allowed and simply billed.
        """
        partitions = []
        for partition in self.partitions:
            entry = placement.get(partition.name)
            if entry is None:
                partitions.append(partition)
                continue
            tier_index = entry if isinstance(entry, int) else int(entry.tier_index)
            codec = partition.current_codec
            if pin_codecs:
                profile = getattr(entry, "profile", None)
                scheme = getattr(profile, "scheme", None) or getattr(entry, "scheme", None)
                if scheme is not None:
                    # The "none" scheme means stored uncompressed, not pinned:
                    # a later re-optimization may still choose to compress.
                    codec = None if scheme == NO_COMPRESSION else scheme
            partitions.append(
                replace(partition, current_tier=tier_index, current_codec=codec)
            )
        return OptAssignProblem(partitions, self.cost_model, self._profiles)

    def relaxed(self, latency_factor: float) -> "OptAssignProblem":
        """A copy of the problem with every latency threshold multiplied by ``latency_factor``.

        The paper notes that when capacity and latency constraints make the
        ILP infeasible, latency requirements are relaxed iteratively until a
        solution exists.
        """
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        relaxed_partitions = [
            DataPartition(
                name=partition.name,
                size_gb=partition.size_gb,
                predicted_accesses=partition.predicted_accesses,
                latency_threshold_s=partition.latency_threshold_s * latency_factor,
                current_tier=partition.current_tier,
                current_codec=partition.current_codec,
                file_ids=partition.file_ids,
                read_fraction=partition.read_fraction,
                pushdown_fraction=partition.pushdown_fraction,
            )
            for partition in self.partitions
        ]
        problem = OptAssignProblem.__new__(OptAssignProblem)
        problem.partitions = relaxed_partitions
        problem.cost_model = self.cost_model
        problem._profiles = self._profiles
        return problem
