"""The OPTASSIGN facade: pick the right solver and relax latency if needed.

``solve_optassign`` is the entry point the pipeline and the benchmarks use.
It dispatches to the greedy solver (optimal, linear time) when no tier has a
finite capacity, and to the ILP otherwise; when the constraints are jointly
infeasible it relaxes every latency threshold by a growing factor, as the
paper prescribes ("the latency requirements need to be relaxed iteratively
till a feasible solution is found").
"""

from __future__ import annotations

from dataclasses import dataclass

from .greedy import solve_greedy
from .ilp import IlpInfeasibleError, solve_ilp
from .problem import OptAssignProblem
from .result import Assignment

__all__ = ["solve_optassign", "SolveReport"]


@dataclass
class SolveReport:
    """The assignment plus how it was obtained (solver, relaxation applied)."""

    assignment: Assignment
    solver: str
    latency_relaxation: float

    @property
    def relaxed(self) -> bool:
        return self.latency_relaxation > 1.0


def solve_optassign(
    problem: OptAssignProblem,
    prefer: str = "auto",
    max_relaxation_rounds: int = 6,
    relaxation_step: float = 2.0,
    time_limit_s: float | None = None,
) -> SolveReport:
    """Solve OPTASSIGN, relaxing latency thresholds if the instance is infeasible.

    Parameters
    ----------
    problem:
        The instance to solve.
    prefer:
        ``"auto"`` (greedy when capacities are unbounded, ILP otherwise),
        ``"greedy"`` or ``"ilp"``.
    max_relaxation_rounds:
        How many times to multiply latency thresholds by ``relaxation_step``
        before giving up.
    relaxation_step:
        Multiplicative latency relaxation per round (> 1).

    Raises
    ------
    ValueError
        If ``prefer`` is unknown or no solution exists even after relaxation.
    """
    if prefer not in ("auto", "greedy", "ilp"):
        raise ValueError(f"prefer must be 'auto', 'greedy' or 'ilp', got {prefer!r}")
    if relaxation_step <= 1.0:
        raise ValueError("relaxation_step must be greater than 1")
    if prefer == "auto":
        solver = "ilp" if problem.has_finite_capacity() else "greedy"
    else:
        solver = prefer

    factor = 1.0
    last_error: Exception | None = None
    for _ in range(max_relaxation_rounds + 1):
        candidate = problem if factor == 1.0 else problem.relaxed(factor)
        try:
            if solver == "greedy":
                assignment = solve_greedy(candidate, enforce_unbounded=False)
            else:
                assignment = solve_ilp(candidate, time_limit_s=time_limit_s)
            return SolveReport(
                assignment=assignment, solver=solver, latency_relaxation=factor
            )
        except (ValueError, IlpInfeasibleError) as error:
            last_error = error
            factor *= relaxation_step
    raise ValueError(
        f"OPTASSIGN instance remained infeasible after relaxing latency "
        f"thresholds {max_relaxation_rounds} times (last error: {last_error})"
    )
