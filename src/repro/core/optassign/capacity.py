"""The OPTASSIGN facade: pick the right solver and relax latency if needed.

``solve_optassign`` is the entry point the pipeline and the benchmarks use.
It dispatches to the greedy solver (optimal, linear time) when no tier has a
finite capacity, and to the ILP otherwise; when the constraints are jointly
infeasible it relaxes every latency threshold by a growing factor, as the
paper prescribes ("the latency requirements need to be relaxed iteratively
till a feasible solution is found").

For capacity-bounded instances where the ILP is too slow (tens of thousands
of partitions), ``prefer="greedy"`` now runs the vectorized greedy solver and
then :func:`repair_capacity` — a regret-based eviction pass over the same
batch cost tensors — so the facade's old promise that the greedy fallback
"repairs" capacity violations is actually kept.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace

import numpy as np

from ...cloud import PoolSet
from ...obs import get_metrics, get_tracer
from .errors import InfeasibleError
from .greedy import solve_greedy
from .ilp import solve_ilp
from .problem import OptAssignProblem
from .result import Assignment

__all__ = [
    "solve_optassign",
    "repair_capacity",
    "repair_pools",
    "check_fail_fast_certificates",
    "SolveReport",
]


@dataclass
class SolveReport:
    """The assignment plus how it was obtained (solver, relaxation applied)."""

    assignment: Assignment
    solver: str
    latency_relaxation: float

    @property
    def relaxed(self) -> bool:
        return self.latency_relaxation > 1.0


def _repair_groups(
    assignment: Assignment,
    group_of_tier: np.ndarray,
    capacities: np.ndarray,
    describe_failure,
    solver_suffix: str,
    tolerance: float,
    kind: str = "capacity",
) -> Assignment:
    """Greedy regret-per-GB eviction until every *tier group* fits its budget.

    The shared water-filling machinery behind :func:`repair_capacity` (every
    tier its own group, budgets = reserved tier capacities) and
    :func:`repair_pools` (groups = shared capacity pools, tiers with group
    index ``-1`` unconstrained).  Groups are processed most-overfull first;
    members of an over-full group move to their cheapest feasible option
    outside every closed group, cheapest regret per freed GB first, until the
    group fits.  A repaired group is closed to further arrivals, so the loop
    terminates after at most one round per group.  All candidate costs come
    from the problem's cached batch tensors — no per-option Python
    re-evaluation.

    ``describe_failure(index, need_gb)`` renders the complete InfeasibleError
    message when the group at ``index`` cannot shed ``need_gb`` more GB.
    ``kind`` names the telemetry series (``optassign.repair_capacity`` /
    ``optassign.repair_pools`` spans, ``optassign.repair.*{kind=}``
    counters).
    """
    tracer = get_tracer()
    with tracer.span(f"optassign.repair_{kind}") as span:
        result, rounds, evictions = _repair_groups_impl(
            assignment, group_of_tier, capacities, describe_failure,
            solver_suffix, tolerance,
        )
        if tracer.enabled:
            span.set(rounds=rounds, evictions=evictions)
            metrics = get_metrics()
            if rounds:
                metrics.counter("optassign.repair.rounds", kind=kind).add(rounds)
            if evictions:
                metrics.counter("optassign.repair.evictions", kind=kind).add(
                    evictions
                )
    return result


def _repair_groups_impl(
    assignment: Assignment,
    group_of_tier: np.ndarray,
    capacities: np.ndarray,
    describe_failure,
    solver_suffix: str,
    tolerance: float,
) -> tuple[Assignment, int, int]:
    """The water-filling algorithm behind :func:`_repair_groups`.

    Returns ``(assignment, rounds, evictions)`` — rounds is the number of
    groups that had to be repaired, evictions the partitions moved.
    """
    problem = assignment.problem
    tensors = problem.batch_tensors()
    arrays = problem.partition_arrays()
    num_groups = len(capacities)
    num_partitions = tensors.num_partitions

    scheme_index = {scheme: k for k, scheme in enumerate(tensors.schemes)}
    current_tier = np.fromiter(
        (assignment.choices[name].tier_index for name in arrays.names),
        dtype=np.int64,
        count=num_partitions,
    )
    current_scheme = np.fromiter(
        (scheme_index[assignment.choices[name].scheme] for name in arrays.names),
        dtype=np.int64,
        count=num_partitions,
    )
    rows = np.arange(num_partitions)
    stored = tensors.stored_gb[rows, current_scheme]
    tier_usage = np.bincount(current_tier, weights=stored, minlength=tensors.num_tiers)
    grouped_tiers = group_of_tier >= 0
    usage = np.bincount(
        group_of_tier[grouped_tiers],
        weights=tier_usage[grouped_tiers],
        minlength=num_groups,
    )
    if not (usage > capacities + tolerance).any():
        return assignment, 0, 0

    masked = tensors.masked_objective()
    closed = np.zeros(num_groups, dtype=bool)
    moved: set[int] = set()
    rounds = 0
    while True:
        overflow = usage - capacities
        overfull = np.flatnonzero(overflow > tolerance)
        if overfull.size == 0:
            break
        rounds += 1
        # Invariant: an over-full group here is never closed — evictions only
        # target tiers of non-closed groups (or ungrouped tiers), so a
        # repaired group's usage cannot grow again and each round closes one
        # more group (<= one round per group in total).
        target = int(overfull[np.argmax(overflow[overfull])])
        closed[target] = True
        closed_tiers = np.zeros(tensors.num_tiers, dtype=bool)
        closed_tiers[grouped_tiers] = closed[group_of_tier[grouped_tiers]]

        members = np.flatnonzero(group_of_tier[current_tier] == target)
        alternatives = masked[members].copy()
        alternatives[:, closed_tiers, :] = np.inf
        flat = alternatives.reshape(len(members), -1)
        best = np.argmin(flat, axis=1)
        best_objective = flat[np.arange(len(members)), best]
        current_objective = masked[members, current_tier[members], current_scheme[members]]
        freed = stored[members]
        regret = best_objective - current_objective
        with np.errstate(divide="ignore", invalid="ignore"):
            score = np.where(freed > 0, regret / freed, np.inf)

        need = overflow[target]
        for position in np.argsort(score, kind="stable"):
            if need <= tolerance:
                break
            if not np.isfinite(best_objective[position]) or freed[position] <= 0:
                continue
            index = int(members[position])
            new_tier = int(best[position] // tensors.num_schemes)
            new_scheme = int(best[position] % tensors.num_schemes)
            need -= freed[position]
            usage[target] -= freed[position]
            new_stored = float(tensors.stored_gb[index, new_scheme])
            destination = int(group_of_tier[new_tier])
            if destination >= 0:
                usage[destination] += new_stored
            current_tier[index] = new_tier
            current_scheme[index] = new_scheme
            stored[index] = new_stored
            moved.add(index)
        if need > tolerance:
            raise InfeasibleError(describe_failure(target, float(need)))

    choices = dict(assignment.choices)
    for index in moved:
        name = arrays.names[index]
        tier = int(current_tier[index])
        scheme = int(current_scheme[index])
        choices[name] = replace(
            assignment.choices[name],
            tier_index=tier,
            scheme=tensors.schemes[scheme],
            objective=float(tensors.objective[index, tier, scheme]),
            breakdown=tensors.breakdown_at(index, tier, scheme),
            latency_s=float(tensors.latency_s[index, tier, scheme]),
        )
    return (
        Assignment(
            problem=problem,
            choices=choices,
            solver=f"{assignment.solver}{solver_suffix}",
        ),
        rounds,
        len(moved),
    )


def repair_capacity(
    assignment: Assignment, tolerance: float = 1e-9
) -> Assignment:
    """Evict partitions from over-capacity tiers at minimum regret, vectorized.

    Greedy assigns every partition its individually-cheapest option, which may
    jointly exceed a tier's reserved capacity.  This pass restores capacity
    feasibility via :func:`_repair_groups` with every tier as its own group:
    tiers are processed most-overfull first, and members of an over-full tier
    are moved to their cheapest feasible option *elsewhere*, cheapest regret
    per freed GB first, until the tier fits.

    Returns the assignment unchanged (same object) when it is already
    capacity-feasible.  Raises :class:`InfeasibleError` when a tier cannot be
    repaired (not enough movable partitions with feasible options outside the
    full tiers); ``solve_optassign`` reacts by relaxing latency thresholds,
    which widens the set of feasible destinations.
    """
    tiers = assignment.problem.cost_model.tiers
    capacities = tiers.cost_arrays()["capacity_gb"]
    return _repair_groups(
        assignment,
        group_of_tier=np.arange(len(capacities), dtype=np.int64),
        capacities=capacities,
        describe_failure=lambda tier, need: (
            f"capacity repair failed: tier {tier} remains {need:.3f} GB over "
            "its reserved capacity and no movable partition has a feasible "
            "option elsewhere"
        ),
        solver_suffix="+repair",
        tolerance=tolerance,
        kind="capacity",
    )


def repair_pools(
    assignment: Assignment,
    pool_set: PoolSet,
    reserved_gb: np.ndarray | None = None,
    tolerance: float = 1e-9,
) -> Assignment:
    """Evict partitions from over-budget *capacity pools* at minimum regret.

    The pool-level counterpart of :func:`repair_capacity`: a
    :class:`~repro.cloud.PoolSet` groups catalog tiers into shared GB budgets
    (typically spanning many tenants via a stacked problem), and this pass
    restores pool feasibility by the same greedy water-filling — most-overfull
    pool first, its members moved to their cheapest feasible option outside
    every closed pool, cheapest regret per freed GB first.  A repaired pool is
    closed to further arrivals (all its tiers are masked), so the loop
    terminates after at most one round per pool.  Tiers in no pool are
    unconstrained destinations.

    ``reserved_gb`` (one entry per pool) is capacity already consumed by
    partitions *outside* this assignment — in the fleet setting, the standing
    placements of tenants that did not re-optimize this epoch — and is
    subtracted from each pool's budget before arbitration.

    Returns the assignment unchanged (same object) when every pool already
    fits.  Raises :class:`InfeasibleError` when a pool cannot be repaired;
    the fleet scheduler reacts by relaxing latency thresholds, exactly as
    ``solve_optassign`` does for tier-capacity infeasibility.
    """
    if pool_set.catalog is not assignment.problem.cost_model.tiers:
        raise ValueError(
            "pool_set was resolved against a different tier catalog than the "
            "assignment's problem"
        )
    capacities = pool_set.capacities
    if reserved_gb is not None:
        reserved_gb = np.asarray(reserved_gb, dtype=np.float64)
        if reserved_gb.shape != capacities.shape:
            raise ValueError(
                f"reserved_gb must have shape {capacities.shape}, "
                f"got {reserved_gb.shape}"
            )
        if (reserved_gb < 0).any():
            raise ValueError("reserved_gb entries must be non-negative")
        capacities = np.maximum(capacities - reserved_gb, 0.0)
    return _repair_groups(
        assignment,
        group_of_tier=pool_set.pool_of_tier,
        capacities=capacities,
        describe_failure=lambda pool, need: (
            f"pool arbitration failed: pool {pool_set.pools[pool].name!r} "
            f"remains {need:.3f} GB over its shared budget and no movable "
            "partition has a feasible option outside the full pools"
        ),
        solver_suffix="+pools",
        tolerance=tolerance,
        kind="pools",
    )


def solve_optassign(
    problem: OptAssignProblem,
    prefer: str = "auto",
    max_relaxation_rounds: int = 6,
    relaxation_step: float = 2.0,
    time_limit_s: float | None = None,
    post_repair=None,
) -> SolveReport:
    """Solve OPTASSIGN, relaxing latency thresholds if the instance is infeasible.

    Parameters
    ----------
    problem:
        The instance to solve.
    prefer:
        ``"auto"`` (greedy when capacities are unbounded, ILP otherwise),
        ``"greedy"`` or ``"ilp"``.
    max_relaxation_rounds:
        How many times to multiply latency thresholds by ``relaxation_step``
        before giving up.
    relaxation_step:
        Multiplicative latency relaxation per round (> 1).
    post_repair:
        Optional ``Assignment -> Assignment`` pass applied *inside* the
        relaxation loop, after the solver (and any tier-capacity repair)
        succeeds.  An :class:`InfeasibleError` it raises triggers the same
        latency relaxation as solver infeasibility, while the up-front
        fail-fast certificates still run exactly once.  The fleet layer
        plugs :func:`repair_pools` in here so shared-pool arbitration rides
        the one relaxation loop instead of duplicating it.

    Raises
    ------
    ValueError
        If ``prefer`` or ``relaxation_step`` is invalid.
    InfeasibleError
        If no solution exists even after every relaxation round — including
        the capacity-driven case latency relaxation can never fix (total
        minimum stored size exceeding total reserved capacity), which is
        detected up front and raised without burning relaxation rounds.
    """
    if prefer not in ("auto", "greedy", "ilp"):
        raise ValueError(f"prefer must be 'auto', 'greedy' or 'ilp', got {prefer!r}")
    if relaxation_step <= 1.0:
        raise ValueError("relaxation_step must be greater than 1")
    if prefer == "auto":
        solver = "ilp" if problem.has_finite_capacity() else "greedy"
    else:
        solver = prefer

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("optassign.solve", solver=solver) as solve_span:
        check_fail_fast_certificates(problem)

        factor = 1.0
        last_error: Exception | None = None
        for round_index in range(max_relaxation_rounds + 1):
            candidate = problem if factor == 1.0 else problem.relaxed(factor)
            # Round 0 is the unrelaxed solve; only actual relaxation retries
            # get their own span so the relaxation loop shows up in traces
            # exactly when it ran.
            round_context = (
                tracer.span(
                    "optassign.relaxation_round", round=round_index, factor=factor
                )
                if round_index > 0
                else nullcontext()
            )
            try:
                with round_context:
                    if solver == "greedy":
                        assignment = solve_greedy(candidate, enforce_unbounded=False)
                        if candidate.has_finite_capacity():
                            assignment = repair_capacity(assignment)
                    else:
                        assignment = solve_ilp(candidate, time_limit_s=time_limit_s)
                    if post_repair is not None:
                        assignment = post_repair(assignment)
                solve_span.set(latency_relaxation=factor)
                return SolveReport(
                    assignment=assignment, solver=solver, latency_relaxation=factor
                )
            except InfeasibleError as error:
                last_error = error
                factor *= relaxation_step
                metrics.counter("optassign.relaxations").add()
        raise InfeasibleError(
            f"OPTASSIGN instance remained infeasible after relaxing latency "
            f"thresholds {max_relaxation_rounds} times (last error: {last_error})"
        )


def check_fail_fast_certificates(problem: OptAssignProblem) -> None:
    """Fail fast on the two infeasibility classes latency relaxation can
    never fix, with pointed diagnostics instead of a misleading
    exhausted-rounds error: hard-mask-empty partitions (SLO/affinity/codec)
    and aggregate capacity shortfall.

    Shared by :func:`solve_optassign` and the sharded fleet solver
    (:class:`repro.fleet.ShardedFleetSolver`), so both entry points raise
    the same certificates — messages, metrics counters and all.
    """
    metrics = get_metrics()
    masked_out = problem.hard_mask_empty_partitions()
    if masked_out:
        metrics.counter(
            "optassign.infeasibility_certificates", kind="hard_mask"
        ).add()
        raise InfeasibleError(
            "partitions have no (tier, scheme) candidate under their "
            "never-relaxed constraints (tier SLO caps, provider affinity, "
            f"codec pinning): {masked_out[:5]}"
            f"{'...' if len(masked_out) > 5 else ''}; latency relaxation "
            "cannot help — loosen those constraints or extend the catalog"
        )
    shortfall = _capacity_shortfall(problem)
    if shortfall > 0.0:
        metrics.counter(
            "optassign.infeasibility_certificates", kind="capacity_shortfall"
        ).add()
        raise InfeasibleError(
            "OPTASSIGN instance is capacity-infeasible regardless of latency "
            f"relaxation: the partitions' minimum stored size exceeds the "
            f"total reserved capacity by {shortfall:.3f} GB"
        )


def _capacity_shortfall(problem: OptAssignProblem) -> float:
    """GB by which the partitions' minimum footprint exceeds total capacity.

    A positive value certifies infeasibility no matter how far latency
    thresholds are relaxed: even packing every partition at its smallest
    available stored size cannot fit the catalog.  Only meaningful when
    *every* tier has finite capacity — one unbounded tier absorbs anything.
    """
    capacities = problem.cost_model.tiers.cost_arrays()["capacity_gb"]
    if np.isinf(capacities).any():
        return 0.0
    min_stored = problem.min_stored_gb()
    if np.isinf(min_stored).any():
        # Some partition has no usable scheme at all; the hard-mask check
        # (or the solvers) produce the more specific diagnostics.
        return 0.0
    return float(min_stored.sum() - capacities.sum())
