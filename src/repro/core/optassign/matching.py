"""Bipartite-matching OPTASSIGN solver for the equal-size / no-compression case.

Theorem 2 of the paper: when every partition has the same span and no
compression is considered, capacity-bounded tier assignment reduces to a
minimum-weight bipartite matching between partitions and "tier copies" — tier
``l`` contributes ``Z_l = min(N, floor(S_l / S))`` copies, an edge exists only
when the tier satisfies the partition's latency SLA, and the edge weight is
the storage + expected read (+ write) cost of that placement.  The Hungarian
algorithm (``scipy.optimize.linear_sum_assignment``) then yields the optimal
assignment in polynomial time.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linear_sum_assignment

from .problem import CandidateOption, OptAssignProblem
from .result import Assignment

__all__ = ["solve_matching", "MatchingNotApplicableError"]


class MatchingNotApplicableError(ValueError):
    """Raised when the instance is not an equal-size / no-compression special case."""


def _check_applicable(problem: OptAssignProblem, size_tolerance: float) -> float:
    sizes = [partition.size_gb for partition in problem.partitions]
    span = sizes[0]
    if any(abs(size - span) > size_tolerance * max(span, 1e-12) for size in sizes):
        raise MatchingNotApplicableError(
            "bipartite matching requires equal-sized partitions"
        )
    for partition in problem.partitions:
        schemes = problem.schemes_for(partition)
        if schemes != ["none"]:
            raise MatchingNotApplicableError(
                "bipartite matching requires the no-compression configuration "
                f"(partition {partition.name!r} has schemes {schemes})"
            )
    return span


def solve_matching(
    problem: OptAssignProblem, size_tolerance: float = 1e-9
) -> Assignment:
    """Optimal tier assignment by minimum-weight bipartite matching (Theorem 2).

    Raises
    ------
    MatchingNotApplicableError
        If partitions are not equal-sized or compression schemes are present.
    ValueError
        If the total tier capacity cannot hold all partitions, or a partition
        has no latency-feasible tier.
    """
    span = _check_applicable(problem, size_tolerance)
    n_partitions = len(problem.partitions)
    tiers = problem.cost_model.tiers

    # Build tier copies: Z_l = min(N, floor(S_l / span)).
    copies: list[int] = []  # tier index of each copy column
    for tier_index, tier in enumerate(tiers):
        if math.isinf(tier.capacity_gb):
            count = n_partitions
        else:
            count = min(n_partitions, int(tier.capacity_gb // span)) if span > 0 else n_partitions
        copies.extend([tier_index] * count)
    if len(copies) < n_partitions:
        raise ValueError(
            "total tier capacity cannot hold all equal-sized partitions "
            f"({len(copies)} slots for {n_partitions} partitions)"
        )

    # Cost matrix: partitions x tier copies; infeasible edges get +inf.
    infeasible_cost = np.inf
    cost = np.full((n_partitions, len(copies)), infeasible_cost)
    options_by_partition: dict[str, dict[int, CandidateOption]] = {}
    for row, partition in enumerate(problem.partitions):
        feasible = {
            option.tier_index: option for option in problem.options_for(partition)
        }
        if not feasible:
            raise ValueError(
                f"partition {partition.name!r} has no latency-feasible tier"
            )
        options_by_partition[partition.name] = feasible
        for column, tier_index in enumerate(copies):
            option = feasible.get(tier_index)
            if option is not None:
                cost[row, column] = option.objective

    # linear_sum_assignment cannot handle +inf entries directly; replace them
    # with a prohibitively large finite cost and verify afterwards.
    finite = cost[np.isfinite(cost)]
    big = (finite.max() if finite.size else 1.0) * (n_partitions + 1) + 1.0
    padded = np.where(np.isfinite(cost), cost, big)
    rows, columns = linear_sum_assignment(padded)

    choices: dict[str, CandidateOption] = {}
    for row, column in zip(rows, columns):
        if not np.isfinite(cost[row, column]):
            raise ValueError(
                "no feasible matching exists under the latency and capacity constraints"
            )
        partition = problem.partitions[row]
        tier_index = copies[column]
        choices[partition.name] = options_by_partition[partition.name][tier_index]
    return Assignment(problem=problem, choices=choices, solver="matching")
