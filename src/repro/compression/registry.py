"""Registry of compression schemes and scheme x layout combinations.

The paper evaluates schemes on two storage layouts — CSV (row store) and
parquet (column store) — and the prediction tables are indexed by pairs such
as ``"parquet + gzip"``.  The registry owns the canonical scheme names, builds
codec instances, and produces the scheme/layout combination labels used by
COMPREDICT and by the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..tabular import Table, table_to_columnar_bytes, table_to_csv_bytes
from .codecs import Bz2Codec, Codec, GzipCodec, IdentityCodec, LzmaCodec, ZlibCodec
from .lz4_like import Lz4LikeCodec
from .snappy_like import SnappyLikeCodec

__all__ = [
    "Layout",
    "SchemeLayout",
    "CodecRegistry",
    "default_registry",
    "PAPER_SCHEMES",
    "PAPER_SCHEME_LAYOUTS",
]


class Layout:
    """Storage layouts studied by the paper."""

    CSV = "csv"
    PARQUET = "parquet"

    ALL = (CSV, PARQUET)

    @staticmethod
    def serialize(table: Table, layout: str) -> bytes:
        """Serialise ``table`` in the requested layout."""
        if layout == Layout.CSV:
            return table_to_csv_bytes(table)
        if layout == Layout.PARQUET:
            return table_to_columnar_bytes(table)
        raise ValueError(f"unknown layout {layout!r}; expected one of {Layout.ALL}")


@dataclass(frozen=True)
class SchemeLayout:
    """A (compression scheme, storage layout) combination."""

    scheme: str
    layout: str

    @property
    def label(self) -> str:
        """The paper's display label, e.g. ``"parquet + gzip"`` or ``"gzip"``."""
        if self.layout == Layout.PARQUET:
            return f"parquet + {self.scheme}"
        return self.scheme


class CodecRegistry:
    """Builds codecs by scheme name."""

    def __init__(self):
        self._factories: dict[str, Callable[[], Codec]] = {}

    def register(self, name: str, factory: Callable[[], Codec]) -> None:
        if name in self._factories:
            raise ValueError(f"scheme {name!r} already registered")
        self._factories[name] = factory

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._factories)

    def create(self, name: str) -> Codec:
        """Instantiate the codec registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown compression scheme {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory()

    def create_all(self, names: Iterable[str] | None = None) -> dict[str, Codec]:
        """Instantiate several codecs at once, keyed by scheme name."""
        wanted = list(names) if names is not None else list(self._factories)
        return {name: self.create(name) for name in wanted}


def default_registry() -> CodecRegistry:
    """The registry with every scheme the paper mentions (plus "none")."""
    registry = CodecRegistry()
    registry.register("none", IdentityCodec)
    registry.register("gzip", GzipCodec)
    registry.register("zlib", ZlibCodec)
    registry.register("bz2", Bz2Codec)
    registry.register("lzma", LzmaCodec)
    registry.register("snappy", SnappyLikeCodec)
    registry.register("lz4", Lz4LikeCodec)
    return registry


#: The three schemes the paper's main tables report.
PAPER_SCHEMES: tuple[str, ...] = ("gzip", "snappy", "lz4")

#: The five scheme x layout combinations of Table VI.
PAPER_SCHEME_LAYOUTS: tuple[SchemeLayout, ...] = (
    SchemeLayout("gzip", Layout.CSV),
    SchemeLayout("snappy", Layout.CSV),
    SchemeLayout("gzip", Layout.PARQUET),
    SchemeLayout("snappy", Layout.PARQUET),
    SchemeLayout("lz4", Layout.PARQUET),
)
