"""Compression codec interface and standard-library codecs.

A :class:`Codec` converts bytes to bytes and back.  The paper evaluates gzip,
snappy and lz4 (and mentions bz2, zlib, lzma among others); gzip, zlib, bz2
and lzma come from the standard library, while snappy and lz4 are provided by
pure-Python substitutes in :mod:`repro.compression.snappy_like` and
:mod:`repro.compression.lz4_like` because the C bindings are not installable
offline.
"""

from __future__ import annotations

import bz2
import gzip
import lzma
import zlib
from abc import ABC, abstractmethod

__all__ = [
    "Codec",
    "IdentityCodec",
    "GzipCodec",
    "ZlibCodec",
    "Bz2Codec",
    "LzmaCodec",
]


class Codec(ABC):
    """A reversible bytes-to-bytes compressor."""

    #: Registry / scheme name (e.g. ``"gzip"``).
    name: str = "codec"

    #: Calibration factor mapping this implementation's wall-clock speed to the
    #: speed of the production (C) implementation of the same scheme.  The
    #: stdlib codecs are already C, so their factor is 1.0; the pure-Python
    #: snappy/lz4 substitutes override this so that the *relative* trade-off
    #: (fast codecs decompress an order of magnitude faster than gzip) matches
    #: the paper's setting.  See DESIGN.md, substitution table.
    native_speedup: float = 1.0

    @abstractmethod
    def compress(self, payload: bytes) -> bytes:
        """Compress ``payload`` and return the compressed bytes."""

    @abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""

    def ratio(self, payload: bytes) -> float:
        """Compression ratio (uncompressed / compressed size) on ``payload``.

        Returns 1.0 for an empty payload to keep downstream arithmetic sane.
        """
        if not payload:
            return 1.0
        compressed = self.compress(payload)
        if not compressed:
            return float(len(payload))
        return len(payload) / len(compressed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityCodec(Codec):
    """The "no compression" scheme: ratio 1, zero decompression time."""

    name = "none"

    def compress(self, payload: bytes) -> bytes:
        return payload

    def decompress(self, payload: bytes) -> bytes:
        return payload


class GzipCodec(Codec):
    """gzip (DEFLATE with gzip framing)."""

    name = "gzip"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError("gzip level must be in [0, 9]")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return gzip.compress(payload, compresslevel=self.level)

    def decompress(self, payload: bytes) -> bytes:
        return gzip.decompress(payload)


class ZlibCodec(Codec):
    """Raw DEFLATE via zlib."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return zlib.compress(payload, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class Bz2Codec(Codec):
    """bzip2 — slower, usually higher ratio than gzip."""

    name = "bz2"

    def __init__(self, level: int = 9):
        if not 1 <= level <= 9:
            raise ValueError("bz2 level must be in [1, 9]")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return bz2.compress(payload, compresslevel=self.level)

    def decompress(self, payload: bytes) -> bytes:
        return bz2.decompress(payload)


class LzmaCodec(Codec):
    """LZMA/xz — highest ratio, slowest of the stdlib codecs."""

    name = "lzma"

    def __init__(self, preset: int = 1):
        if not 0 <= preset <= 9:
            raise ValueError("lzma preset must be in [0, 9]")
        self.preset = preset

    def compress(self, payload: bytes) -> bytes:
        return lzma.compress(payload, preset=self.preset)

    def decompress(self, payload: bytes) -> bytes:
        return lzma.decompress(payload)
