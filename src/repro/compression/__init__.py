"""Compression substrate: codecs, scheme/layout registry and measurement.

gzip/zlib/bz2/lzma wrap the standard library; snappy and lz4 are pure-Python
substitutes occupying the same fast/low-ratio region of the trade-off space
(see DESIGN.md, substitution table).
"""

from .codecs import Bz2Codec, Codec, GzipCodec, IdentityCodec, LzmaCodec, ZlibCodec
from .lz4_like import Lz4LikeCodec
from .registry import (
    CodecRegistry,
    Layout,
    PAPER_SCHEMES,
    PAPER_SCHEME_LAYOUTS,
    SchemeLayout,
    default_registry,
)
from .snappy_like import SnappyLikeCodec
from .stats import CompressionMeasurement, measure_compression, measure_table

__all__ = [
    "Codec",
    "IdentityCodec",
    "GzipCodec",
    "ZlibCodec",
    "Bz2Codec",
    "LzmaCodec",
    "SnappyLikeCodec",
    "Lz4LikeCodec",
    "CodecRegistry",
    "default_registry",
    "Layout",
    "SchemeLayout",
    "PAPER_SCHEMES",
    "PAPER_SCHEME_LAYOUTS",
    "CompressionMeasurement",
    "measure_compression",
    "measure_table",
]
