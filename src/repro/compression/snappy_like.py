"""A snappy-style codec: fast, moderate ratio, byte-aligned LZ77 tokens.

Substitute for Google Snappy (see DESIGN.md).  Snappy trades ratio for speed
by using a small match window, a 4-byte minimum match and no entropy coding —
this codec keeps those choices on top of the shared pure-Python LZ77 engine.
"""

from __future__ import annotations

from ._lz77 import lz_compress, lz_decompress
from .codecs import Codec

__all__ = ["SnappyLikeCodec"]


class SnappyLikeCodec(Codec):
    """Snappy-parameterised LZ77: 4-byte min match, 64 KiB window."""

    name = "snappy"
    # Native snappy decompresses at roughly 1.5-2 GB/s; the pure-Python loop
    # manages ~10 MB/s, so timing measurements are scaled by this factor when
    # estimating production decompression speed (see CompressionMeasurement).
    native_speedup = 200.0

    def __init__(self, window: int = 1 << 16):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def compress(self, payload: bytes) -> bytes:
        return lz_compress(payload, min_match=4, window=self.window, hash_bytes=4)

    def decompress(self, payload: bytes) -> bytes:
        return lz_decompress(payload)
