"""Measurement of compression performance on concrete payloads.

COMPREDICT needs ground-truth labels — the actual compression ratio and the
actual decompression speed of a codec on a table serialised in a layout.
:func:`measure_compression` produces both, in the units the paper reports
(ratio as uncompressed/compressed size; decompression speed in seconds per
GB of uncompressed data).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.clock import monotonic_s
from ..tabular import Table
from .codecs import Codec
from .registry import Layout

__all__ = ["CompressionMeasurement", "measure_compression", "measure_table"]

_GB = 1024.0 ** 3


@dataclass(frozen=True)
class CompressionMeasurement:
    """Observed compression behaviour of one codec on one payload.

    ``native_speedup`` is the codec's calibration factor (1.0 for the stdlib
    C codecs): the per-GB speed properties divide the measured wall-clock time
    by it so that the pure-Python snappy/lz4 substitutes report speeds in the
    same regime as their production implementations.  The raw measured
    seconds are preserved in ``compress_seconds`` / ``decompress_seconds``.
    """

    scheme: str
    layout: str
    uncompressed_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    native_speedup: float = 1.0

    @property
    def ratio(self) -> float:
        """Compression ratio: uncompressed size / compressed size."""
        if self.compressed_bytes == 0:
            return float(self.uncompressed_bytes) if self.uncompressed_bytes else 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    @property
    def decompression_s_per_gb(self) -> float:
        """Estimated production decompression time in seconds per GB of uncompressed data."""
        if self.uncompressed_bytes == 0:
            return 0.0
        calibrated = self.decompress_seconds / self.native_speedup
        return calibrated * _GB / self.uncompressed_bytes

    @property
    def compression_s_per_gb(self) -> float:
        """Estimated production compression time in seconds per GB of uncompressed data."""
        if self.uncompressed_bytes == 0:
            return 0.0
        calibrated = self.compress_seconds / self.native_speedup
        return calibrated * _GB / self.uncompressed_bytes


def measure_compression(
    codec: Codec, payload: bytes, layout: str = Layout.CSV, repeats: int = 3
) -> CompressionMeasurement:
    """Compress ``payload`` once and time decompression as a best-of-``repeats``.

    Decompressing a KB-scale sample takes tens of microseconds, so a single
    wall-clock measurement is dominated by scheduler noise once extrapolated
    to seconds-per-GB; taking the minimum over a few runs (the ``timeit``
    estimator for deterministic work) keeps COMPREDICT's ground-truth labels
    stable even on noisy machines.

    Raises ``ValueError`` if the codec does not round-trip the payload
    exactly — a corrupted codec must never silently feed wrong labels into the
    predictor.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    start = monotonic_s()
    compressed = codec.compress(payload)
    compress_seconds = monotonic_s() - start

    decompress_seconds = float("inf")
    restored = None
    for _ in range(repeats):
        start = monotonic_s()
        restored = codec.decompress(compressed)
        decompress_seconds = min(decompress_seconds, monotonic_s() - start)

    if restored != payload:
        raise ValueError(f"codec {codec.name!r} failed to round-trip the payload")

    return CompressionMeasurement(
        scheme=codec.name,
        layout=layout,
        uncompressed_bytes=len(payload),
        compressed_bytes=len(compressed),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
        native_speedup=codec.native_speedup,
    )


def measure_table(codec: Codec, table: Table, layout: str) -> CompressionMeasurement:
    """Serialise ``table`` in ``layout`` and measure ``codec`` on the bytes."""
    payload = Layout.serialize(table, layout)
    return measure_compression(codec, payload, layout=layout)
