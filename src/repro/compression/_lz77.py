"""A small pure-Python LZ77 engine shared by the snappy- and lz4-like codecs.

The real snappy and lz4 libraries are C extensions that cannot be installed
offline, but SCOPe only consumes two numbers per (codec, partition) pair — the
compression ratio and the decompression speed — so what matters is that the
substitutes sit in the same region of that trade-off space: *fast* codecs with
*lower* ratios than gzip.  A greedy hash-chain LZ77 with byte-aligned tokens
reproduces exactly that behaviour.

Token format (little-endian varints)::

    payload   := uvarint(uncompressed_length) token*
    token     := literal | match
    literal   := 0x00 uvarint(length) bytes[length]
    match     := 0x01 uvarint(length) uvarint(distance)

Distances are counted backwards from the current output position and may be
smaller than the match length (overlapping copies), as in LZ4.
"""

from __future__ import annotations

__all__ = ["lz_compress", "lz_decompress", "write_uvarint", "read_uvarint"]

_LITERAL = 0x00
_MATCH = 0x01


def write_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` to ``out`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(payload: bytes, offset: int) -> tuple[int, int]:
    """Read a LEB128 varint from ``payload`` at ``offset``; return (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise ValueError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def lz_compress(
    payload: bytes,
    min_match: int = 4,
    max_match: int = 1 << 16,
    window: int = 1 << 16,
    hash_bytes: int = 4,
) -> bytes:
    """Greedy LZ77 compression of ``payload``.

    ``min_match`` and ``window`` control the ratio/speed point: a larger
    window finds more matches (better ratio, slower), a larger ``min_match``
    skips short matches (faster, worse ratio).
    """
    n = len(payload)
    out = bytearray()
    write_uvarint(n, out)
    if n == 0:
        return bytes(out)

    table: dict[bytes, int] = {}
    literal_start = 0
    position = 0

    def flush_literals(end: int) -> None:
        if end > literal_start:
            out.append(_LITERAL)
            write_uvarint(end - literal_start, out)
            out.extend(payload[literal_start:end])

    while position + hash_bytes <= n:
        key = payload[position : position + hash_bytes]
        candidate = table.get(key)
        table[key] = position
        if candidate is not None and position - candidate <= window:
            # Extend the match as far as it goes.
            length = 0
            limit = min(n - position, max_match)
            while (
                length < limit
                and payload[candidate + length] == payload[position + length]
            ):
                length += 1
            if length >= min_match:
                flush_literals(position)
                out.append(_MATCH)
                write_uvarint(length, out)
                write_uvarint(position - candidate, out)
                # Index a few positions inside the match so later matches can
                # still be found without paying the cost of indexing them all.
                step = max(1, length // 8)
                for inside in range(position + 1, position + length, step):
                    if inside + hash_bytes <= n:
                        table[payload[inside : inside + hash_bytes]] = inside
                position += length
                literal_start = position
                continue
        position += 1

    flush_literals(n)
    return bytes(out)


def lz_decompress(payload: bytes) -> bytes:
    """Invert :func:`lz_compress` exactly."""
    expected, offset = read_uvarint(payload, 0)
    out = bytearray()
    n = len(payload)
    while offset < n:
        tag = payload[offset]
        offset += 1
        if tag == _LITERAL:
            length, offset = read_uvarint(payload, offset)
            if offset + length > n:
                raise ValueError("truncated literal run")
            out.extend(payload[offset : offset + length])
            offset += length
        elif tag == _MATCH:
            length, offset = read_uvarint(payload, offset)
            distance, offset = read_uvarint(payload, offset)
            if distance <= 0 or distance > len(out):
                raise ValueError("invalid match distance")
            start = len(out) - distance
            # Overlapping copies must be done byte-by-byte.
            for index in range(length):
                out.append(out[start + index])
        else:
            raise ValueError(f"unknown token tag {tag}")
    if len(out) != expected:
        raise ValueError(
            f"decompressed length {len(out)} does not match header {expected}"
        )
    return bytes(out)
