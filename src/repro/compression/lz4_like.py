"""An lz4-style codec: the fastest family member, slightly lower ratio.

Substitute for LZ4 (see DESIGN.md).  LZ4 uses an even more aggressive
speed-over-ratio trade-off than snappy (longer minimum matches found through a
sparser hash probe, 64 KiB window); this codec mirrors that by requiring
6-byte matches so fewer, longer matches are emitted and decompression does
less token processing per output byte.
"""

from __future__ import annotations

from ._lz77 import lz_compress, lz_decompress
from .codecs import Codec

__all__ = ["Lz4LikeCodec"]


class Lz4LikeCodec(Codec):
    """LZ4-parameterised LZ77: 6-byte min match, 64 KiB window."""

    name = "lz4"
    # Native lz4 decompresses at 3+ GB/s; see SnappyLikeCodec.native_speedup
    # for how this calibration factor is applied.
    native_speedup = 300.0

    def __init__(self, window: int = 1 << 16):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def compress(self, payload: bytes) -> bytes:
        return lz_compress(payload, min_match=6, window=self.window, hash_bytes=4)

    def decompress(self, payload: bytes) -> bytes:
        return lz_decompress(payload)
