"""Tests for the SCOPe unified pipeline, its variants and the report formatting."""

import pytest

from repro.cloud import CostWeights
from repro.core.pipeline import (
    PipelineRow,
    ScopeConfig,
    ScopePipeline,
    ScopeVariant,
    format_matrix,
    format_pipeline_table,
    paper_variant_suite,
)
from repro.workloads import generate_enterprise_tables, generate_tpch_queries


@pytest.fixture(scope="module")
def pipeline(tpch_db_module, tpch_workload_module):
    config = ScopeConfig(rows_per_file=150, target_total_gb=50.0, duration_months=5.5)
    return ScopePipeline(tpch_db_module.tables, tpch_workload_module, config).prepare()


@pytest.fixture(scope="module")
def tpch_db_module():
    from repro.workloads import TpchConfig, generate_tpch

    return generate_tpch(TpchConfig(scale=0.05, seed=7))


@pytest.fixture(scope="module")
def tpch_workload_module(tpch_db_module):
    return generate_tpch_queries(
        tpch_db_module, queries_per_template=2, total_accesses=800.0,
        skew_exponent=1.1, seed=8,
    )


class TestConfigAndVariants:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScopeConfig(rows_per_file=0)
        with pytest.raises(ValueError):
            ScopeConfig(duration_months=0.0)
        with pytest.raises(ValueError):
            ScopeConfig(target_total_gb=-1.0)
        with pytest.raises(ValueError):
            ScopeConfig(latency_threshold_s=0.0)

    def test_paper_suite_has_eleven_rows(self):
        suite = paper_variant_suite()
        assert len(suite) == 11
        assert suite[0].name.startswith("Default")
        assert suite[-1].name == "SCOPe (Total cost focused)"
        full = [v for v in suite if v.use_partitioning and v.use_tiering and v.use_compression]
        assert len(full) == 4


class TestPipelinePreparation:
    def test_prepare_builds_families_and_merges(self, pipeline):
        assert len(pipeline.families) > 0
        assert pipeline.gpart_result.num_final <= len(pipeline.families)
        assert pipeline.size_scale > 0

    def test_target_volume_respected(self, pipeline):
        total = sum(split.total_size_gb for split in pipeline.table_files.values())
        assert total == pytest.approx(50.0, rel=1e-6)

    def test_run_before_prepare_raises(self, tpch_db_module, tpch_workload_module):
        raw = ScopePipeline(tpch_db_module.tables, tpch_workload_module)
        with pytest.raises(RuntimeError):
            raw.run_variant(paper_variant_suite()[0])

    def test_empty_tables_rejected(self, tpch_workload_module):
        with pytest.raises(ValueError):
            ScopePipeline({}, tpch_workload_module)


class TestVariantBehaviour:
    def test_default_variant_uses_single_tier_no_compression(self, pipeline):
        row = pipeline.run_variant(paper_variant_suite()[0])
        assert row.tier_counts and len(row.tier_counts) == 1
        assert row.decompression_cost == 0.0
        assert row.expected_decompression_latency_ms == 0.0

    def test_compression_only_variant_reduces_storage(self, pipeline):
        suite = paper_variant_suite()
        default = pipeline.run_variant(suite[0])
        compressed = pipeline.run_variant(suite[1])
        assert compressed.storage_cost < default.storage_cost
        assert compressed.decompression_cost > 0.0

    def test_tiering_variant_reduces_storage_cost(self, pipeline):
        suite = paper_variant_suite()
        default = pipeline.run_variant(suite[0])
        tiered = pipeline.run_variant(suite[2])
        assert tiered.storage_cost < default.storage_cost
        assert len(tiered.tier_counts) == 3

    def test_partitioning_reduces_read_cost(self, pipeline):
        suite = paper_variant_suite()
        default = pipeline.run_variant(suite[0])
        partitioned = pipeline.run_variant(suite[4])
        assert partitioned.read_cost <= default.read_cost + 1e-9
        assert partitioned.num_partitions >= default.num_partitions

    def test_latency_focused_variant_keeps_fast_reads(self, pipeline):
        suite = paper_variant_suite()
        latency_row = pipeline.run_variant(suite[7])  # SCOPe latency-focused
        total_row = pipeline.run_variant(suite[10])   # SCOPe total-cost focused
        assert latency_row.read_latency_s <= total_row.read_latency_s + 1e-9

    def test_scope_total_cost_is_lowest_of_suite(self, pipeline):
        """The headline claim: full SCOPe minimises total cost across variants."""
        rows = pipeline.run_suite()
        by_name = {row.variant: row for row in rows}
        best_scope = min(
            by_name["SCOPe (No capacity constraint)"].total_cost,
            by_name["SCOPe (Total cost focused)"].total_cost,
        )
        default_cost = by_name["Default (store on premium)"].total_cost
        assert best_scope < default_cost
        non_scope = [row for row in rows if not row.variant.startswith("SCOPe")]
        assert best_scope <= min(row.total_cost for row in non_scope) + 1e-9

    def test_gpart_improves_the_tiering_baseline(self, pipeline):
        """Applying G-PART before a baseline improves it (Section VII claim)."""
        rows = {row.variant: row for row in pipeline.run_suite()}
        assert (
            rows["Partitioning + Tiering"].total_cost
            <= rows["Multi-Tiering"].total_cost + 1e-9
        )

    def test_capacity_constrained_variant_respects_fractions(self, pipeline):
        row = pipeline.run_variant(
            ScopeVariant(
                name="capacity-test", use_partitioning=True, use_tiering=True,
                use_compression=False, apply_capacity=True,
            )
        )
        assert sum(row.tier_counts) == row.num_partitions

    def test_custom_weights_shift_the_placement(self, pipeline):
        storage_heavy = pipeline.run_variant(
            ScopeVariant(name="alpha-heavy", weights=CostWeights(alpha=10.0, beta=0.01, gamma=0.01))
        )
        read_heavy = pipeline.run_variant(
            ScopeVariant(name="beta-heavy", weights=CostWeights(alpha=0.01, beta=10.0, gamma=0.01))
        )
        assert storage_heavy.storage_cost <= read_heavy.storage_cost + 1e-9
        assert read_heavy.read_cost <= storage_heavy.read_cost + 1e-9

    def test_predicted_compression_mode_runs(self, tpch_db_module, tpch_workload_module):
        config = ScopeConfig(
            rows_per_file=150, target_total_gb=20.0, use_predicted_compression=True,
            schemes=("gzip", "snappy"),
        )
        pipeline = ScopePipeline(tpch_db_module.tables, tpch_workload_module, config).prepare()
        row = pipeline.run_variant(paper_variant_suite()[10])
        assert row.total_cost > 0.0


class TestEnterprisePipeline:
    def test_runs_on_enterprise_tables(self):
        tables = generate_enterprise_tables(seed=3, num_rows=(600, 400, 300))
        from repro.workloads.queries import QueryWorkload
        from repro.tabular import Predicate, Query
        import numpy as np

        rng = np.random.default_rng(5)
        queries, frequencies = [], []
        for index in range(30):
            threshold = int(rng.integers(0, 9000))
            queries.append(
                Query("events", (Predicate("int_0", ">=", threshold),), name=f"q{index}")
            )
            frequencies.append(float(rng.uniform(1, 50)))
        workload = QueryWorkload(queries=queries, frequencies=frequencies)
        config = ScopeConfig(rows_per_file=100, target_total_gb=1.5)
        pipeline = ScopePipeline(tables, workload, config).prepare()
        rows = pipeline.run_suite(paper_variant_suite()[:3])
        assert len(rows) == 3
        assert all(row.total_cost > 0 for row in rows)


class TestReportFormatting:
    def test_format_pipeline_table_contains_all_rows(self, pipeline):
        rows = pipeline.run_suite(paper_variant_suite()[:2])
        text = format_pipeline_table(rows, title="demo")
        assert "demo" in text
        assert "Default (store on premium)" in text
        assert "Ares" in text

    def test_pipeline_row_as_dict(self):
        row = PipelineRow(
            variant="x", other_method="-", uses_partitioning=True, uses_tiering=False,
            uses_compression=False, storage_cost=1.0, decompression_cost=0.0,
            read_cost=2.0, total_cost=3.0, read_latency_s=0.1,
            expected_decompression_latency_ms=0.0, tier_counts=[1], num_partitions=1,
        )
        data = row.as_dict()
        assert data["total_cost"] == 3.0 and data["P"] is True

    def test_format_matrix(self):
        text = format_matrix([[5, 1], [0, 7]], ["hot", "cool"], ["hot", "cool"], title="confusion")
        assert "confusion" in text and "hot" in text and "7" in text
