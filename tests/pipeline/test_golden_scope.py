"""Golden end-to-end regression tests: pinned headline numbers for SCOPe.

Every layer of the system (workload generation, file splitting, G-PART,
compression measurement, OPTASSIGN, the online engine) feeds these numbers;
a change anywhere that shifts a headline value past the tolerance fails here
even if every unit test still passes.  The golden values were produced by the
code at the time this test was committed — if a change *intentionally* moves
them (e.g. a pricing fix), re-derive and update the constants in the same
commit and say why.

Costs are pinned to a relative tolerance (floating-point summation order may
legitimately differ across numpy versions); integer histograms and counts
are pinned exactly.
"""

import numpy as np
import pytest

from repro.cloud import CompressionProfile, multi_cloud_catalog
from repro.core.pipeline import ScopeConfig, ScopePipeline, paper_variant_suite
from repro.engine import DriftTriggered, EngineConfig, OnlineTieringEngine, SeriesStream
from repro.workloads import (
    DriftSegment,
    TpchConfig,
    generate_drifting_reads,
    generate_slo_workload,
    generate_tpch,
    generate_tpch_queries,
)

#: Relative tolerance for pinned costs.  Tight enough to catch any real
#: arithmetic or pricing change (those shift results by >> 0.1%), loose
#: enough to absorb cross-platform float summation differences.
COST_RTOL = 1e-6

# -- golden values: SCOPe batch pipeline -------------------------------------
# TPC-H scale 0.05 (seed 7), 2 queries/template (seed 8), 150 rows/file,
# 50 GB target volume, 5.5-month horizon — the same fixture the behavioural
# pipeline tests use, with the two machine-dependent inputs pinned:
# decompression *timing* via fixed_decompression_s_per_gb, and compression
# *ratios* by restricting the schemes to the repo's pure-Python snappy/lz4
# codecs (gzip rides on zlib, whose compressed sizes vary across library
# builds, e.g. zlib-ng; the pure-Python codecs are bit-stable everywhere).
GOLDEN_SCHEMES = ("snappy", "lz4")
FIXED_DECOMPRESSION = {"snappy": 0.15, "lz4": 0.1}
PIPELINE_GOLDEN = {
    "Default (store on premium)": {
        "total_cost": 4194.8131687477435,
        "storage_cost": 4125.0,
        "read_cost": 69.8131687477435,
        "tier_counts": [8],
        "num_partitions": 8,
    },
    "Multi-Tiering": {
        "total_cost": 746.4653896565825,
        "storage_cost": 498.21469793222354,
        "read_cost": 248.25069172435906,
        "tier_counts": [0, 1, 7],
        "num_partitions": 8,
    },
    "SCOPe (No capacity constraint)": {
        "total_cost": 614.9438266067201,
        "storage_cost": 411.0655451145212,
        "read_cost": 202.3956110538189,
        "tier_counts": [2, 1, 5],
        "num_partitions": 8,
    },
    "SCOPe (Total cost focused)": {
        "total_cost": 755.7032345441428,
        "storage_cost": 386.2048854105135,
        "read_cost": 368.0156786952493,
        "tier_counts": [0, 2, 6],
        "num_partitions": 8,
    },
}

# -- golden values: online multi-cloud engine --------------------------------
ENGINE_GOLDEN = {
    "total_bill": 99011.68847629767,
    "reoptimizations": 4,
    "epochs": 18,
    "migration_cost": 791.5343696192299,
    "moved_gb": 4727.173594232899,
}


@pytest.fixture(scope="module")
def golden_pipeline():
    db = generate_tpch(TpchConfig(scale=0.05, seed=7))
    workload = generate_tpch_queries(
        db, queries_per_template=2, total_accesses=800.0, skew_exponent=1.1, seed=8
    )
    config = ScopeConfig(
        rows_per_file=150,
        target_total_gb=50.0,
        duration_months=5.5,
        schemes=GOLDEN_SCHEMES,
        fixed_decompression_s_per_gb=FIXED_DECOMPRESSION,
    )
    return ScopePipeline(db.tables, workload, config).prepare()


class TestPipelineGolden:
    @pytest.mark.parametrize("variant_name", sorted(PIPELINE_GOLDEN))
    def test_headline_numbers_pinned(self, golden_pipeline, variant_name):
        variant = next(
            v for v in paper_variant_suite() if v.name == variant_name
        )
        row = golden_pipeline.run_variant(variant)
        golden = PIPELINE_GOLDEN[variant_name]
        assert row.total_cost == pytest.approx(golden["total_cost"], rel=COST_RTOL)
        assert row.storage_cost == pytest.approx(golden["storage_cost"], rel=COST_RTOL)
        assert row.read_cost == pytest.approx(golden["read_cost"], rel=COST_RTOL)
        assert row.tier_counts == golden["tier_counts"]
        assert row.num_partitions == golden["num_partitions"]

    def test_cost_ordering_of_the_golden_rows(self, golden_pipeline):
        """The paper's qualitative claim, independent of exact numbers.

        The unconstrained SCOPe variant optimizes over a strict superset of
        Multi-Tiering's options, so its cost must be lower; the capacity-
        constrained variant may legitimately sit above it (and does, with the
        pure-Python scheme subset), so it is pinned but not ordered.
        """
        rows = {
            name: golden_pipeline.run_variant(
                next(v for v in paper_variant_suite() if v.name == name)
            )
            for name in PIPELINE_GOLDEN
        }
        assert (
            rows["SCOPe (No capacity constraint)"].total_cost
            < rows["Multi-Tiering"].total_cost
            < rows["Default (store on premium)"].total_cost
        )


def build_golden_engine() -> tuple[OnlineTieringEngine, SeriesStream]:
    """The fixed-seed 18-month multi-cloud engine scenario behind ENGINE_GOLDEN."""
    months = 18
    workload = generate_slo_workload(12, seed=5)
    rng = np.random.default_rng(6)
    profiles = {
        partition.name: {
            "gzip": CompressionProfile(
                "gzip",
                ratio=float(rng.uniform(2.5, 5.0)),
                decompression_s_per_gb=float(rng.uniform(0.8, 1.5)),
            ),
            "snappy": CompressionProfile(
                "snappy",
                ratio=float(rng.uniform(1.5, 2.5)),
                decompression_s_per_gb=float(rng.uniform(0.05, 0.2)),
            ),
        }
        for partition in workload.partitions
    }
    series = {}
    for index, partition in enumerate(workload.partitions):
        if index % 3 == 0:  # a third of the account goes cold after month 6
            segments = [DriftSegment("constant", 6), DriftSegment("inactive", months - 6)]
        else:
            segments = [DriftSegment("constant", months)]
        series[partition.name] = generate_drifting_reads(
            rng, segments, base_level=max(partition.predicted_accesses, 1.0)
        )
    engine = OnlineTieringEngine(
        workload.partitions,
        multi_cloud_catalog(),
        DriftTriggered(threshold=0.1, min_gap_months=2),
        EngineConfig(horizon_months=6.0, window_months=6),
        profiles=profiles,
        latency_slo_s=workload.latency_slo_s,
        provider_affinity=workload.provider_affinity or None,
    )
    return engine, SeriesStream(series)


class TestEngineGolden:
    def test_online_multi_cloud_run_pinned(self):
        engine, stream = build_golden_engine()
        report = engine.run(stream)
        assert report.num_epochs == ENGINE_GOLDEN["epochs"]
        assert report.num_reoptimizations == ENGINE_GOLDEN["reoptimizations"]
        assert report.total_bill == pytest.approx(
            ENGINE_GOLDEN["total_bill"], rel=COST_RTOL
        )
        assert report.total_migration_cost == pytest.approx(
            ENGINE_GOLDEN["migration_cost"], rel=COST_RTOL
        )
        assert report.total_moved_gb == pytest.approx(
            ENGINE_GOLDEN["moved_gb"], rel=COST_RTOL
        )
