"""Tests for DATAPART data structures and the overlap graph."""

import pytest

from repro.core.datapart import (
    FileUniverse,
    InitialPartition,
    Merge,
    MergeConstraints,
    build_overlap_graph,
    duplication_ratio,
    fractional_overlap,
    merge_statistics,
    partitions_from_query_families,
)
from repro.workloads import build_query_families


@pytest.fixture
def universe():
    return FileUniverse(
        records={"f1": 100, "f2": 200, "f3": 300, "f4": 400},
        size_gb={"f1": 1.0, "f2": 2.0, "f3": 3.0, "f4": 4.0},
    )


@pytest.fixture
def partitions():
    return [
        InitialPartition("p1", frozenset({"f1", "f2"}), frequency=10.0),
        InitialPartition("p2", frozenset({"f2", "f3"}), frequency=8.0),
        InitialPartition("p3", frozenset({"f4"}), frequency=1.0),
    ]


class TestFileUniverse:
    def test_records_and_sizes(self, universe):
        assert universe.records_of({"f1", "f3"}) == 400
        assert universe.size_gb_of({"f1", "f3"}) == pytest.approx(4.0)
        assert "f1" in universe and "missing" not in universe

    def test_duplicates_counted_once(self, universe):
        assert universe.records_of(["f1", "f1", "f2"]) == 300

    def test_unknown_file_raises(self, universe):
        with pytest.raises(KeyError):
            universe.records_of({"ghost"})

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            FileUniverse({})

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            FileUniverse({"f": -1})


class TestPartitionAndMerge:
    def test_span(self, universe, partitions):
        assert partitions[0].span(universe) == 300

    def test_merge_of_overlapping_partitions(self, universe, partitions):
        merge = Merge.of(partitions[:2], universe)
        assert merge.span == 600  # f1 + f2 + f3, f2 counted once
        assert merge.frequency == pytest.approx(18.0)
        assert merge.cost == pytest.approx(600 * 18.0)
        assert merge.members == ("p1", "p2")
        assert merge.name == "p1+p2"

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            InitialPartition("p", frozenset(), frequency=1.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            InitialPartition("p", frozenset({"f1"}), frequency=-1.0)

    def test_merge_of_empty_rejected(self, universe):
        with pytest.raises(ValueError):
            Merge.of([], universe)


class TestMergeConstraints:
    def test_ratio_rule(self):
        constraints = MergeConstraints(frequency_ratio=4.0)
        assert constraints.frequencies_compatible(10.0, 3.0)
        assert not constraints.frequencies_compatible(10.0, 1.0)

    def test_difference_rule_covers_zero_frequencies(self):
        constraints = MergeConstraints(frequency_ratio=2.0, frequency_diff=5.0)
        assert constraints.frequencies_compatible(0.0, 4.0)
        assert not constraints.frequencies_compatible(0.0, 50.0)

    def test_zero_frequency_incompatible_without_diff_allowance(self):
        constraints = MergeConstraints(frequency_ratio=100.0, frequency_diff=0.0)
        assert not constraints.frequencies_compatible(0.0, 1.0)
        assert constraints.frequencies_compatible(0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MergeConstraints(frequency_ratio=0.5)
        with pytest.raises(ValueError):
            MergeConstraints(span_threshold=0)
        with pytest.raises(ValueError):
            MergeConstraints(cost_threshold=-1.0)


class TestOverlapGraph:
    def test_fractional_overlap_values(self, universe, partitions):
        # p1 and p2 share f2 (200 records); union spans 600.
        assert fractional_overlap(partitions[0], partitions[1], universe) == pytest.approx(200 / 600)
        assert fractional_overlap(partitions[0], partitions[2], universe) == 0.0
        assert fractional_overlap(partitions[0], partitions[0], universe) == pytest.approx(1.0)

    def test_graph_has_edges_only_for_overlaps(self, universe, partitions):
        graph = build_overlap_graph(partitions, universe)
        assert graph.number_of_nodes() == 3
        assert graph.has_edge("p1", "p2")
        assert not graph.has_edge("p1", "p3")
        assert graph["p1"]["p2"]["weight"] == pytest.approx(200 / 600)

    def test_graph_feasibility_flag(self, universe, partitions):
        constraints = MergeConstraints(frequency_ratio=1.1)
        graph = build_overlap_graph(partitions, universe, constraints)
        assert graph["p1"]["p2"]["feasible"] is False

    def test_duplicate_names_rejected(self, universe):
        duplicated = [
            InitialPartition("p", frozenset({"f1"}), 1.0),
            InitialPartition("p", frozenset({"f2"}), 1.0),
        ]
        with pytest.raises(ValueError):
            build_overlap_graph(duplicated, universe)


class TestDerivedMetrics:
    def test_duplication_ratio_zero_for_disjoint_merges(self, universe, partitions):
        merges = [Merge.of([partitions[0]], universe), Merge.of([partitions[2]], universe)]
        assert duplication_ratio(merges, universe) == pytest.approx(0.0)

    def test_duplication_ratio_positive_for_overlapping_merges(self, universe, partitions):
        merges = [Merge.of([partitions[0]], universe), Merge.of([partitions[1]], universe)]
        # f2 is stored twice: 200 duplicated records out of 800 stored.
        assert duplication_ratio(merges, universe) == pytest.approx(200 / 800)

    def test_duplication_ratio_empty(self, universe):
        assert duplication_ratio([], universe) == 0.0

    def test_merge_statistics(self, universe, partitions):
        merges = [Merge.of(partitions[:2], universe), Merge.of([partitions[2]], universe)]
        stats = merge_statistics(merges, universe)
        assert stats["num_partitions"] == 2.0
        assert stats["total_span"] == 1000.0
        assert stats["distinct_records"] == 1000.0
        assert merge_statistics([], universe)["num_partitions"] == 0.0


class TestFromQueryFamilies:
    def test_conversion_preserves_footprints_and_frequencies(
        self, tpch_table_files, tpch_workload
    ):
        families = build_query_families(tpch_table_files, tpch_workload)
        partitions, universe = partitions_from_query_families(families)
        assert len(partitions) == len(families)
        for partition, family in zip(partitions, families):
            assert partition.file_ids == family.file_ids
            assert partition.frequency == pytest.approx(family.frequency)
            assert partition.span(universe) > 0

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError):
            partitions_from_query_families([])
