"""Tests for G-PART, the MERGEPARTITIONS ILP and the ordered (time-series) DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datapart import (
    FileUniverse,
    InitialPartition,
    Merge,
    MergeConstraints,
    MergeIlpInfeasibleError,
    duplication_ratio,
    enumerate_candidate_merges,
    gpart,
    solve_merge_ilp,
    solve_ordered_approx,
    solve_ordered_dp,
)


@pytest.fixture
def universe():
    return FileUniverse({f"f{i}": 100 for i in range(12)})


def partition(name, files, frequency, universe=None):
    return InitialPartition(name, frozenset(files), frequency)


class TestGPart:
    def test_identical_footprints_merge(self, universe):
        partitions = [
            partition("a", {"f0", "f1"}, 10.0),
            partition("b", {"f0", "f1"}, 12.0),
            partition("c", {"f5"}, 11.0),
        ]
        result = gpart(partitions, universe, MergeConstraints(frequency_ratio=2.0))
        merged_members = {merge.members for merge in result.merges}
        assert ("a", "b") in merged_members or ("b", "a") in merged_members
        assert result.num_initial == 3
        assert result.num_merge_operations >= 1

    def test_every_initial_partition_is_covered(self, universe):
        partitions = [
            partition("a", {"f0", "f1"}, 5.0),
            partition("b", {"f1", "f2"}, 6.0),
            partition("c", {"f3"}, 100.0),
            partition("d", {"f9"}, 0.5),
        ]
        result = gpart(partitions, universe)
        covered = set()
        for merge in result.merges:
            covered.update(merge.members)
        assert covered == {"a", "b", "c", "d"}

    def test_highest_overlap_merged_first(self, universe):
        partitions = [
            partition("near1", {"f0", "f1", "f2"}, 10.0),
            partition("near2", {"f0", "f1", "f3"}, 10.0),
            partition("far", {"f2", "f9"}, 10.0),
        ]
        result = gpart(partitions, universe)
        for merge in result.merges:
            if "near1" in merge.members:
                assert "near2" in merge.members
                break
        else:
            pytest.fail("near1 not covered")

    def test_frequency_constraint_blocks_merging(self, universe):
        partitions = [
            partition("hot", {"f0", "f1"}, 1000.0),
            partition("cold", {"f0", "f1"}, 1.0),
        ]
        constrained = gpart(partitions, universe, MergeConstraints(frequency_ratio=2.0))
        assert constrained.num_final == 2
        permissive = gpart(partitions, universe, MergeConstraints(frequency_ratio=10_000.0))
        assert permissive.num_final == 1

    def test_span_threshold_stops_growth(self, universe):
        partitions = [
            partition("a", {"f0", "f1"}, 10.0),
            partition("b", {"f1", "f2"}, 10.0),
            partition("c", {"f2", "f3"}, 10.0),
            partition("d", {"f3", "f4"}, 10.0),
        ]
        unlimited = gpart(partitions, universe, MergeConstraints(frequency_ratio=4.0))
        capped = gpart(
            partitions, universe,
            MergeConstraints(frequency_ratio=4.0, span_threshold=300),
        )
        assert max(merge.span for merge in capped.merges) <= max(
            merge.span for merge in unlimited.merges
        )
        assert capped.num_final >= unlimited.num_final

    def test_gpart_reduces_span_versus_no_merging(self, universe):
        partitions = [
            partition("a", {"f0", "f1", "f2"}, 10.0),
            partition("b", {"f1", "f2", "f3"}, 11.0),
            partition("c", {"f2", "f3", "f4"}, 12.0),
        ]
        no_merge_span = sum(p.span(universe) for p in partitions)
        result = gpart(partitions, universe)
        assert result.total_span < no_merge_span

    def test_gpart_tradeoff_between_extremes(self, universe):
        """Fig. 7 shape: G-PART sits between no-merging and merge-everything."""
        rng = np.random.default_rng(3)
        partitions = []
        for index in range(8):
            files = {f"f{i}" for i in rng.choice(12, size=4, replace=False)}
            partitions.append(partition(f"q{index}", files, float(rng.uniform(5, 15))))
        result = gpart(partitions, universe, MergeConstraints(frequency_ratio=3.0))
        no_merge = [Merge.of([p], universe) for p in partitions]
        merge_all = [Merge.of(partitions, universe)]
        dup_none = duplication_ratio(no_merge, universe)
        dup_gpart = duplication_ratio(result.merges, universe)
        dup_all = duplication_ratio(merge_all, universe)
        cost_none = sum(m.cost for m in no_merge)
        cost_gpart = result.total_cost
        cost_all = sum(m.cost for m in merge_all)
        assert dup_all <= dup_gpart <= dup_none + 1e-9
        assert cost_none <= cost_gpart + 1e-9 <= cost_all + 1e-9

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            gpart([], universe)
        duplicated = [partition("p", {"f0"}, 1.0), partition("p", {"f1"}, 1.0)]
        with pytest.raises(ValueError):
            gpart(duplicated, universe)


class TestMergeIlp:
    def test_exhaustive_ilp_is_at_least_as_good_as_gpart(self, universe):
        partitions = [
            partition("a", {"f0", "f1"}, 4.0),
            partition("b", {"f1", "f2"}, 5.0),
            partition("c", {"f2", "f3"}, 6.0),
            partition("d", {"f7"}, 5.0),
        ]
        constraints = MergeConstraints(frequency_ratio=3.0)
        gpart_result = gpart(partitions, universe, constraints)
        candidates = enumerate_candidate_merges(
            partitions, universe, constraints, max_merge_size=len(partitions),
            extra_merges=gpart_result.merges,
        )
        ilp_result = solve_merge_ilp(partitions, candidates, cost_threshold=None)
        assert ilp_result.total_span <= gpart_result.total_span + 1e-9

    def test_cost_threshold_is_respected(self, universe):
        partitions = [
            partition("a", {"f0", "f1"}, 4.0),
            partition("b", {"f1", "f2"}, 5.0),
        ]
        candidates = enumerate_candidate_merges(partitions, universe, max_merge_size=2)
        generous = solve_merge_ilp(partitions, candidates, cost_threshold=10_000.0)
        assert generous.total_cost <= 10_000.0
        singleton_cost = sum(Merge.of([p], universe).cost for p in partitions)
        tight = solve_merge_ilp(partitions, candidates, cost_threshold=singleton_cost)
        assert tight.total_cost <= singleton_cost + 1e-9

    def test_infeasible_budget_raises(self, universe):
        partitions = [partition("a", {"f0"}, 10.0)]
        candidates = enumerate_candidate_merges(partitions, universe)
        with pytest.raises(MergeIlpInfeasibleError):
            solve_merge_ilp(partitions, candidates, cost_threshold=1.0)

    def test_candidates_must_cover_all_partitions(self, universe):
        partitions = [partition("a", {"f0"}, 1.0), partition("b", {"f1"}, 1.0)]
        only_a = [Merge.of([partitions[0]], universe)]
        with pytest.raises(MergeIlpInfeasibleError):
            solve_merge_ilp(partitions, only_a, cost_threshold=None)

    def test_candidate_enumeration_respects_feasibility(self, universe):
        partitions = [
            partition("hot", {"f0", "f1"}, 1000.0),
            partition("cold", {"f1", "f2"}, 1.0),
        ]
        candidates = enumerate_candidate_merges(
            partitions, universe, MergeConstraints(frequency_ratio=2.0), max_merge_size=2
        )
        assert all(len(merge.members) == 1 for merge in candidates)

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            enumerate_candidate_merges([], universe)
        with pytest.raises(ValueError):
            solve_merge_ilp([], [], cost_threshold=None)


class TestOrderedDp:
    def ordered_partitions(self):
        # Time-ordered query footprints over consecutive, overlapping file windows.
        return [
            partition("t0", {"f0", "f1"}, 4.0),
            partition("t1", {"f1", "f2"}, 4.0),
            partition("t2", {"f2", "f3"}, 4.0),
            partition("t3", {"f3", "f4"}, 4.0),
        ]

    def test_unlimited_budget_merges_everything(self, universe):
        partitions = self.ordered_partitions()
        result = solve_ordered_dp(partitions, universe, cost_threshold=10 ** 9, cost_unit=1.0)
        assert result.num_final == 1
        assert result.total_span == 500  # f0..f4 stored once

    def test_tight_budget_keeps_singletons(self, universe):
        partitions = self.ordered_partitions()
        singleton_cost = sum(Merge.of([p], universe).cost for p in partitions)
        result = solve_ordered_dp(
            partitions, universe, cost_threshold=singleton_cost, cost_unit=1.0
        )
        assert result.total_cost <= singleton_cost + 1e-9
        assert result.num_final >= 1

    def test_budget_interpolates_between_extremes(self, universe):
        partitions = self.ordered_partitions()
        all_merged = solve_ordered_dp(partitions, universe, 10 ** 9).total_span
        singleton_cost = sum(Merge.of([p], universe).cost for p in partitions)
        tight = solve_ordered_dp(partitions, universe, singleton_cost)
        middle = solve_ordered_dp(partitions, universe, singleton_cost * 1.5)
        assert all_merged <= middle.total_span <= tight.total_span

    def test_infeasible_budget_raises(self, universe):
        partitions = self.ordered_partitions()
        with pytest.raises(ValueError):
            solve_ordered_dp(partitions, universe, cost_threshold=10.0, cost_unit=1.0)

    def test_dp_segmentation_covers_every_partition_once(self, universe):
        partitions = self.ordered_partitions()
        result = solve_ordered_dp(partitions, universe, cost_threshold=10 ** 6)
        members = [name for merge in result.merges for name in merge.members]
        assert members == [p.name for p in partitions]

    def test_dp_is_optimal_versus_exhaustive_ilp(self, universe):
        """Theorem 5 cross-check: the DP matches the exact ILP on contiguous candidates."""
        partitions = self.ordered_partitions()
        singleton_cost = sum(Merge.of([p], universe).cost for p in partitions)
        budget = singleton_cost * 1.4
        # Candidate set = every contiguous run (what the ordered DP optimises over).
        candidates = []
        for start in range(len(partitions)):
            for stop in range(start + 1, len(partitions) + 1):
                candidates.append(Merge.of(partitions[start:stop], universe))
        ilp = solve_merge_ilp(partitions, candidates, cost_threshold=budget)
        dp = solve_ordered_dp(partitions, universe, cost_threshold=budget, cost_unit=1.0)
        assert dp.total_span == pytest.approx(ilp.total_span)

    def test_approximation_space_never_worse_than_exact(self, universe):
        partitions = self.ordered_partitions()
        singleton_cost = sum(Merge.of([p], universe).cost for p in partitions)
        budget = singleton_cost * 1.3
        exact = solve_ordered_dp(partitions, universe, budget, cost_unit=1.0)
        approx = solve_ordered_approx(partitions, universe, budget, epsilon=1.0 / len(partitions))
        n = len(partitions)
        assert approx.total_span <= exact.total_span + 1e-9
        assert approx.total_cost <= budget * (1 + n * (1.0 / n)) + 1e-9

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            solve_ordered_dp([], universe, 10.0)
        with pytest.raises(ValueError):
            solve_ordered_dp(self.ordered_partitions(), universe, -1.0)
        with pytest.raises(ValueError):
            solve_ordered_dp(self.ordered_partitions(), universe, 10.0, cost_unit=0.0)
        with pytest.raises(ValueError):
            solve_ordered_approx(self.ordered_partitions(), universe, 0.0)
        with pytest.raises(ValueError):
            solve_ordered_approx(self.ordered_partitions(), universe, 10.0, epsilon=0.0)


@settings(max_examples=20, deadline=None)
@given(
    num_partitions=st.integers(min_value=1, max_value=6),
    num_files=st.integers(min_value=3, max_value=10),
    seed=st.integers(min_value=0, max_value=500),
)
def test_gpart_coverage_and_span_bounds_property(num_partitions, num_files, seed):
    """Property: G-PART always covers every partition and never stores more
    records than the no-merge solution nor fewer than the distinct records."""
    rng = np.random.default_rng(seed)
    universe = FileUniverse({f"f{i}": int(rng.integers(10, 200)) for i in range(num_files)})
    partitions = []
    for index in range(num_partitions):
        size = int(rng.integers(1, num_files + 1))
        files = {f"f{i}" for i in rng.choice(num_files, size=size, replace=False)}
        partitions.append(InitialPartition(f"p{index}", frozenset(files), float(rng.uniform(0.5, 20))))
    result = gpart(partitions, universe, MergeConstraints(frequency_ratio=6.0))
    covered = set()
    for merge in result.merges:
        covered.update(merge.members)
    assert covered == {p.name for p in partitions}
    no_merge_span = sum(p.span(universe) for p in partitions)
    distinct_span = universe.records_of(set().union(*[p.file_ids for p in partitions]))
    assert distinct_span - 1e-9 <= result.total_span <= no_merge_span + 1e-9
