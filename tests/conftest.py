"""Shared fixtures for the test suite.

Expensive artefacts (the synthetic TPC-H database, query workloads, the
enterprise catalog) are session-scoped so the several hundred tests that use
them pay the generation cost once.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cloud import CostModel, DataPartition, azure_tier_catalog
from repro.tabular import random_table
from repro.workloads import (
    EnterpriseCatalogConfig,
    TpchConfig,
    generate_enterprise_catalog,
    generate_tpch,
    generate_tpch_queries,
    split_table_into_files,
)


def _numpy_global_state_equal(before, after) -> bool:
    """Compare two ``np.random.get_state()`` tuples (the keys array needs
    element-wise comparison)."""
    if len(before) != len(after):
        return False
    return all(
        np.array_equal(b, a) if isinstance(b, np.ndarray) else b == a
        for b, a in zip(before, after)
    )


@pytest.fixture(autouse=True)
def _global_rng_audit(request):
    """Determinism audit: no test may leak global RNG state.

    Every generator in this repo is seeded and local (``default_rng``); a
    test that advances the *global* ``numpy.random`` or ``random`` state is
    either depending on hidden shared state or silently reseeding it for
    whoever runs next — both make failures order-dependent.  The fixture
    snapshots both global states, restores them unconditionally, and fails
    the leaking test.  Hypothesis manages the stdlib ``random`` state itself
    (it seeds per example and restores afterwards), so hypothesis-driven
    tests are exempt from the stdlib check but still audited for numpy.
    """
    numpy_before = np.random.get_state()
    python_before = random.getstate()
    yield
    numpy_leaked = not _numpy_global_state_equal(numpy_before, np.random.get_state())
    python_leaked = random.getstate() != python_before
    np.random.set_state(numpy_before)
    random.setstate(python_before)
    leaked = []
    if numpy_leaked:
        leaked.append("numpy.random")
    is_hypothesis = getattr(request.function, "is_hypothesis_test", False)
    if python_leaked and not is_hypothesis:
        leaked.append("random")
    if leaked:
        pytest.fail(
            f"test leaked global RNG state ({', '.join(leaked)}); seed a "
            "local np.random.default_rng / random.Random instead of using "
            "the module-level generators"
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tpch_db():
    """A small TPC-H-like database (scale 0.05, uniform values)."""
    return generate_tpch(TpchConfig(scale=0.05, seed=7))


@pytest.fixture(scope="session")
def tpch_workload(tpch_db):
    """A Zipf-skewed workload of 2 queries per template over the small database."""
    return generate_tpch_queries(
        tpch_db, queries_per_template=2, total_accesses=500.0, skew_exponent=1.1, seed=8
    )


@pytest.fixture(scope="session")
def tpch_table_files(tpch_db):
    """File splits (100 rows per file) for every table of the small database."""
    return {
        name: split_table_into_files(tpch_db[name], rows_per_file=100)
        for name in tpch_db.table_names
    }


@pytest.fixture(scope="session")
def enterprise_catalog():
    """A small enterprise catalog (80 datasets, 12 months of history)."""
    config = EnterpriseCatalogConfig(
        num_datasets=80,
        total_size_gb=50_000.0,
        history_months=12,
        seed=21,
        total_monthly_accesses=5_000.0,
    )
    return generate_enterprise_catalog(config)


@pytest.fixture(scope="session")
def small_table():
    """A 400-row mixed-type table used by compression and feature tests."""
    generator = np.random.default_rng(99)
    return random_table(generator, 400, name="small", categorical_cardinality=16)


@pytest.fixture
def hotcool_cost_model() -> CostModel:
    """Hot/cool cost model over a 6-month horizon (enterprise experiments)."""
    catalog = azure_tier_catalog(include_archive=False, include_premium=False)
    return CostModel(catalog, duration_months=6.0)


@pytest.fixture
def full_cost_model() -> CostModel:
    """Premium/hot/cool/archive cost model over the paper's 5.5-month horizon."""
    catalog = azure_tier_catalog()
    return CostModel(catalog, duration_months=5.5)


@pytest.fixture
def sample_partitions() -> list[DataPartition]:
    """A handful of partitions with diverse sizes, access counts and SLAs."""
    return [
        DataPartition("hot_small", size_gb=5.0, predicted_accesses=500.0, latency_threshold_s=1.0),
        DataPartition("hot_large", size_gb=500.0, predicted_accesses=200.0, latency_threshold_s=1.0),
        DataPartition("warm", size_gb=50.0, predicted_accesses=10.0, latency_threshold_s=10.0),
        DataPartition("cold_large", size_gb=2000.0, predicted_accesses=0.5, latency_threshold_s=7200.0),
        DataPartition("frozen", size_gb=800.0, predicted_accesses=0.0, latency_threshold_s=7200.0),
    ]
