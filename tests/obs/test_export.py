"""Exporters: JSONL round trips, Prometheus text format, summary rendering."""

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    ObsSnapshot,
    SpanRecord,
    Tracer,
    parse_jsonl,
    phase_totals,
    render_span_tree,
    render_summary,
    render_table,
    snapshot,
    span_tree,
    to_jsonl,
    to_prometheus,
)


def build_snapshot() -> ObsSnapshot:
    """A snapshot exercising every record shape the exporters handle."""
    tracer = Tracer()
    with tracer.span("engine.epoch", epoch=3):
        with tracer.span("engine.solve", mode="drift"):
            pass
        with pytest.raises(ValueError):
            with tracer.span("engine.migrate"):
                raise ValueError("tier full")
    registry = MetricsRegistry()
    registry.counter("migration.moves", tenant="hot").add(4)
    registry.gauge("fleet.pool.utilization", pool="perf").set(0.8125)
    histogram = registry.histogram("solve.latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 5.0):
        histogram.observe(value)
    snap = snapshot(tracer, registry)
    snap.spans[1].memory_peak_kb = 123.5  # exercise the optional field
    return snap


class TestJsonl:
    def test_round_trip_is_byte_exact(self):
        snap = build_snapshot()
        text = to_jsonl(snap)
        assert to_jsonl(parse_jsonl(text)) == text

    def test_round_trip_preserves_structure(self):
        snap = build_snapshot()
        parsed = parse_jsonl(to_jsonl(snap))
        assert [r.name for r in parsed.spans] == [r.name for r in snap.spans]
        assert [r.parent_id for r in parsed.spans] == [
            r.parent_id for r in snap.spans
        ]
        assert parsed.spans[1].memory_peak_kb == 123.5
        assert parsed.spans[2].error == "ValueError: tier full"
        # Samples come out sorted by metric name (collect() order).
        assert [s.kind for s in parsed.metrics] == ["gauge", "counter", "histogram"]
        [histogram] = [s for s in parsed.metrics if s.kind == "histogram"]
        assert histogram.edges == [0.01, 0.1, 1.0]
        assert histogram.counts == [1, 2, 0, 1]
        # The parsed span forest is the same tree.
        original = span_tree(snap.spans)
        recovered = span_tree(parsed.spans)
        assert [root.name for root, _ in recovered] == [
            root.name for root, _ in original
        ]

    def test_empty_snapshot(self):
        assert to_jsonl(ObsSnapshot()) == ""
        parsed = parse_jsonl("")
        assert parsed.spans == [] and parsed.metrics == []

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            parse_jsonl("{nope")
        with pytest.raises(ValueError, match="unknown record type"):
            parse_jsonl('{"type": "mystery"}')

    def test_blank_lines_ignored(self):
        snap = build_snapshot()
        text = to_jsonl(snap)
        padded = "\n" + text.replace("\n", "\n\n")
        assert to_jsonl(parse_jsonl(padded)) == text


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(build_snapshot())
        assert '# TYPE migration_moves counter' in text
        assert 'migration_moves{tenant="hot"} 4.0' in text
        assert 'fleet_pool_utilization{pool="perf"} 0.8125' in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(build_snapshot())
        assert 'solve_latency_bucket{le="0.01"} 1' in text
        assert 'solve_latency_bucket{le="0.1"} 3' in text
        assert 'solve_latency_bucket{le="1.0"} 3' in text
        assert 'solve_latency_bucket{le="+Inf"} 4' in text
        assert "solve_latency_sum 5.105" in text
        assert "solve_latency_count 4" in text

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("9weird.name-with spaces").add()
        text = to_prometheus(snapshot(metrics=registry))
        assert "_9weird_name_with_spaces 1.0" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a\\b"c\nd').add()
        text = to_prometheus(snapshot(metrics=registry))
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_type_header_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("moves", tenant="a").add()
        registry.counter("moves", tenant="b").add()
        text = to_prometheus(snapshot(metrics=registry))
        assert text.count("# TYPE moves counter") == 1


class TestAggregation:
    def test_phase_totals(self):
        spans = [
            SpanRecord(0, None, "solve", 0.0, 0.2),
            SpanRecord(1, 0, "greedy", 0.0, 0.15),
            SpanRecord(2, None, "solve", 1.0, 0.4),
        ]
        totals = phase_totals(spans)
        assert totals["solve"]["count"] == 2
        assert totals["solve"]["total_s"] == pytest.approx(0.6)
        assert totals["solve"]["max_s"] == pytest.approx(0.4)
        assert totals["solve"]["mean_s"] == pytest.approx(0.3)
        assert totals["greedy"]["count"] == 1

    def test_span_tree_promotes_orphans(self):
        spans = [
            SpanRecord(5, 99, "orphan", 0.0, 0.1),  # parent never recorded
            SpanRecord(6, None, "root", 0.0, 0.1),
            SpanRecord(7, 6, "child", 0.0, 0.1),
        ]
        roots = span_tree(spans)
        assert [record.name for record, _ in roots] == ["orphan", "root"]
        assert [record.name for record, _ in roots[1][1]] == ["child"]


class TestRendering:
    def test_render_table_alignment(self):
        table = render_table(("name", "ms"), [("greedy", "1.5"), ("repair", "12.0")])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].endswith(" 1.5")
        assert lines[3].endswith("12.0")

    def test_render_span_tree_indents_children(self):
        snap = build_snapshot()
        rendered = render_span_tree(snap.spans)
        lines = rendered.splitlines()
        assert lines[0].startswith("engine.epoch")
        assert lines[1].startswith("  engine.solve")
        assert "ERROR(ValueError: tier full)" in lines[2]
        assert "peak=" in lines[1] or "peak=" in rendered

    def test_render_summary_sections(self):
        summary = render_summary(build_snapshot())
        assert "phase timings" in summary
        assert "metrics" in summary
        assert "histograms" in summary
        assert "engine.epoch" in summary
        assert "fleet.pool.utilization{pool=perf}" in summary

    def test_render_summary_top_limits_phases(self):
        summary = render_summary(build_snapshot(), top=1)
        # Only the slowest phase row survives; epoch encloses the others.
        assert "engine.epoch" in summary
        assert "engine.solve" not in summary.split("metrics")[0]

    def test_module_level_convenience_exports(self):
        # The public surface used throughout examples and benchmarks.
        for name in ("snapshot", "to_jsonl", "parse_jsonl", "to_prometheus",
                     "phase_totals", "render_summary", "observed"):
            assert hasattr(obs, name)
