"""Metrics registry: kinds, label identity, histogram edges, cardinality."""

import threading

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS_S,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
    NOOP_METRICS,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.reoptimizations")
        counter.add()
        counter.add(2.5)
        counter.inc()
        assert counter.value == 4.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="only go up"):
            counter.add(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("engine.window_fill")
        gauge.set(0.5)
        gauge.add(-0.25)
        assert gauge.value == 0.25

    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("moves", tenant="hot", pool="perf")
        b = registry.counter("moves", pool="perf", tenant="hot")  # order-free
        assert a is b
        registry.counter("moves", tenant="cold").add(3)
        assert len(registry) == 2

    def test_kind_is_bound_to_name(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge("x")
        assert registry.kind_of("x") == "counter"
        assert registry.kind_of("unknown") is None


class TestHistogram:
    def test_edges_are_upper_inclusive(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            histogram.observe(value)
        # (<=1.0): 0.5, 1.0 | (1.0, 2.0]: 1.5, 2.0 | +Inf overflow: 99.0
        assert histogram.counts == [2, 2, 1]
        assert histogram.cumulative_counts() == [2, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(104.0)
        assert histogram.mean == pytest.approx(104.0 / 5)

    def test_empty_histogram(self):
        histogram = Histogram((1.0,))
        assert histogram.mean == 0.0
        assert histogram.cumulative_counts() == [0, 0]

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((1.0, 1.0))

    def test_registry_default_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.edges == DEFAULT_TIME_BUCKETS_S

    def test_registry_rejects_conflicting_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="already exists with edges"):
            registry.histogram("latency", buckets=(0.5, 5.0))
        # Omitting buckets returns the existing series unchanged.
        assert registry.histogram("latency").edges == (0.1, 1.0)


class TestCardinality:
    def test_label_cardinality_guard(self):
        registry = MetricsRegistry(max_label_sets=3)
        for index in range(3):
            registry.counter("moves", tenant=f"t{index}")
        with pytest.raises(LabelCardinalityError, match="unbounded label"):
            registry.counter("moves", tenant="t3")
        # Other names are unaffected; existing series stay reachable.
        registry.counter("other")
        assert registry.counter("moves", tenant="t0").value == 0.0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_sets=0)


class TestRegistry:
    def test_collect_is_sorted_and_reset_clears(self):
        registry = MetricsRegistry()
        registry.gauge("b.gauge", pool="z").set(1.0)
        registry.gauge("b.gauge", pool="a").set(2.0)
        registry.counter("a.counter").add(5)
        collected = [(name, labels) for name, labels, _ in registry.collect()]
        assert collected == [
            ("a.counter", {}),
            ("b.gauge", {"pool": "a"}),
            ("b.gauge", {"pool": "z"}),
        ]
        registry.reset()
        assert len(registry) == 0
        # A reset registry may rebind a name to a different kind.
        registry.gauge("a.counter")

    def test_thread_safe_series_creation(self):
        registry = MetricsRegistry(max_label_sets=256)
        errors = []

        def hammer(worker: int):
            try:
                for index in range(50):
                    registry.counter("moves", shard=index % 8).add()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(registry) == 8
        total = sum(
            instrument.value for _, _, instrument in registry.collect()
        )
        assert total == 8 * 50


class TestNoop:
    def test_noop_registry_records_nothing(self):
        NOOP_METRICS.counter("x", tenant="hot").add(5)
        NOOP_METRICS.gauge("y").set(3)
        NOOP_METRICS.histogram("z").observe(1.0)
        assert len(NOOP_METRICS) == 0
        assert list(NOOP_METRICS.collect()) == []
        assert NOOP_METRICS.enabled is False
        NOOP_METRICS.reset()  # no-op, must not raise
