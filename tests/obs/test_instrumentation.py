"""End-to-end instrumentation: spans/metrics fire, and never change bills.

The contract the whole subsystem hangs on: observability is *read-only*.
Running the exact same engine/fleet workload with tracing enabled must
produce the bit-identical bill, placements and reoptimization count as the
disabled run — telemetry never feeds back into decisions.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.cloud import (
    CapacityPool,
    CompressionProfile,
    CostModel,
    DataPartition,
    PoolSet,
    azure_tier_catalog,
    multi_cloud_catalog,
)
from repro.core.optassign import DeltaSolver, OptAssignProblem, solve_optassign
from repro.engine import (
    DriftTriggered,
    EngineConfig,
    OnlineTieringEngine,
    PeriodicReoptimize,
    SeriesStream,
)
from repro.fleet import FleetConfig, FleetScheduler, TenantSpec

MONTHS = 8


def build_workload(num_partitions: int = 12):
    rng = np.random.default_rng(23)
    partitions = []
    series = {}
    for index in range(num_partitions):
        name = f"p{index:02d}"
        hot_half = [float(rng.integers(50, 120)) for _ in range(MONTHS // 2)]
        cold_half = [0.0] * (MONTHS - MONTHS // 2)
        flips = index % 2 == 0
        series[name] = hot_half + cold_half if flips else cold_half + hot_half
        partitions.append(
            DataPartition(
                name,
                size_gb=100.0 + 10.0 * index,
                predicted_accesses=series[name][0],
                latency_threshold_s=7200.0,
                current_tier=0,
            )
        )
    return partitions, series


def run_engine():
    partitions, series = build_workload()
    engine = OnlineTieringEngine(
        partitions,
        azure_tier_catalog(include_premium=False),
        DriftTriggered(threshold=0.4),
        EngineConfig(horizon_months=6.0, window_months=4),
    )
    return engine.run(SeriesStream(series, num_epochs=MONTHS))


class TestNoopFastPath:
    def test_disabled_run_records_nothing(self):
        report = run_engine()
        assert report.total_bill > 0
        assert obs.get_tracer().records() == []
        assert len(obs.get_metrics()) == 0

    def test_enabled_run_is_bill_identical(self):
        baseline = run_engine()
        with obs.observed():
            traced = run_engine()
        assert traced.total_bill == baseline.total_bill
        assert traced.num_reoptimizations == baseline.num_reoptimizations
        assert [record.epoch for record in traced.records] == [
            record.epoch for record in baseline.records
        ]
        assert [record.bill_total for record in traced.records] == [
            record.bill_total for record in baseline.records
        ]

    def test_noop_overhead_is_allocation_free_per_site(self):
        # The disabled singletons hand back shared objects, so the
        # instrumented hot loops never allocate when observability is off.
        tracer = obs.get_tracer()
        assert tracer.span("a") is tracer.span("b")
        metrics = obs.get_metrics()
        assert metrics.counter("a") is metrics.counter("b", label="x")


class TestEngineSpans:
    def test_epoch_span_tree_covers_engine_phases(self):
        with obs.observed() as run:
            report = run_engine()
        names = {record.name for record in run.tracer.records()}
        assert {
            "engine.epoch",
            "engine.ingest",
            "engine.feature_store",
            "engine.policy_decision",
            "engine.settle",
        } <= names
        # The workload drifts hard at the midpoint, so at least one epoch
        # re-optimizes and the solve/migrate pipeline appears.
        assert report.num_reoptimizations > 0
        assert {
            "engine.build_problem",
            "engine.forecast",
            "engine.solve",
            "engine.migrate",
            "optassign.solve",
            "optassign.batch_tensors",
            "optassign.greedy",
        } <= names
        epochs = [r for r in run.tracer.records() if r.name == "engine.epoch"]
        assert len(epochs) == MONTHS
        # Every epoch span carries its epoch index and nests the settle.
        settle_parents = {
            r.parent_id for r in run.tracer.records() if r.name == "engine.settle"
        }
        assert settle_parents <= {r.span_id for r in epochs}

    def test_engine_counters_and_gauges(self):
        with obs.observed() as run:
            report = run_engine()
        samples = {
            (s.name, tuple(sorted(s.labels.items()))): s
            for s in run.snapshot().metrics
        }
        reopts = samples[("engine.reoptimizations", ())]
        assert reopts.value == report.num_reoptimizations
        fills = [s for (name, _), s in samples.items() if name == "engine.window_fill"]
        assert fills and 0.0 < fills[0].value <= 1.0
        drift = [s for (name, _), s in samples.items() if name == "engine.drift_score"]
        assert drift and drift[0].labels == {"policy": "drift_triggered"}

    def test_migration_counters_fire_on_moves(self):
        with obs.observed() as run:
            run_engine()
        samples = {s.name: s for s in run.snapshot().metrics}
        assert samples["migration.moves"].value > 0
        assert samples["migration.moved_gb"].value > 0


class TestSolverSpans:
    def build_problem(self, capacity_fraction: float | None = None):
        rng = np.random.default_rng(5)
        tiers = azure_tier_catalog(include_premium=False)
        partitions = [
            DataPartition(
                f"d{index}",
                size_gb=float(rng.lognormal(3.0, 1.0)),
                predicted_accesses=float(rng.lognormal(1.0, 1.5)),
                latency_threshold_s=7200.0,
                current_tier=0,
            )
            for index in range(60)
        ]
        profiles = {
            p.name: {
                "gzip": CompressionProfile("gzip", ratio=3.0, decompression_s_per_gb=1.0)
            }
            for p in partitions
        }
        model = CostModel(tiers, duration_months=6.0)
        problem = OptAssignProblem(partitions, model, profiles)
        if capacity_fraction is None:
            return problem
        # Squeeze the tier the unconstrained solve uses most, relative to
        # its actual usage, so the capacity repair is guaranteed to evict.
        report = solve_optassign(problem, prefer="greedy")
        usage = [0.0] * len(tiers)
        for partition in partitions:
            choice = report.assignment.choices[partition.name]
            usage[choice.tier_index] += problem.stored_gb(partition, choice.scheme)
        hot = usage.index(max(usage))
        squeezed = type(tiers)(
            [
                tier.with_capacity(usage[hot] * capacity_fraction)
                if index == hot
                else tier
                for index, tier in enumerate(tiers)
            ]
        )
        return OptAssignProblem(
            partitions, CostModel(squeezed, duration_months=6.0), profiles
        )

    def test_solve_span_covers_phases(self):
        with obs.observed() as run:
            solve_optassign(self.build_problem(), prefer="greedy")
        names = [record.name for record in run.tracer.records()]
        assert "optassign.solve" in names
        assert "optassign.batch_tensors" in names
        assert "optassign.greedy" in names
        # Uncapacitated: no repair work, no relaxation retries.
        assert "optassign.repair_capacity" not in names
        assert "optassign.relaxation_round" not in names

    def test_capacitated_solve_traces_repair(self):
        with obs.observed() as run:
            solve_optassign(self.build_problem(0.25), prefer="greedy")
        names = [record.name for record in run.tracer.records()]
        assert "optassign.repair_capacity" in names
        samples = {s.name: s for s in run.snapshot().metrics}
        assert samples["optassign.repair.rounds"].labels == {"kind": "capacity"}
        assert samples["optassign.repair.rounds"].value >= 1

    def test_delta_solver_counters(self):
        problem = self.build_problem()
        with obs.observed() as run:
            solver = DeltaSolver(drift_threshold=0.1)
            solver.solve(problem)  # bootstrap -> full solve
        samples = {s.name: s for s in run.snapshot().metrics}
        assert samples["optassign.delta.full_solves"].labels == {"reason": "bootstrap"}
        names = [record.name for record in run.tracer.records()]
        assert "optassign.delta_solve" in names


class TestFleetSpans:
    @pytest.mark.slow
    def test_contended_fleet_covers_arbitration(self):
        catalog = multi_cloud_catalog()
        config = EngineConfig(horizon_months=6.0, window_months=6)
        specs = []
        for name, hot in (("hot", True), ("cold", False)):
            partitions = [
                DataPartition(
                    f"{name}_{i}",
                    size_gb=200.0 if hot else 500.0,
                    predicted_accesses=1500.0 if hot else 0.2,
                    latency_threshold_s=1.0 if hot else math.inf,
                )
                for i in range(4)
            ]
            series = {
                p.name: [1500.0 if hot else 0.2] * 6 for p in partitions
            }
            specs.append(
                TenantSpec(
                    name=name,
                    partitions=partitions,
                    policy=PeriodicReoptimize(2),
                    series=series,
                    config=config,
                )
            )
        pools = PoolSet(
            catalog,
            [CapacityPool("perf", ("azure_blob/premium", "azure_blob/hot"), 1000.0)],
        )
        scheduler = FleetScheduler(
            specs,
            catalog,
            pools=pools,
            config=FleetConfig(engine=config, max_workers=2),
        )
        with obs.observed() as run:
            scheduler.run(num_epochs=6)
        names = {record.name for record in run.tracer.records()}
        assert {
            "fleet.epoch",
            "fleet.build_problem",
            "fleet.stack",
            "fleet.solve",
            "fleet.apply",
            "fleet.settle",
            "optassign.repair_pools",
        } <= names
        # Thread-pool spans re-attach to the epoch span via parent_id.
        epoch_ids = {
            r.span_id for r in run.tracer.records() if r.name == "fleet.epoch"
        }
        for record in run.tracer.records():
            if record.name in ("fleet.build_problem", "fleet.settle"):
                assert record.parent_id in epoch_ids
        samples = {s.name for s in run.snapshot().metrics}
        assert "fleet.pool.used_gb" in samples
        assert "fleet.pool.utilization" in samples
        # The whole traced run round-trips through JSONL byte-exactly.
        text = obs.to_jsonl(run.snapshot())
        assert obs.to_jsonl(obs.parse_jsonl(text)) == text
