"""Tracer/span semantics: nesting, thread hops, errors, the global switch."""

import threading

import pytest

from repro import obs
from repro.obs import NOOP_TRACER, Tracer


class TestNesting:
    def test_spans_nest_through_the_stack(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {record.name: record for record in tracer.records()}
        assert by_name["parent"].parent_id is None
        assert by_name["child"].parent_id == by_name["parent"].span_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id
        assert by_name["sibling"].parent_id == by_name["parent"].span_id

    def test_span_ids_are_deterministic_creation_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [record.span_id for record in tracer.records()] == [0, 1, 2]
        # Children close before parents, but records() re-sorts by id.
        assert [record.name for record in tracer.records()] == ["a", "b", "c"]

    def test_explicit_parent_id_survives_thread_hop(self):
        tracer = Tracer()
        with tracer.span("fleet.epoch") as epoch:
            epoch_id = tracer.current_span_id
            assert epoch_id == epoch.span_id

            def worker():
                # A fresh thread has an empty stack; without the explicit
                # parent the span would become a root.
                with tracer.span("fleet.settle", parent_id=epoch_id):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {record.name: record for record in tracer.records()}
        assert by_name["fleet.settle"].parent_id == by_name["fleet.epoch"].span_id

    def test_current_span_id_none_outside_spans(self):
        tracer = Tracer()
        assert tracer.current_span_id is None
        with tracer.span("a"):
            assert tracer.current_span_id == 0
        assert tracer.current_span_id is None


class TestRecords:
    def test_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("solve", solver="greedy") as span:
            span.set(rounds=2).set(relaxed=False)
        [record] = tracer.records()
        assert record.duration_s >= 0.0
        assert record.attrs == {"solver": "greedy", "rounds": 2, "relaxed": False}
        assert record.error is None
        assert record.memory_peak_kb is None

    def test_error_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        [record] = tracer.records()
        assert record.error == "RuntimeError: boom"

    def test_reset_restarts_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        with tracer.span("b"):
            pass
        assert tracer.records()[0].span_id == 0

    def test_track_memory_records_innermost_peak(self):
        tracer = Tracer(track_memory=True)
        try:
            with tracer.span("allocating"):
                _ = [0] * 50_000
            [record] = tracer.records()
            assert record.memory_peak_kb is not None
            assert record.memory_peak_kb > 50.0  # 50k pointers >> 50 KiB
        finally:
            tracer.close()


class TestGlobalSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.get_tracer() is NOOP_TRACER
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False

    def test_noop_span_is_free_and_shared(self):
        span_a = NOOP_TRACER.span("anything", attr=1)
        span_b = NOOP_TRACER.span("else")
        assert span_a is span_b
        with span_a as entered:
            assert entered.set(x=1) is entered
        assert NOOP_TRACER.records() == []
        assert len(NOOP_TRACER) == 0

    def test_observed_enables_and_disables(self):
        with obs.observed() as run:
            assert obs.is_enabled()
            assert obs.get_tracer() is run.tracer
            with obs.get_tracer().span("inside"):
                pass
        assert not obs.is_enabled()
        assert [record.name for record in run.tracer.records()] == ["inside"]

    def test_nested_observed_shares_one_tracer(self):
        with obs.observed() as outer:
            with obs.observed() as inner:
                assert inner.tracer is outer.tracer
            # Inner exit must not disable the outer block.
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_enable_is_idempotent(self):
        first = obs.enable()
        second = obs.enable(track_memory=True)  # ignored while enabled
        assert first is second
        assert first.tracer.track_memory is False
        obs.disable()
        obs.disable()  # double-disable is fine

    def test_handle_snapshot_collects_both(self):
        with obs.observed() as run:
            with obs.get_tracer().span("phase"):
                obs.get_metrics().counter("hits").add()
        snap = run.snapshot()
        assert [record.name for record in snap.spans] == ["phase"]
        assert [sample.name for sample in snap.metrics] == ["hits"]
