"""Obs-suite hygiene: never leak an enabled global tracer between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()
