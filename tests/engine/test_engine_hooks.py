"""The engine's external-scheduling hooks (begin_epoch / build_problem /
apply_assignment / settle) and their equivalence to run().

The fleet scheduler replaces the per-engine solve with a stacked one by
calling these hooks directly, so their composition must reproduce ``run``
exactly and each hook must keep its contract (validation before billing,
no state mutation in ``begin_epoch``, policy notification on apply).
"""

import numpy as np
import pytest

from repro.cloud import DataPartition, azure_tier_catalog
from repro.core.optassign import solve_optassign
from repro.engine import (
    DriftTriggered,
    EngineConfig,
    EpochBatch,
    OnlineTieringEngine,
    PeriodicReoptimize,
    SeriesStream,
    StaticOnce,
)
from repro.workloads import DriftSegment, generate_drifting_reads

MONTHS = 10
CONFIG = EngineConfig(horizon_months=6.0, window_months=6)


@pytest.fixture
def workload():
    rng = np.random.default_rng(77)
    partitions = []
    series = {}
    for index in range(6):
        name = f"d{index}"
        segments = (
            [DriftSegment("constant", 5), DriftSegment("inactive", MONTHS - 5)]
            if index % 2
            else [DriftSegment("constant", MONTHS)]
        )
        series[name] = generate_drifting_reads(rng, segments, base_level=60.0)
        partitions.append(
            DataPartition(
                name,
                size_gb=100.0 + 40.0 * index,
                predicted_accesses=60.0,
                latency_threshold_s=7200.0,
                current_tier=0,
            )
        )
    return partitions, series


def build_engine(workload, policy):
    partitions, _ = workload
    return OnlineTieringEngine(
        partitions, azure_tier_catalog(include_premium=False), policy, CONFIG
    )


class TestHookComposition:
    def test_manual_hooks_reproduce_run(self, workload):
        partitions, series = workload
        reference = build_engine(workload, DriftTriggered(threshold=0.3)).run(
            SeriesStream(series)
        )

        engine = build_engine(workload, DriftTriggered(threshold=0.3))
        records = []
        for batch in SeriesStream(series):
            migration = None
            reoptimized = False
            if engine.begin_epoch(batch.epoch):
                problem = engine.build_problem(batch.epoch)
                solved = solve_optassign(problem)
                migration = engine.apply_assignment(
                    batch.epoch, solved.assignment.to_placement()
                )
                reoptimized = True
            records.append(
                engine.settle(batch, migration=migration, reoptimized=reoptimized)
            )

        assert len(records) == len(reference.records)
        for mine, theirs in zip(records, reference.records):
            assert mine.reoptimized == theirs.reoptimized
            assert mine.storage_cost == theirs.storage_cost
            assert mine.read_cost == theirs.read_cost
            assert mine.decompression_cost == theirs.decompression_cost
            assert mine.migration_cost == theirs.migration_cost
            assert mine.moved_gb == theirs.moved_gb

    def test_step_equals_run(self, workload):
        _, series = workload
        by_run = build_engine(workload, PeriodicReoptimize(3)).run(SeriesStream(series))
        engine = build_engine(workload, PeriodicReoptimize(3))
        by_step = [engine.step(batch) for batch in SeriesStream(series)]
        assert [record.bill_total for record in by_step] == [
            record.bill_total for record in by_run.records
        ]


class TestBeginEpoch:
    def test_validates_dense_timeline_before_anything_is_billed(self, workload):
        engine = build_engine(workload, StaticOnce())
        engine.step(EpochBatch(epoch=0, events=()))
        with pytest.raises(ValueError, match="one month at a time"):
            engine.begin_epoch(2)

    def test_fires_on_bootstrap_without_consulting_policy(self, workload):
        class ExplodingPolicy(StaticOnce):
            def should_reoptimize(self, epoch, observed):
                raise AssertionError("policy must not be consulted at bootstrap")

        engine = build_engine(workload, ExplodingPolicy())
        assert engine.begin_epoch(0) is True

    def test_does_not_advance_engine_state(self, workload):
        engine = build_engine(workload, StaticOnce())
        assert engine.begin_epoch(0) is True
        assert engine.begin_epoch(0) is True  # repeatable: nothing advanced
        assert engine.placement is None


class TestSettle:
    def test_settle_validates_epoch_too(self, workload):
        _, series = workload
        engine = build_engine(workload, StaticOnce())
        engine.step(EpochBatch(epoch=0, events=()))
        with pytest.raises(ValueError, match="one month at a time"):
            engine.settle(EpochBatch(epoch=5, events=()))

    def test_wall_clock_zero_without_started(self, workload):
        engine = build_engine(workload, StaticOnce())
        record = engine.step(EpochBatch(epoch=0, events=()))
        assert record.wall_clock_s > 0.0  # step passes its own start time
        record = engine.settle(EpochBatch(epoch=1, events=()))
        assert record.wall_clock_s == 0.0


class TestApplyAssignment:
    def test_requires_a_preceding_build_problem(self, workload):
        engine = build_engine(workload, PeriodicReoptimize(1))
        assert engine.begin_epoch(0)
        problem = engine.build_problem(0)
        placement = solve_optassign(problem).assignment.to_placement()
        engine.apply_assignment(0, placement)
        # The forecast was consumed: re-applying without a fresh
        # build_problem would notify the policy with a stale baseline.
        with pytest.raises(ValueError, match="preceding build_problem"):
            engine.apply_assignment(0, placement)

    def test_policy_notified_with_problem_forecast(self, workload):
        captured = {}

        class RecordingPolicy(PeriodicReoptimize):
            def notify_reoptimized(self, epoch, predicted_monthly):
                super().notify_reoptimized(epoch, predicted_monthly)
                captured[epoch] = dict(predicted_monthly)

        engine = build_engine(workload, RecordingPolicy(1))
        assert engine.begin_epoch(0)
        problem = engine.build_problem(0)
        solved = solve_optassign(problem)
        engine.apply_assignment(0, solved.assignment.to_placement())
        assert 0 in captured
        # the bootstrap forecast is the seeded prior monthly rate
        assert captured[0]["d0"] == pytest.approx(60.0)


class TestTierUsage:
    def test_zeros_before_first_placement(self, workload):
        engine = build_engine(workload, StaticOnce())
        assert engine.tier_usage_gb().tolist() == [0.0, 0.0, 0.0]

    def test_tracks_stored_gb_after_placement(self, workload):
        partitions, series = workload
        engine = build_engine(workload, StaticOnce())
        engine.step(EpochBatch(epoch=0, events=()))
        usage = engine.tier_usage_gb()
        assert usage.sum() == pytest.approx(
            sum(partition.size_gb for partition in partitions)
        )
