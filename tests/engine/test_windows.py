"""Epoch-free trigger windows: semantics, and the bit-exact dense-epoch oracle.

The tentpole invariant: a windowed run whose :class:`TimeTrigger` boundaries
align to the monthly grid must reproduce the dense-epoch engine **bit
exactly** — same bills, same reoptimization points, same forecasts.  The
windowed timeline is a strict generalization, not a reimplementation.
"""

import numpy as np
import pytest

from repro.cloud import DataPartition, TimedEvent, azure_tier_catalog
from repro.engine import (
    AnyTrigger,
    CountTrigger,
    DriftTrigger,
    EngineConfig,
    EpochBatch,
    OnlineTieringEngine,
    PeriodicReoptimize,
    StreamWindow,
    TimeTrigger,
    WindowRecord,
    monthly_batches,
    windowed,
)
from repro.workloads import PoissonZipfStream

HORIZON = 6.0


def timed(*times, partition="a", reads=1.0):
    return [TimedEvent(t=t, partition=partition, reads=reads) for t in times]


class TestStreamWindow:
    def test_aggregation_mirrors_epoch_batch(self):
        window = StreamWindow(
            index=0,
            start_month=0.0,
            end_month=1.5,
            events=tuple(timed(0.1, 0.2) + timed(1.0, partition="b", reads=2.0)),
            cause="time",
        )
        assert window.duration_months == 1.5
        assert window.total_reads == 4.0
        assert window.reads_by_partition() == {"a": 2.0, "b": 2.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamWindow(index=-1, start_month=0.0, end_month=1.0, events=(),
                         cause="time")
        with pytest.raises(ValueError):
            StreamWindow(index=0, start_month=2.0, end_month=1.0, events=(),
                         cause="time")


class TestCountTrigger:
    def test_closes_every_n_events(self):
        events = timed(0.1, 0.2, 0.3, 0.4, 0.5)
        wins = list(windowed(events, CountTrigger(2)))
        assert [len(w.events) for w in wins] == [2, 2, 1]
        assert [w.cause for w in wins] == ["count", "count", "flush"]
        # Consecutive and gap-free: each window starts where the last ended.
        assert [w.start_month for w in wins[1:]] == [w.end_month for w in wins[:-1]]

    def test_timestamp_tie_defers_zero_width_close(self):
        # Three events at t=0: a close at the window's own start would make a
        # zero-width window, so the driver defers until the clock advances.
        events = timed(0.0, 0.0, 0.0, 0.5)
        wins = list(windowed(events, CountTrigger(1)))
        assert all(w.duration_months > 0 for w in wins)
        assert sum(len(w.events) for w in wins) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CountTrigger(0)


class TestTimeTrigger:
    def test_quiet_stretches_emit_empty_windows(self):
        events = timed(0.5, 3.5)
        wins = list(windowed(events, TimeTrigger(1.0), horizon_months=5.0))
        assert [w.index for w in wins] == [0, 1, 2, 3, 4]
        assert [len(w.events) for w in wins] == [1, 0, 0, 1, 0]
        assert [(w.start_month, w.end_month) for w in wins] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0), (4.0, 5.0)
        ]
        assert wins[-1].cause == "horizon"
        assert all(w.cause == "time" for w in wins[:-1])

    def test_event_on_boundary_goes_to_next_window(self):
        wins = list(windowed(timed(1.0), TimeTrigger(1.0), horizon_months=2.0))
        assert [len(w.events) for w in wins] == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeTrigger(0.0)


class TestDriftTrigger:
    def test_never_fires_without_baseline(self):
        events = timed(*np.linspace(0.0, 2.0, 200, endpoint=False))
        trigger = DriftTrigger(threshold=0.01, check_every=10)
        wins = list(windowed(events, trigger, horizon_months=2.0))
        assert [w.cause for w in wins] == ["horizon"]

    def test_fires_when_mix_drifts_from_baseline(self):
        # Baseline expects all-"a" traffic; the stream is all-"b".
        events = timed(*np.linspace(0.3, 2.0, 300, endpoint=False), partition="b")
        trigger = DriftTrigger(
            threshold=0.5,
            min_width_months=0.25,
            check_every=10,
            baseline_provider=lambda: {"a": 150.0},
        )
        wins = list(windowed(events, trigger, horizon_months=2.0))
        assert wins[0].cause == "drift"
        assert trigger.last_score is not None and trigger.last_score >= 0.5

    def test_matching_traffic_does_not_fire(self):
        events = timed(*np.linspace(0.0, 2.0, 300, endpoint=False))
        trigger = DriftTrigger(
            threshold=0.5,
            check_every=10,
            baseline_provider=lambda: {"a": 150.0},
        )
        wins = list(windowed(events, trigger, horizon_months=2.0))
        assert [w.cause for w in wins] == ["horizon"]

    def test_min_width_suppresses_early_fires(self):
        events = timed(*np.linspace(0.0, 0.2, 100, endpoint=False), partition="b")
        trigger = DriftTrigger(
            threshold=0.1,
            min_width_months=0.5,
            check_every=5,
            baseline_provider=lambda: {"a": 100.0},
        )
        wins = list(windowed(events, trigger, horizon_months=0.2))
        assert [w.cause for w in wins] == ["horizon"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftTrigger(0.0)
        with pytest.raises(ValueError):
            DriftTrigger(0.5, min_width_months=0.0)
        with pytest.raises(ValueError):
            DriftTrigger(0.5, check_every=0)


class TestAnyTrigger:
    def test_first_to_fire_wins_and_names_the_cause(self):
        events = timed(0.1, 0.2, 0.3)
        wins = list(
            windowed(events, AnyTrigger(TimeTrigger(1.0), CountTrigger(2)),
                     horizon_months=1.0)
        )
        assert wins[0].cause == "count"
        assert len(wins[0].events) == 2

    def test_time_member_still_cuts_quiet_stretches(self):
        wins = list(
            windowed(timed(0.1), AnyTrigger(CountTrigger(100), TimeTrigger(1.0)),
                     horizon_months=3.0)
        )
        assert [w.cause for w in wins] == ["time", "time", "horizon"]

    def test_requires_members(self):
        with pytest.raises(ValueError):
            AnyTrigger()


class TestWindowedDriver:
    def test_rejects_backwards_events(self):
        events = [TimedEvent(t=1.0, partition="a"), TimedEvent(t=0.5, partition="a")]
        with pytest.raises(ValueError, match="time-ordered"):
            list(windowed(events, CountTrigger(10)))

    def test_no_horizon_flushes_trailing_partial_window(self):
        wins = list(windowed(timed(0.1, 0.7), TimeTrigger(1.0)))
        assert [w.cause for w in wins] == ["flush"]
        assert wins[0].end_month == 0.7

    def test_empty_stream_with_horizon_yields_horizon_window(self):
        wins = list(windowed([], TimeTrigger(10.0), horizon_months=1.5))
        assert [(w.cause, w.start_month, w.end_month) for w in wins] == [
            ("horizon", 0.0, 1.5)
        ]

    def test_empty_stream_without_horizon_yields_nothing(self):
        assert list(windowed([], CountTrigger(1))) == []

    def test_events_past_horizon_are_ignored(self):
        wins = list(windowed(timed(0.5, 2.5), CountTrigger(1), horizon_months=1.0))
        assert sum(len(w.events) for w in wins) == 1


class TestMonthlyBatches:
    def test_preserves_event_order_without_aggregating(self):
        events = timed(0.1, 0.9) + timed(0.95, partition="b") + timed(2.2)
        batches = list(monthly_batches(events))
        assert [batch.epoch for batch in batches] == [0, 1, 2]
        assert [e.partition for e in batches[0].events] == ["a", "a", "b"]
        assert batches[1].events == ()

    def test_num_epochs_pads_and_cuts(self):
        events = timed(0.5)
        assert len(list(monthly_batches(events, num_epochs=4))) == 4
        cut = list(monthly_batches(timed(0.5, 5.5), num_epochs=2))
        assert len(cut) == 2
        with pytest.raises(ValueError):
            list(monthly_batches(events, num_epochs=0))

    def test_empty_stream_without_num_epochs_yields_nothing(self):
        assert list(monthly_batches([])) == []


# ---------------------------------------------------------------------------
# The oracle lock: month-aligned windows == dense epochs, bit for bit
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def oracle_setup():
    partitions = [
        DataPartition(
            name=f"p{i}",
            size_gb=100.0 + 40.0 * i,
            predicted_accesses=20.0,
            latency_threshold_s=7200.0,
            current_tier=0,
        )
        for i in range(8)
    ]
    stream = PoissonZipfStream(
        [p.name for p in partitions],
        rate_per_month=400.0,
        horizon_months=HORIZON,
        zipf_exponent=1.1,
        seed=42,
    )
    tiers = azure_tier_catalog(include_premium=False, include_archive=True)
    return partitions, tiers, stream


def make_engine(partitions, tiers):
    return OnlineTieringEngine(
        partitions,
        tiers,
        PeriodicReoptimize(period_months=2),
        EngineConfig(horizon_months=3.0, window_months=3),
    )


class TestDenseOracleEquivalence:
    """Month-aligned TimeTrigger(1.0) must replay the dense engine bit-exactly."""

    @pytest.fixture(scope="class")
    def reports(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        dense = make_engine(partitions, tiers)
        dense_report = dense.run(
            monthly_batches(stream, num_epochs=int(HORIZON))
        )
        windowed_engine = make_engine(partitions, tiers)
        window_report = windowed_engine.run_stream(
            stream, TimeTrigger(1.0), horizon_months=HORIZON
        )
        return dense_report, window_report, dense, windowed_engine

    def test_total_bill_is_bit_exact(self, reports):
        dense_report, window_report, _, _ = reports
        assert window_report.total_bill == dense_report.total_bill

    def test_every_record_component_is_bit_exact(self, reports):
        dense_report, window_report, _, _ = reports
        assert len(window_report.records) == len(dense_report.records)
        for dense_rec, window_rec in zip(
            dense_report.records, window_report.records
        ):
            assert isinstance(window_rec, WindowRecord)
            assert window_rec.epoch == dense_rec.epoch
            assert window_rec.reoptimized == dense_rec.reoptimized
            assert window_rec.storage_cost == dense_rec.storage_cost
            assert window_rec.read_cost == dense_rec.read_cost
            assert window_rec.decompression_cost == dense_rec.decompression_cost
            assert window_rec.migration_cost == dense_rec.migration_cost
            assert (
                window_rec.early_deletion_penalty
                == dense_rec.early_deletion_penalty
            )
            assert window_rec.num_moved == dense_rec.num_moved
            assert window_rec.moved_gb == dense_rec.moved_gb
            assert window_rec.access_count == dense_rec.access_count
            assert window_rec.latency_violations == dense_rec.latency_violations

    def test_final_placements_agree(self, reports):
        _, _, dense, windowed_engine = reports
        assert dense.placement == windowed_engine.placement

    def test_window_records_carry_span_and_cause(self, reports):
        _, window_report, _, _ = reports
        for record in window_report.records:
            assert record.end_month - record.start_month == pytest.approx(1.0)
            assert record.duration_months == record.end_month - record.start_month
        assert window_report.records[-1].cause == "horizon"
        assert all(r.cause == "time" for r in window_report.records[:-1])


class TestWindowedEngineBehaviour:
    def test_timeline_mixing_raises_both_ways(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        engine.run_stream(stream, TimeTrigger(1.0), horizon_months=2.0)
        with pytest.raises(ValueError, match="epoch-free windowed timeline"):
            engine.step(EpochBatch(epoch=2, events=()))

        engine = make_engine(partitions, tiers)
        engine.run(monthly_batches(stream, num_epochs=2))
        with pytest.raises(ValueError, match="dense monthly timeline"):
            engine.step_window(
                StreamWindow(index=0, start_month=0.0, end_month=1.0,
                             events=(), cause="time")
            )

    def test_windows_must_be_consecutive(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        engine.step_window(
            StreamWindow(index=0, start_month=0.0, end_month=1.0, events=(),
                         cause="time")
        )
        with pytest.raises(ValueError, match="consecutive"):
            engine.step_window(
                StreamWindow(index=2, start_month=2.0, end_month=3.0,
                             events=(), cause="time")
            )

    def test_window_clock_tracks_settled_time(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        engine.run_stream(stream, TimeTrigger(0.5), horizon_months=2.0)
        assert engine.window_clock == 2.0

    def test_drift_cause_forces_reoptimization(self, oracle_setup):
        partitions, tiers, _ = oracle_setup
        # A policy that never fires on its own: drift-closed windows must
        # still reoptimize.
        engine = OnlineTieringEngine(
            partitions,
            tiers,
            PeriodicReoptimize(period_months=1000),
            EngineConfig(horizon_months=3.0, window_months=3),
        )
        first = engine.step_window(
            StreamWindow(index=0, start_month=0.0, end_month=1.0,
                         events=tuple(timed(0.5, partition="p0")), cause="time")
        )
        assert first.reoptimized  # cold start always fires
        quiet = engine.step_window(
            StreamWindow(index=1, start_month=1.0, end_month=2.0,
                         events=(), cause="time")
        )
        assert not quiet.reoptimized
        drifted = engine.step_window(
            StreamWindow(index=2, start_month=2.0, end_month=2.6,
                         events=tuple(timed(2.3, partition="p1")), cause="drift")
        )
        assert drifted.reoptimized

    def test_run_stream_wires_drift_baseline(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        inner = DriftTrigger(threshold=0.8)
        trigger = AnyTrigger(TimeTrigger(1.0), inner)
        engine.run_stream(stream, trigger, horizon_months=2.0)
        assert inner.baseline_provider is not None
        # After the cold-start reoptimization there is an applied forecast.
        assert inner.baseline_provider() == engine.last_applied_forecast
        assert engine.last_applied_forecast is not None

    def test_explicit_baseline_provider_is_left_alone(self, oracle_setup):
        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        provider = lambda: {"p0": 1.0}  # noqa: E731
        trigger = DriftTrigger(threshold=0.8, baseline_provider=provider)
        engine.run_stream(stream, trigger, horizon_months=1.0)
        assert trigger.baseline_provider is provider

    def test_windowed_run_emits_spans_and_close_counters(self, oracle_setup):
        from repro import obs

        partitions, tiers, stream = oracle_setup
        engine = make_engine(partitions, tiers)
        with obs.observed() as run:
            report = engine.run_stream(
                stream, TimeTrigger(1.0), horizon_months=2.0
            )
        names = {record.name for record in run.tracer.records()}
        assert {"engine.window", "engine.settle", "engine.ingest"} <= names
        closes = {
            sample.labels.get("cause"): sample.value
            for sample in run.snapshot().metrics
            if sample.name == "engine.window_closes"
        }
        assert closes["time"] == 1
        assert closes["horizon"] == 1
        assert sum(closes.values()) == len(report.records)

    def test_observed_windowed_run_is_bill_identical(self, oracle_setup):
        from repro import obs

        partitions, tiers, stream = oracle_setup
        baseline = make_engine(partitions, tiers).run_stream(
            stream, TimeTrigger(1.0), horizon_months=3.0
        )
        with obs.observed():
            traced = make_engine(partitions, tiers).run_stream(
                stream, TimeTrigger(1.0), horizon_months=3.0
            )
        assert traced.total_bill == baseline.total_bill

    def test_zero_width_flush_window_settles_raw_counts(self, oracle_setup):
        partitions, tiers, _ = oracle_setup
        engine = make_engine(partitions, tiers)
        record = engine.step_window(
            StreamWindow(index=0, start_month=0.0, end_month=0.0,
                         events=tuple(timed(0.0, partition="p0", reads=3.0)),
                         cause="flush")
        )
        assert record.storage_cost == 0.0
        assert engine.feature_store.window_reads("p0") == 3.0
