"""End-to-end policy comparison on a drifting workload.

The headline claims the engine exists to demonstrate:

* re-optimizing (periodically or on drift) beats the batch ``StaticOnce``
  baseline on the true end-to-end bill once access patterns drift;
* ``DriftTriggered`` gets there with fewer re-optimizations than
  ``PeriodicReoptimize`` because it only pays the optimizer when the world
  actually changed.
"""

import numpy as np
import pytest

from repro.cloud import DataPartition, azure_tier_catalog
from repro.engine import (
    DriftTriggered,
    EngineConfig,
    OnlineTieringEngine,
    PeriodicReoptimize,
    SeriesStream,
    StaticOnce,
)
from repro.workloads import DriftSegment, generate_drifting_reads

MONTHS = 24


@pytest.fixture(scope="module")
def drifting_workload():
    """12 datasets whose hot/cold roles flip at month 12."""
    rng = np.random.default_rng(101)
    series = {}
    partitions = []
    for index in range(12):
        name = f"dataset_{index}"
        if index < 4:  # hot for a year, then silent
            segments = [
                DriftSegment("constant", 12),
                DriftSegment("inactive", MONTHS - 12),
            ]
            prior = 90.0
        elif index < 8:  # silent for a year, then hot
            segments = [
                DriftSegment("inactive", 12),
                DriftSegment("constant", MONTHS - 12),
            ]
            prior = 0.0
        else:  # steadily decaying
            segments = [DriftSegment("decaying", MONTHS)]
            prior = 40.0
        series[name] = generate_drifting_reads(rng, segments, base_level=90.0)
        partitions.append(
            DataPartition(
                name=name,
                size_gb=150.0 + 30.0 * index,
                predicted_accesses=prior,
                latency_threshold_s=7200.0,
                current_tier=0,
            )
        )
    return series, partitions


@pytest.fixture(scope="module")
def tiers():
    return azure_tier_catalog(include_premium=False, include_archive=True)


def run_policy(policy, drifting_workload, tiers):
    series, partitions = drifting_workload
    engine = OnlineTieringEngine(
        partitions, tiers, policy, EngineConfig(horizon_months=6.0, window_months=6)
    )
    return engine.run(SeriesStream(series))


@pytest.fixture(scope="module")
def reports(drifting_workload, tiers):
    return {
        "static": run_policy(StaticOnce(), drifting_workload, tiers),
        "periodic": run_policy(PeriodicReoptimize(2), drifting_workload, tiers),
        "drift": run_policy(DriftTriggered(threshold=0.4), drifting_workload, tiers),
    }


class TestPolicyOrdering:
    def test_periodic_beats_static_on_total_bill(self, reports):
        assert reports["periodic"].total_bill < reports["static"].total_bill

    def test_drift_triggered_beats_static_on_total_bill(self, reports):
        assert reports["drift"].total_bill < reports["static"].total_bill

    def test_drift_triggered_reoptimizes_less_than_periodic(self, reports):
        assert (
            reports["drift"].num_reoptimizations
            < reports["periodic"].num_reoptimizations
        )

    def test_static_reoptimizes_exactly_once(self, reports):
        assert reports["static"].num_reoptimizations == 1
        assert reports["static"].records[0].reoptimized

    def test_drift_reoptimizes_more_than_once(self, reports):
        """The drift at month 12 must actually fire the trigger."""
        assert reports["drift"].num_reoptimizations > 1


class TestReportBookkeeping:
    def test_every_epoch_is_recorded(self, reports):
        for report in reports.values():
            assert report.num_epochs == MONTHS
            assert [record.epoch for record in report.records] == list(range(MONTHS))

    def test_bill_components_sum_to_total(self, reports):
        report = reports["periodic"]
        recomputed = sum(
            record.storage_cost
            + record.read_cost
            + record.decompression_cost
            + record.migration_cost
            + record.early_deletion_penalty
            for record in report.records
        )
        assert report.total_bill == pytest.approx(recomputed)

    def test_migrations_only_happen_on_reoptimizations(self, reports):
        for report in reports.values():
            for record in report.records:
                if not record.reoptimized:
                    assert record.num_moved == 0
                    assert record.migration_cost == 0.0

    def test_summary_is_machine_readable(self, reports):
        summary = reports["drift"].summary()
        assert summary["policy"] == "drift_triggered"
        assert summary["epochs"] == MONTHS
        assert summary["total_bill_cents"] > 0


class TestEngineHygiene:
    def test_caller_partitions_are_not_mutated(self, drifting_workload, tiers):
        series, partitions = drifting_workload
        tiers_before = [partition.current_tier for partition in partitions]
        run_policy(PeriodicReoptimize(3), drifting_workload, tiers)
        assert [partition.current_tier for partition in partitions] == tiers_before

    def test_engine_requires_partitions(self, tiers):
        with pytest.raises(ValueError):
            OnlineTieringEngine([], tiers, StaticOnce())

    def test_repeated_or_earlier_epochs_raise_before_billing(
        self, drifting_workload, tiers
    ):
        from repro.cloud import AccessEvent
        from repro.engine import EpochBatch

        series, partitions = drifting_workload
        engine = OnlineTieringEngine(partitions, tiers, PeriodicReoptimize(3))
        duplicated = [
            EpochBatch(0, (AccessEvent(0, partitions[0].name, 1.0),)),
            EpochBatch(0, (AccessEvent(0, partitions[0].name, 1.0),)),
        ]
        with pytest.raises(ValueError, match="advance one month"):
            engine.run(duplicated)
        # continuing the timeline after the failed batch still works
        report = engine.run([EpochBatch(1, ())])
        assert report.records[0].epoch == 1

    def test_epoch_gaps_raise_before_billing(self, drifting_workload, tiers):
        """Billing, residency clocks and forecast decay all assume a dense
        monthly timeline — a skipped month must raise, not silently under-bill
        storage while the forecaster decays over the true gap."""
        from repro.engine import EpochBatch

        series, partitions = drifting_workload
        engine = OnlineTieringEngine(partitions, tiers, StaticOnce())
        with pytest.raises(ValueError, match="advance one month"):
            engine.run([EpochBatch(0, ()), EpochBatch(2, ())])

    def test_drift_observations_survive_across_run_calls(self, tiers):
        """Splitting one stream across two ``run`` calls must behave like a
        single continuous run: the drift observed in the last epoch of the
        first call can fire a re-optimization at the start of the second."""
        from repro.cloud import AccessEvent
        from repro.engine import EpochBatch

        partitions = [
            DataPartition("a", size_gb=100.0, predicted_accesses=100.0, current_tier=0),
            DataPartition("b", size_gb=100.0, predicted_accesses=0.0, current_tier=0),
        ]
        engine = OnlineTieringEngine(
            partitions, tiers, DriftTriggered(threshold=0.4, min_gap_months=1)
        )
        # Epoch 0 matches the prediction; epoch 1 flips the hot set entirely.
        engine.run(
            [
                EpochBatch(0, (AccessEvent(0, "a", 100.0),)),
                EpochBatch(1, (AccessEvent(1, "b", 100.0),)),
            ]
        )
        continuation = engine.run([EpochBatch(2, (AccessEvent(2, "b", 100.0),))])
        assert continuation.records[0].reoptimized

    def test_supplied_warm_forecaster_is_not_clobbered_by_priors(self, tiers):
        from repro.core.access_predict import WindowedAccessForecaster

        forecaster = WindowedAccessForecaster()
        forecaster.seed({"a": 55.0}, epoch=-1)
        partitions = [
            DataPartition("a", size_gb=10.0, predicted_accesses=0.0, current_tier=0),
            DataPartition("b", size_gb=10.0, predicted_accesses=7.0, current_tier=0),
        ]
        OnlineTieringEngine(partitions, tiers, StaticOnce(), forecaster=forecaster)
        # the warm rate survives; only the untracked partition gets its prior
        assert forecaster.rate("a", epoch=-1) == pytest.approx(55.0)
        assert forecaster.rate("b", epoch=-1) == pytest.approx(7.0)

    def test_placement_covers_every_partition(self, drifting_workload, tiers):
        series, partitions = drifting_workload
        engine = OnlineTieringEngine(partitions, tiers, StaticOnce())
        engine.run(SeriesStream(series))
        assert set(engine.placement) == {partition.name for partition in partitions}
