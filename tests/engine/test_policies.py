"""Policy trigger logic: StaticOnce, PeriodicReoptimize, DriftTriggered."""

import pytest

from repro.engine import (
    DriftTriggered,
    PeriodicReoptimize,
    StaticOnce,
    drift_score,
    partition_drift_scores,
)


class TestStaticOnce:
    def test_fires_exactly_once(self):
        policy = StaticOnce()
        assert policy.should_reoptimize(0, None)
        policy.notify_reoptimized(0, {"a": 1.0})
        assert not policy.should_reoptimize(1, {"a": 100.0})
        assert not policy.should_reoptimize(50, {"a": 0.0})


class TestPeriodicReoptimize:
    def test_fires_every_k_epochs(self):
        policy = PeriodicReoptimize(period_months=3)
        fired = []
        for epoch in range(10):
            if policy.should_reoptimize(epoch, {}):
                policy.notify_reoptimized(epoch, {})
                fired.append(epoch)
        assert fired == [0, 3, 6, 9]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicReoptimize(0)


class TestDriftScore:
    def test_zero_when_observation_matches_prediction(self):
        predicted = {"a": 10.0, "b": 5.0}
        assert drift_score(predicted, {"a": 10.0, "b": 5.0}) == pytest.approx(0.0)

    def test_scale_invariant_shape_but_volume_sensitive(self):
        predicted = {"a": 10.0, "b": 10.0}
        # Same shape, doubled volume: shape term 0, volume term 0.5.
        assert drift_score(predicted, {"a": 20.0, "b": 20.0}) == pytest.approx(0.5)

    def test_disjoint_support_scores_one(self):
        assert drift_score({"a": 10.0}, {"b": 10.0}) == pytest.approx(1.0)

    def test_silence_vs_activity_scores_one(self):
        assert drift_score({"a": 10.0}, {}) == 1.0
        assert drift_score({}, {"a": 10.0}) == 1.0
        assert drift_score({}, {}) == 0.0


class TestDriftTriggered:
    def test_bootstrap_fires_then_quiet_under_matching_traffic(self):
        policy = DriftTriggered(threshold=0.4)
        assert policy.should_reoptimize(0, None)
        policy.notify_reoptimized(0, {"a": 10.0, "b": 1.0})
        for epoch in range(1, 6):
            assert not policy.should_reoptimize(epoch, {"a": 10.0, "b": 1.0})

    def test_fires_on_distribution_flip(self):
        policy = DriftTriggered(threshold=0.4)
        policy.notify_reoptimized(0, {"a": 10.0, "b": 0.5})
        assert policy.should_reoptimize(3, {"a": 0.2, "b": 12.0})
        assert policy.last_score > 0.4

    def test_min_gap_suppresses_thrashing(self):
        policy = DriftTriggered(threshold=0.2, min_gap_months=4)
        policy.notify_reoptimized(0, {"a": 10.0})
        drifted = {"a": 1.0, "b": 30.0}
        assert not policy.should_reoptimize(2, drifted)  # within refractory gap
        assert policy.should_reoptimize(4, drifted)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DriftTriggered(threshold=0.0)
        with pytest.raises(ValueError):
            DriftTriggered(threshold=0.4, min_gap_months=0)


class TestPartitionDriftScores:
    def test_zero_when_matching(self):
        scores = partition_drift_scores({"a": 10.0, "b": 0.0}, {"a": 10.0, "b": 0.0})
        assert scores == {"a": 0.0, "b": 0.0}

    def test_relative_move_metric(self):
        scores = partition_drift_scores({"a": 10.0}, {"a": 15.0})
        assert scores["a"] == pytest.approx(5.0 / 15.0)

    def test_union_of_names_with_one_sided_activity(self):
        scores = partition_drift_scores({"a": 10.0}, {"b": 3.0})
        assert scores == {"a": 1.0, "b": 1.0}

    def test_symmetric(self):
        left = partition_drift_scores({"a": 4.0}, {"a": 8.0})
        right = partition_drift_scores({"a": 8.0}, {"a": 4.0})
        assert left == right


class TestDriftTriggeredPartitionHints:
    def test_no_hint_before_any_observation(self):
        policy = DriftTriggered(threshold=0.4)
        assert policy.drifted_partitions(0.1) is None

    def test_hint_names_only_the_drifted_partitions(self):
        policy = DriftTriggered(threshold=0.4)
        policy.notify_reoptimized(0, {"a": 10.0, "b": 5.0, "c": 2.0})
        policy.should_reoptimize(1, {"a": 10.0, "b": 20.0, "c": 2.0})
        assert policy.drifted_partitions(0.1) == {"b"}

    def test_hint_respects_the_threshold(self):
        policy = DriftTriggered(threshold=0.4)
        policy.notify_reoptimized(0, {"a": 10.0, "b": 10.0})
        policy.should_reoptimize(1, {"a": 11.0, "b": 30.0})
        # a moved ~9%, b ~67%: a stays pinned at tau=0.2, both flagged at 0.05.
        assert policy.drifted_partitions(0.2) == {"b"}
        assert policy.drifted_partitions(0.05) == {"a", "b"}

    def test_scores_update_even_inside_the_refractory_gap(self):
        policy = DriftTriggered(threshold=0.2, min_gap_months=4)
        policy.notify_reoptimized(0, {"a": 10.0})
        assert not policy.should_reoptimize(2, {"a": 100.0})  # gap suppresses
        assert policy.drifted_partitions(0.1) == {"a"}

    def test_base_policy_has_no_per_partition_signal(self):
        assert StaticOnce().drifted_partitions(0.1) is None
        assert PeriodicReoptimize(2).drifted_partitions(0.1) is None
