"""FeatureStore: incremental window maintenance must equal a full recompute."""

import numpy as np
import pytest

from repro.cloud import AccessEvent
from repro.engine import EpochBatch, FeatureStore, ScalarFeatureStore, SeriesStream


def brute_force_window(trace: dict[str, list[float]], epoch: int, window: int):
    """Reference implementation: recompute window stats from the full history."""
    start = max(epoch - window + 1, 0)
    stats = {}
    for name, series in trace.items():
        upto = series[: epoch + 1]
        in_window = upto[start : epoch + 1]
        last_access = max(
            (month for month, reads in enumerate(upto) if reads > 0), default=None
        )
        stats[name] = {
            "window_reads": float(sum(in_window)),
            "lifetime": float(sum(upto)),
            "since": float("inf") if last_access is None else float(epoch - last_access),
        }
    return stats


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("window", [1, 3, 6])
    def test_matches_recompute_on_random_trace(self, window):
        rng = np.random.default_rng(17)
        months = 30
        trace = {
            f"p{i}": [
                float(rng.integers(0, 6)) if rng.uniform() < 0.4 else 0.0
                for _ in range(months)
            ]
            for i in range(12)
        }
        store = FeatureStore(window_months=window)
        for batch in SeriesStream(trace):
            store.observe(batch)
            expected = brute_force_window(trace, batch.epoch, window)
            for name in trace:
                assert store.window_reads(name) == pytest.approx(
                    expected[name]["window_reads"]
                ), (name, batch.epoch)
                assert store.lifetime_reads(name) == pytest.approx(
                    expected[name]["lifetime"]
                )
                assert store.epochs_since_access(name) == expected[name]["since"]

    def test_window_series_is_dense_and_aligned(self):
        store = FeatureStore(window_months=3)
        store.observe(
            EpochBatch(epoch=0, events=(AccessEvent(0, "a", 5.0),))
        )
        store.observe(EpochBatch(epoch=1, events=()))
        store.observe(
            EpochBatch(epoch=2, events=(AccessEvent(2, "a", 2.0),))
        )
        assert store.window_series("a") == (5.0, 0.0, 2.0)
        store.observe(EpochBatch(epoch=3, events=()))
        # epoch 0 slid out of the 3-month window
        assert store.window_series("a") == (0.0, 2.0, 0.0)
        assert store.window_reads("a") == 2.0

    def test_short_history_yields_short_series(self):
        store = FeatureStore(window_months=6)
        store.observe(
            EpochBatch(epoch=0, events=(AccessEvent(0, "a", 1.0),))
        )
        assert store.window_series("a") == (1.0,)

    def test_untracked_partition_reads_as_cold(self):
        store = FeatureStore(window_months=4)
        store.observe(EpochBatch(epoch=0, events=()))
        assert store.window_reads("ghost") == 0.0
        assert store.lifetime_reads("ghost") == 0.0
        assert store.epochs_since_access("ghost") == float("inf")

    def test_epoch_gaps_are_allowed_and_expire_entries(self):
        store = FeatureStore(window_months=2)
        store.observe(
            EpochBatch(epoch=0, events=(AccessEvent(0, "a", 7.0),))
        )
        store.observe(
            EpochBatch(epoch=10, events=(AccessEvent(10, "a", 1.0),))
        )
        assert store.window_reads("a") == 1.0
        assert store.lifetime_reads("a") == 8.0

    def test_rejects_time_travel(self):
        store = FeatureStore(window_months=2)
        store.observe(EpochBatch(epoch=5, events=()))
        with pytest.raises(ValueError):
            store.observe(EpochBatch(epoch=4, events=()))

    def test_rejects_negative_reads_via_counts(self):
        store = FeatureStore(window_months=2)
        with pytest.raises(ValueError):
            store.observe_counts(0, {"a": -1.0})


class TestSnapshot:
    def test_snapshot_bundles_all_features(self):
        store = FeatureStore(window_months=2)
        store.observe_counts(0, {"a": 4.0})
        store.observe_counts(1, {"a": 2.0, "b": 1.0})
        snap = store.snapshot(["a", "b", "c"])
        assert snap["a"].window_reads == 6.0
        assert snap["a"].window_series == (4.0, 2.0)
        assert snap["a"].window_mean == 3.0
        assert snap["b"].epochs_since_access == 0.0
        assert snap["c"].lifetime_reads == 0.0
        assert store.tracked_partitions() == ["a", "b"]


class TestRingBufferEqualsScalarOracle:
    """The numpy ring-buffer store and the sparse-deque oracle must agree."""

    @pytest.mark.parametrize("window", [1, 2, 5])
    def test_identical_on_random_trace_with_gaps(self, window):
        rng = np.random.default_rng(29)
        names = [f"p{i}" for i in range(20)]
        ring = FeatureStore(window_months=window, initial_capacity=4)  # forces growth
        scalar = ScalarFeatureStore(window_months=window)
        epoch = 0
        for _ in range(40):
            epoch += int(rng.integers(0, 4))  # repeats and gaps included
            counts = {
                name: float(rng.integers(0, 5))
                for name in names
                if rng.uniform() < 0.5
            }
            # accumulate() is the path that tolerates same-epoch repeats
            # (observe_counts rejects them; see TestCompleteBatchContract).
            ring.accumulate(epoch, counts)
            scalar.accumulate(epoch, counts)
            assert ring.current_epoch == scalar.current_epoch
            for name in names + ["never_seen"]:
                assert ring.window_series(name) == scalar.window_series(name), (
                    name,
                    epoch,
                )
                assert ring.window_reads(name) == pytest.approx(
                    scalar.window_reads(name)
                )
                assert ring.lifetime_reads(name) == scalar.lifetime_reads(name)
                assert ring.epochs_since_access(name) == scalar.epochs_since_access(
                    name
                )
            assert ring.tracked_partitions() == scalar.tracked_partitions()

    def test_event_batches_agree_with_counts(self):
        rng = np.random.default_rng(31)
        names = [f"p{i}" for i in range(10)]
        ring = FeatureStore(window_months=4)
        scalar = ScalarFeatureStore(window_months=4)
        for epoch in range(15):
            events = tuple(
                AccessEvent(month=epoch, partition=names[int(rng.integers(0, 10))],
                            reads=float(rng.integers(1, 4)))
                for _ in range(int(rng.integers(0, 8)))
            )
            batch = EpochBatch(epoch=epoch, events=events)
            ring.observe(batch)
            scalar.observe(batch)
            snap_ring = ring.snapshot(names)
            snap_scalar = scalar.snapshot(names)
            for name in names:
                assert snap_ring[name].window_series == snap_scalar[name].window_series
                assert snap_ring[name].window_reads == pytest.approx(
                    snap_scalar[name].window_reads
                )

    def test_window_series_map_matches_per_name_queries(self):
        store = FeatureStore(window_months=3)
        store.observe_counts(0, {"a": 5.0})
        store.observe_counts(2, {"b": 2.0, "a": 1.0})
        series_map = store.window_series_map(["a", "b", "ghost"])
        assert series_map == {
            "a": store.window_series("a"),
            "b": store.window_series("b"),
            "ghost": (0.0, 0.0, 0.0),
        }

    def test_same_epoch_accumulate_coalesces(self):
        ring = FeatureStore(window_months=3)
        scalar = ScalarFeatureStore(window_months=3)
        for store in (ring, scalar):
            store.accumulate(1, {"a": 2.0})
            store.accumulate(1, {"a": 3.0})
        assert ring.window_series("a") == scalar.window_series("a") == (0.0, 5.0)
        assert ring.window_reads("a") == scalar.window_reads("a") == 5.0


class TestCompleteBatchContract:
    """observe/observe_counts take one complete batch per epoch (the bugfix).

    Re-observing the current epoch used to silently double-fold reads while
    the forecaster rejected the same mistake; now both stores raise and the
    explicit :meth:`accumulate` path carries the intentional sub-epoch
    streaming semantics.
    """

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_observe_counts_rejects_same_epoch(self, kind):
        store = (
            FeatureStore(window_months=3)
            if kind == "ring"
            else ScalarFeatureStore(window_months=3)
        )
        store.observe_counts(1, {"a": 2.0})
        with pytest.raises(ValueError, match="already observed"):
            store.observe_counts(1, {"a": 3.0})
        # The failed call must not have half-folded anything.
        assert store.window_reads("a") == 2.0

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_observe_rejects_same_epoch_batch(self, kind):
        store = (
            FeatureStore(window_months=3)
            if kind == "ring"
            else ScalarFeatureStore(window_months=3)
        )
        batch = EpochBatch(
            epoch=0, events=(AccessEvent(month=0, partition="a", reads=1.0),)
        )
        store.observe(batch)
        with pytest.raises(ValueError, match="already observed"):
            store.observe(batch)
        assert store.window_reads("a") == 1.0

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_accumulate_then_observe_same_epoch_rejected(self, kind):
        store = (
            FeatureStore(window_months=3)
            if kind == "ring"
            else ScalarFeatureStore(window_months=3)
        )
        store.accumulate(2, {"a": 1.0})
        with pytest.raises(ValueError, match="already observed"):
            store.observe_counts(2, {"a": 1.0})

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_accumulate_rejects_decreasing_epochs(self, kind):
        store = (
            FeatureStore(window_months=3)
            if kind == "ring"
            else ScalarFeatureStore(window_months=3)
        )
        store.accumulate(3, {"a": 1.0})
        with pytest.raises(ValueError, match="non-decreasing"):
            store.accumulate(2, {"a": 1.0})

    def test_micro_batches_sum_like_one_batch(self):
        """Slicing an epoch into accumulate() micro-batches equals one observe."""
        whole = FeatureStore(window_months=4)
        sliced = FeatureStore(window_months=4)
        whole.observe_counts(0, {"a": 6.0, "b": 3.0})
        for _ in range(3):
            sliced.accumulate(0, {"a": 2.0, "b": 1.0})
        for name in ("a", "b"):
            assert whole.window_series(name) == sliced.window_series(name)
            assert whole.lifetime_reads(name) == sliced.lifetime_reads(name)


class TestGapSemantics:
    """Epoch gaps: skipped months are quiet months, in both stores (S3).

    A gap of ``g`` epochs slides the window by ``g`` zero columns — a gap at
    least as wide as the window wipes it entirely, a narrower one zeroes
    exactly the skipped columns, and ``epochs_since_access`` keeps counting
    across the gap.
    """

    @staticmethod
    def make(kind, window):
        return (
            FeatureStore(window_months=window)
            if kind == "ring"
            else ScalarFeatureStore(window_months=window)
        )

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_gap_at_least_window_wipes_it(self, kind):
        store = self.make(kind, window=3)
        store.observe_counts(0, {"a": 9.0, "b": 4.0})
        store.observe_counts(3, {})  # gap of 3 == window
        assert store.window_series("a") == (0.0, 0.0, 0.0)
        assert store.window_reads("a") == 0.0
        assert store.window_reads("b") == 0.0
        # Lifetime survives the wipe; only the window forgets.
        assert store.lifetime_reads("a") == 9.0

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_partial_gap_zeroes_exactly_the_skipped_columns(self, kind):
        store = self.make(kind, window=4)
        store.observe_counts(0, {"a": 5.0})
        store.observe_counts(3, {"a": 2.0})  # epochs 1 and 2 were quiet
        assert store.window_series("a") == (5.0, 0.0, 0.0, 2.0)
        assert store.window_reads("a") == 7.0

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_epochs_since_access_counts_across_gaps(self, kind):
        store = self.make(kind, window=2)
        store.observe_counts(0, {"a": 1.0})
        store.observe_counts(7, {"b": 1.0})
        assert store.epochs_since_access("a") == 7.0
        assert store.epochs_since_access("b") == 0.0

    @pytest.mark.parametrize("kind", ["ring", "scalar"])
    def test_gap_then_same_epoch_accumulate(self, kind):
        """A gap followed by sub-epoch accumulates folds into one column."""
        store = self.make(kind, window=3)
        store.observe_counts(0, {"a": 4.0})
        store.accumulate(2, {"a": 1.0})
        store.accumulate(2, {"a": 2.0})
        assert store.window_series("a") == (4.0, 0.0, 3.0)

    def test_stores_agree_on_giant_gap(self):
        ring = FeatureStore(window_months=5)
        scalar = ScalarFeatureStore(window_months=5)
        for store in (ring, scalar):
            store.observe_counts(0, {"a": 3.0})
            store.observe_counts(1000, {"b": 1.0})
        assert ring.window_series("a") == scalar.window_series("a")
        assert ring.window_series("b") == scalar.window_series("b")
        assert ring.epochs_since_access("a") == scalar.epochs_since_access("a")
        assert ring.current_epoch == scalar.current_epoch == 1000


class TestHotPathIsIncremental:
    def test_epoch_cost_does_not_grow_with_history(self):
        """Per-epoch state stays bounded by the window, not the trace length.

        For the scalar oracle: after many epochs every partition deque holds
        at most ``window`` entries regardless of lifetime.  For the ring
        store: the buffer width is exactly ``window`` columns forever."""
        scalar = ScalarFeatureStore(window_months=4)
        ring = FeatureStore(window_months=4)
        for epoch in range(500):
            scalar.observe_counts(epoch, {"a": 1.0, "b": 2.0})
            ring.observe_counts(epoch, {"a": 1.0, "b": 2.0})
        for state in scalar._states.values():
            assert len(state.entries) <= 4
        assert ring._window.shape[1] == 4
