"""Incremental re-optimization inside the online engine (``reopt_mode="delta"``).

The contract under test: at ``delta_drift_threshold=0.0`` the delta engine is
**bill-identical** to the full engine on the same stream — pinning only
bit-unchanged rows cannot move any argmin — while a positive threshold keeps
the end-to-end run feasible and actually pins rows on quiet epochs.
"""

import numpy as np
import pytest

from repro.cloud import DataPartition, azure_tier_catalog
from repro.engine import (
    DriftTriggered,
    EngineConfig,
    OnlineTieringEngine,
    PeriodicReoptimize,
    SeriesStream,
)
from repro.workloads import DriftSegment, generate_drifting_reads

MONTHS = 18


@pytest.fixture(scope="module")
def drifting_workload():
    rng = np.random.default_rng(67)
    series = {}
    partitions = []
    for index in range(10):
        name = f"dataset_{index}"
        if index < 3:  # hot then silent
            segments = [DriftSegment("constant", 9), DriftSegment("inactive", MONTHS - 9)]
            prior = 80.0
        elif index < 6:  # silent then hot
            segments = [DriftSegment("inactive", 9), DriftSegment("constant", MONTHS - 9)]
            prior = 0.0
        else:
            segments = [DriftSegment("decaying", MONTHS)]
            prior = 40.0
        series[name] = generate_drifting_reads(rng, segments, base_level=80.0)
        partitions.append(
            DataPartition(
                name=name,
                size_gb=120.0 + 25.0 * index,
                predicted_accesses=prior,
                latency_threshold_s=7200.0,
                current_tier=0,
            )
        )
    return series, partitions


def run_engine(drifting_workload, policy, **config_kwargs):
    series, partitions = drifting_workload
    tiers = azure_tier_catalog(include_premium=False, include_archive=True)
    config = EngineConfig(horizon_months=6.0, window_months=6, **config_kwargs)
    engine = OnlineTieringEngine(partitions, tiers, policy, config)
    report = engine.run(SeriesStream(series))
    return engine, report


class TestEngineConfigValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EngineConfig(reopt_mode="sometimes")

    def test_rejects_threshold_at_or_past_one_third(self):
        with pytest.raises(ValueError):
            EngineConfig(reopt_mode="delta", delta_drift_threshold=1.0 / 3.0)
        with pytest.raises(ValueError):
            EngineConfig(reopt_mode="delta", delta_drift_threshold=-0.01)


class TestDeltaModeEquivalence:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: PeriodicReoptimize(period_months=3),
            lambda: DriftTriggered(threshold=0.3, min_gap_months=2),
        ],
        ids=["periodic", "drift"],
    )
    def test_zero_threshold_delta_is_bill_identical(
        self, drifting_workload, policy_factory
    ):
        _, full = run_engine(drifting_workload, policy_factory(), reopt_mode="full")
        _, delta = run_engine(
            drifting_workload,
            policy_factory(),
            reopt_mode="delta",
            delta_drift_threshold=0.0,
        )
        assert delta.total_bill == pytest.approx(full.total_bill, rel=1e-12)
        assert delta.num_reoptimizations == full.num_reoptimizations
        for full_record, delta_record in zip(full.records, delta.records):
            assert delta_record.bill_total == pytest.approx(
                full_record.bill_total, rel=1e-12
            )
            assert delta_record.num_moved == full_record.num_moved

    def test_positive_threshold_pins_rows_and_stays_close(self, drifting_workload):
        _, full = run_engine(
            drifting_workload, PeriodicReoptimize(period_months=2), reopt_mode="full"
        )
        engine, delta = run_engine(
            drifting_workload,
            PeriodicReoptimize(period_months=2),
            reopt_mode="delta",
            delta_drift_threshold=0.1,
        )
        assert engine.last_delta_report is not None
        # The delta engine may place slightly differently (pinned rows keep
        # their standing placement under sub-threshold drift), but the bill
        # must stay within the coarse regret envelope of the full engine.
        assert delta.total_bill <= full.total_bill * 1.5
        assert delta.num_epochs == full.num_epochs

    def test_full_mode_has_no_delta_solver(self, drifting_workload):
        engine, _ = run_engine(
            drifting_workload, PeriodicReoptimize(period_months=3), reopt_mode="full"
        )
        assert engine.last_delta_report is None
