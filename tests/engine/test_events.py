"""Event streams: grouping, synthesis and causal ordering."""

import warnings

import pytest

from repro.cloud import AccessEvent, Dataset, DatasetCatalog
from repro.engine import EpochBatch, ReplayStream, SeriesStream, stream_from_catalog


class TestEpochBatch:
    def test_aggregates_reads_by_partition(self):
        batch = EpochBatch(
            epoch=2,
            events=(
                AccessEvent(month=2, partition="a", reads=3.0),
                AccessEvent(month=2, partition="b", reads=1.0),
                AccessEvent(month=2, partition="a", reads=2.0),
            ),
        )
        assert batch.reads_by_partition() == {"a": 5.0, "b": 1.0}
        assert batch.total_reads == 6.0

    def test_rejects_negative_epoch(self):
        with pytest.raises(ValueError):
            EpochBatch(epoch=-1, events=())


class TestReplayStream:
    def test_groups_events_by_month_with_empty_gaps(self):
        events = [
            AccessEvent(month=0, partition="a", reads=1.0),
            AccessEvent(month=3, partition="b", reads=2.0),
            AccessEvent(month=3, partition="a", reads=1.0),
        ]
        batches = list(ReplayStream(events))
        assert [batch.epoch for batch in batches] == [0, 1, 2, 3]
        assert batches[1].events == ()
        assert batches[2].events == ()
        assert batches[3].reads_by_partition() == {"b": 2.0, "a": 1.0}

    def test_num_epochs_extends_and_truncates(self):
        events = [AccessEvent(month=1, partition="a", reads=1.0)]
        assert len(list(ReplayStream(events, num_epochs=5))) == 5
        with pytest.warns(UserWarning, match="truncates the recorded trace"):
            truncated = list(ReplayStream(events, num_epochs=1))
        assert len(truncated) == 1
        assert truncated[0].events == ()

    def test_truncation_warning_counts_dropped_events(self):
        """Regression: truncation used to drop recorded events silently."""
        events = [
            AccessEvent(month=0, partition="a", reads=1.0),
            AccessEvent(month=2, partition="a", reads=1.0),
            AccessEvent(month=3, partition="b", reads=2.0),
        ]
        with pytest.warns(UserWarning, match=r"2 event\(s\) in months 2\.\.3"):
            ReplayStream(events, num_epochs=2)

    def test_exact_num_epochs_does_not_warn(self):
        events = [AccessEvent(month=1, partition="a", reads=1.0)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ReplayStream(events, num_epochs=2)
            ReplayStream(events, num_epochs=5)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ReplayStream([])


class TestSeriesStream:
    def test_synthesizes_events_from_monthly_series(self):
        stream = SeriesStream({"a": [2.0, 0.0, 1.0], "b": [0.0, 4.0]})
        batches = list(stream)
        assert len(batches) == 3
        assert batches[0].reads_by_partition() == {"a": 2.0}
        assert batches[1].reads_by_partition() == {"b": 4.0}
        assert batches[2].reads_by_partition() == {"a": 1.0}

    def test_zero_months_emit_no_events(self):
        stream = SeriesStream({"a": [0.0, 0.0]})
        assert all(batch.events == () for batch in stream)

    def test_negative_series_rejected(self):
        with pytest.raises(ValueError):
            SeriesStream({"a": [1.0, -2.0]})

    def test_stream_is_reiterable(self):
        stream = SeriesStream({"a": [1.0, 2.0]})
        assert [b.total_reads for b in stream] == [b.total_reads for b in stream]


def test_stream_from_catalog_replays_recorded_history():
    catalog = DatasetCatalog(
        [
            Dataset(
                name="d0",
                size_gb=10.0,
                created_month=0,
                monthly_reads=[5.0, 0.0, 2.0],
                monthly_writes=[1.0, 0.0, 0.0],
            )
        ]
    )
    batches = list(stream_from_catalog(catalog))
    assert len(batches) == 3
    assert batches[0].reads_by_partition() == {"d0": 5.0}
    assert batches[2].reads_by_partition() == {"d0": 2.0}
